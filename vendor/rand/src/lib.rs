//! Offline vendored subset of the [`rand` 0.8](https://docs.rs/rand/0.8)
//! API, implemented from scratch so the workspace builds without network
//! access to crates.io.
//!
//! Only the surface the `holder-aging` workspace uses is provided:
//!
//! - [`RngCore`] / [`Rng`] with `gen_range` (float and integer ranges),
//!   `gen_bool` and `fill_u64`,
//! - [`SeedableRng`] with `seed_from_u64`,
//! - [`rngs::StdRng`] — a deterministic xoshiro256++ generator.
//!
//! The streams differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), but everything downstream only relies on determinism and
//! statistical quality, not on exact byte streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform random source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 random bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let span = self.end - self.start;
        let v = self.start + unit_f64(rng) * span;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let r = (self.start as f64)..(self.end as f64);
        r.sample_from(rng) as f32
    }
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire reduction,
/// without the rejection step — bias is ≤ 2⁻⁶⁴·span, irrelevant here).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna). Not the upstream ChaCha12, but a high-quality,
    /// fully deterministic stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro — re-expand.
            if s == [0; 4] {
                let mut sm = SplitMix64 { state: 0x5eed };
                for w in &mut s {
                    *w = sm.next_u64();
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(w > 0.0 && w < 1.0);
        }
    }

    #[test]
    fn int_ranges_respect_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0usize..8);
            seen[v] = true;
            let w: u64 = rng.gen_range(5u64..=6);
            assert!(w == 5 || w == 6);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0)); // p = 1.0 always hits
    }

    #[test]
    fn mean_of_unit_samples_is_centred() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
