//! Aging fault injection.
//!
//! Software aging in the target paper's sense is the slow, workload-driven
//! depletion of memory resources. This module injects its classical causes:
//! heap leaks (never-freed allocations), allocator fragmentation growth
//! (free memory that exists but cannot be used), and handle/object leaks.

use crate::units::Bytes;
use aging_timeseries::{Error, Result};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Temporal shape of a leak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LeakMode {
    /// Continuous drip at the configured rate.
    Linear,
    /// A lump of `period_secs × rate` leaks every `period_secs` (e.g. a
    /// nightly job that never frees its buffer).
    Step {
        /// Period between lumps, in seconds.
        period_secs: f64,
    },
    /// Leakage tied to load: each step leaks `rate × dt` with probability
    /// `p`, scaled by `1/p` so the long-run rate is preserved (models a
    /// leak on an error path that only some requests hit).
    Bursty {
        /// Per-step probability that the leak fires.
        p: f64,
    },
}

/// A memory-leak specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakSpec {
    /// Long-run leak rate in bytes per hour.
    pub bytes_per_hour: f64,
    /// Temporal shape.
    pub mode: LeakMode,
    /// Simulation time (seconds) at which the leak starts.
    pub start_secs: f64,
}

impl LeakSpec {
    /// A linear leak of `mib_per_hour` starting immediately.
    pub fn linear_mib_per_hour(mib_per_hour: f64) -> Self {
        LeakSpec {
            bytes_per_hour: mib_per_hour * 1024.0 * 1024.0,
            mode: LeakMode::Linear,
            start_secs: 0.0,
        }
    }
}

/// Fragmentation growth: a fraction of nominally free memory becomes
/// unusable, growing with uptime and saturating at `max_fraction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FragmentationSpec {
    /// Fraction lost per hour of uptime (e.g. 0.004 = 0.4 %/hour).
    pub fraction_per_hour: f64,
    /// Saturation ceiling in `[0, 0.9]`.
    pub max_fraction: f64,
}

/// Handle/object leak: kernel objects that are opened and never closed.
/// Each handle pins a small amount of non-paged memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HandleLeakSpec {
    /// Handles leaked per hour.
    pub handles_per_hour: f64,
    /// Non-paged bytes pinned per handle.
    pub bytes_per_handle: u64,
}

/// Periodic partial reclamation of the accumulated heap leak — the
/// mobile-style churn cycle where the platform kills and restarts app
/// components (or a cache is flushed), releasing *part* of what leaked
/// while a residue keeps ratcheting upward. Every `period_secs` the
/// leaked total drops by `reclaim_fraction`; the sawtooth's floor still
/// grows at `rate × (1 − reclaim_fraction)` long-run, which is exactly
/// the leak-accumulate-then-partial-reclaim texture the Android aging
/// study reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReclaimSpec {
    /// Seconds between reclaim cycles.
    pub period_secs: f64,
    /// Fraction of the accumulated leak released per cycle, in `(0, 1]`.
    pub reclaim_fraction: f64,
}

/// The complete fault plan of one simulated machine.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Heap leaks (possibly several independent ones).
    pub leaks: Vec<LeakSpec>,
    /// Fragmentation growth, if any.
    pub fragmentation: Option<FragmentationSpec>,
    /// Handle leak, if any.
    pub handle_leak: Option<HandleLeakSpec>,
    /// Periodic partial reclaim of the leaked heap, if any.
    pub reclaim: Option<ReclaimSpec>,
}

impl FaultPlan {
    /// A healthy machine: no injected aging.
    pub fn healthy() -> Self {
        FaultPlan::default()
    }

    /// The canonical aging scenario used by the experiments: a linear heap
    /// leak plus slow fragmentation and a handle leak.
    pub fn aging(mib_per_hour: f64) -> Self {
        FaultPlan {
            leaks: vec![LeakSpec::linear_mib_per_hour(mib_per_hour)],
            fragmentation: Some(FragmentationSpec {
                fraction_per_hour: 0.002,
                max_fraction: 0.25,
            }),
            handle_leak: Some(HandleLeakSpec {
                handles_per_hour: 360.0,
                bytes_per_handle: 4096,
            }),
            reclaim: None,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        for (i, leak) in self.leaks.iter().enumerate() {
            if !(leak.bytes_per_hour >= 0.0 && leak.bytes_per_hour.is_finite()) {
                return Err(Error::invalid(
                    "leaks",
                    format!("leak {i}: bytes_per_hour must be finite and >= 0"),
                ));
            }
            if leak.start_secs < 0.0 {
                return Err(Error::invalid(
                    "leaks",
                    format!("leak {i}: start_secs must be >= 0"),
                ));
            }
            match leak.mode {
                LeakMode::Step { period_secs } if period_secs <= 0.0 => {
                    return Err(Error::invalid(
                        "leaks",
                        format!("leak {i}: step period must be positive"),
                    ));
                }
                LeakMode::Bursty { p } if !(0.0 < p && p <= 1.0) => {
                    return Err(Error::invalid(
                        "leaks",
                        format!("leak {i}: bursty p must lie in (0, 1]"),
                    ));
                }
                _ => {}
            }
        }
        if let Some(f) = &self.fragmentation {
            if !(f.fraction_per_hour >= 0.0 && f.fraction_per_hour.is_finite()) {
                return Err(Error::invalid(
                    "fragmentation",
                    "fraction_per_hour must be finite and >= 0",
                ));
            }
            if !(0.0..=0.9).contains(&f.max_fraction) {
                return Err(Error::invalid(
                    "fragmentation",
                    "max_fraction must lie in [0, 0.9]",
                ));
            }
        }
        if let Some(h) = &self.handle_leak {
            if !(h.handles_per_hour >= 0.0 && h.handles_per_hour.is_finite()) {
                return Err(Error::invalid(
                    "handle_leak",
                    "handles_per_hour must be finite and >= 0",
                ));
            }
        }
        if let Some(r) = &self.reclaim {
            if !(r.period_secs > 0.0) || !r.period_secs.is_finite() {
                return Err(Error::invalid(
                    "reclaim",
                    "period_secs must be finite and positive",
                ));
            }
            if !(0.0 < r.reclaim_fraction && r.reclaim_fraction <= 1.0) {
                return Err(Error::invalid(
                    "reclaim",
                    "reclaim_fraction must lie in (0, 1]",
                ));
            }
        }
        Ok(())
    }
}

/// Runtime state of the fault plan: accumulates leaked bytes, fragmentation
/// fraction and leaked handles over simulation steps.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    leaked: Bytes,
    step_accumulators: Vec<f64>,
    reclaim_accumulator: f64,
    reclaim_cycles: u64,
    handles: f64,
    frag_fraction: f64,
}

impl FaultState {
    /// Creates fault state for a validated plan.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::validate`] failures.
    pub fn new(plan: FaultPlan) -> Result<Self> {
        plan.validate()?;
        let n = plan.leaks.len();
        Ok(FaultState {
            plan,
            leaked: Bytes::ZERO,
            step_accumulators: vec![0.0; n],
            reclaim_accumulator: 0.0,
            reclaim_cycles: 0,
            handles: 0.0,
            frag_fraction: 0.0,
        })
    }

    /// Total heap bytes leaked so far.
    pub fn leaked(&self) -> Bytes {
        self.leaked
    }

    /// Current leaked handle count.
    pub fn handle_count(&self) -> u64 {
        self.handles as u64
    }

    /// Non-paged bytes pinned by leaked handles.
    pub fn handle_bytes(&self) -> Bytes {
        match &self.plan.handle_leak {
            Some(h) => Bytes::from_f64(self.handles.floor() * h.bytes_per_handle as f64),
            None => Bytes::ZERO,
        }
    }

    /// Current fragmentation fraction in `[0, max_fraction]`.
    pub fn fragmentation_fraction(&self) -> f64 {
        self.frag_fraction
    }

    /// Completed reclaim cycles (see [`ReclaimSpec`]).
    pub fn reclaim_cycles(&self) -> u64 {
        self.reclaim_cycles
    }

    /// Advances the fault clock by `dt` seconds at time `now`, returning
    /// the **newly** leaked heap bytes this step.
    pub fn step(&mut self, now: f64, dt: f64, rng: &mut StdRng) -> Bytes {
        let mut new_leak = 0.0f64;
        for (i, leak) in self.plan.leaks.iter().enumerate() {
            if now < leak.start_secs || leak.bytes_per_hour <= 0.0 {
                continue;
            }
            let rate_per_sec = leak.bytes_per_hour / 3600.0;
            match leak.mode {
                LeakMode::Linear => new_leak += rate_per_sec * dt,
                LeakMode::Step { period_secs } => {
                    self.step_accumulators[i] += dt;
                    if self.step_accumulators[i] >= period_secs {
                        self.step_accumulators[i] -= period_secs;
                        new_leak += rate_per_sec * period_secs;
                    }
                }
                LeakMode::Bursty { p } => {
                    if rng.gen_bool(p) {
                        new_leak += rate_per_sec * dt / p;
                    }
                }
            }
        }
        let delta = Bytes::from_f64(new_leak);
        self.leaked += delta;

        if let Some(r) = &self.plan.reclaim {
            self.reclaim_accumulator += dt;
            if self.reclaim_accumulator >= r.period_secs {
                self.reclaim_accumulator -= r.period_secs;
                self.reclaim_cycles += 1;
                let kept = self.leaked.as_f64() * (1.0 - r.reclaim_fraction);
                self.leaked = Bytes::from_f64(kept);
            }
        }

        if let Some(h) = &self.plan.handle_leak {
            self.handles += h.handles_per_hour / 3600.0 * dt;
        }
        if let Some(f) = &self.plan.fragmentation {
            self.frag_fraction =
                (self.frag_fraction + f.fraction_per_hour / 3600.0 * dt).min(f.max_fraction);
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn plans_validate() {
        FaultPlan::healthy().validate().unwrap();
        FaultPlan::aging(16.0).validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut plan = FaultPlan::healthy();
        plan.leaks.push(LeakSpec {
            bytes_per_hour: -1.0,
            mode: LeakMode::Linear,
            start_secs: 0.0,
        });
        assert!(plan.validate().is_err());

        let plan = FaultPlan {
            leaks: vec![LeakSpec {
                bytes_per_hour: 100.0,
                mode: LeakMode::Step { period_secs: 0.0 },
                start_secs: 0.0,
            }],
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_err());

        let plan = FaultPlan {
            leaks: vec![LeakSpec {
                bytes_per_hour: 100.0,
                mode: LeakMode::Bursty { p: 0.0 },
                start_secs: 0.0,
            }],
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_err());

        let plan = FaultPlan {
            fragmentation: Some(FragmentationSpec {
                fraction_per_hour: 0.01,
                max_fraction: 0.99,
            }),
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn linear_leak_rate_is_exact() {
        let mut state = FaultState::new(FaultPlan::aging(36.0)).unwrap();
        let mut r = rng();
        for step in 0..3600 {
            state.step(step as f64, 1.0, &mut r);
        }
        // 36 MiB/hour over exactly one hour.
        let leaked = state.leaked().as_mib();
        assert!((leaked - 36.0).abs() < 0.5, "leaked {leaked} MiB");
    }

    #[test]
    fn step_leak_quantises() {
        let plan = FaultPlan {
            leaks: vec![LeakSpec {
                bytes_per_hour: 3600.0 * 100.0, // 100 B/s long-run
                mode: LeakMode::Step { period_secs: 60.0 },
                start_secs: 0.0,
            }],
            ..FaultPlan::default()
        };
        let mut state = FaultState::new(plan).unwrap();
        let mut r = rng();
        let mut before_first_lump = Bytes::ZERO;
        for step in 0..59 {
            state.step(step as f64, 1.0, &mut r);
            before_first_lump = state.leaked();
        }
        assert_eq!(before_first_lump, Bytes::ZERO);
        state.step(59.0, 1.0, &mut r);
        assert_eq!(state.leaked(), Bytes::new(6000)); // 100 B/s × 60 s
    }

    #[test]
    fn bursty_leak_preserves_long_run_rate() {
        let plan = FaultPlan {
            leaks: vec![LeakSpec {
                bytes_per_hour: 3600.0 * 1000.0, // 1000 B/s long-run
                mode: LeakMode::Bursty { p: 0.05 },
                start_secs: 0.0,
            }],
            ..FaultPlan::default()
        };
        let mut state = FaultState::new(plan).unwrap();
        let mut r = rng();
        for step in 0..20_000 {
            state.step(step as f64, 1.0, &mut r);
        }
        let expected = 20_000.0 * 1000.0;
        let got = state.leaked().as_f64();
        assert!(
            (got - expected).abs() < 0.1 * expected,
            "got {got} expected {expected}"
        );
    }

    /// The 1/p compensation must hold for any firing probability and any
    /// seed, not just the one seed the smoke test above happens to use:
    /// across seeds and p values the long-run rate stays within 10 % of
    /// the configured one over a multi-hour horizon.
    #[test]
    fn bursty_rate_holds_across_seeds_and_probabilities() {
        for &p in &[0.02, 0.1, 0.5, 1.0] {
            for seed in [2u64, 3, 5, 8, 13] {
                let plan = FaultPlan {
                    leaks: vec![LeakSpec {
                        bytes_per_hour: 3600.0 * 1000.0, // 1000 B/s long-run
                        mode: LeakMode::Bursty { p },
                        start_secs: 0.0,
                    }],
                    ..FaultPlan::default()
                };
                let mut state = FaultState::new(plan).unwrap();
                let mut r = StdRng::seed_from_u64(seed);
                let steps = 40_000u64; // ~11 h at 1 Hz
                for step in 0..steps {
                    state.step(step as f64, 1.0, &mut r);
                }
                let expected = steps as f64 * 1000.0;
                let got = state.leaked().as_f64();
                assert!(
                    (got - expected).abs() < 0.1 * expected,
                    "p={p} seed={seed}: got {got}, expected {expected}"
                );
            }
        }
    }

    /// A step leak's lumps must average out to the configured long-run
    /// rate regardless of how the sampling step divides the period.
    #[test]
    fn step_rate_matches_long_run_rate() {
        for dt in [1.0, 7.0, 30.0] {
            let plan = FaultPlan {
                leaks: vec![LeakSpec {
                    bytes_per_hour: 3600.0 * 250.0, // 250 B/s long-run
                    mode: LeakMode::Step { period_secs: 300.0 },
                    start_secs: 0.0,
                }],
                ..FaultPlan::default()
            };
            let mut state = FaultState::new(plan).unwrap();
            let mut r = rng();
            let horizon = 86_400.0; // one simulated day
            let mut now = 0.0;
            while now < horizon {
                state.step(now, dt, &mut r);
                now += dt;
            }
            let expected = now * 250.0;
            let got = state.leaked().as_f64();
            // At most one lump (period × rate) can be pending in the
            // accumulator at the end of the horizon.
            let lump = 300.0 * 250.0;
            assert!(
                (got - expected).abs() <= lump + 1.0,
                "dt={dt}: got {got}, expected {expected} ± {lump}"
            );
        }
    }

    /// `start_secs` must gate every mode, and the post-start long-run
    /// rate must be unaffected by the delayed start.
    #[test]
    fn start_secs_honoured_for_step_and_bursty() {
        let start = 5_000.0;
        let modes = [
            LeakMode::Step { period_secs: 120.0 },
            LeakMode::Bursty { p: 0.1 },
        ];
        for (mode_index, mode) in modes.into_iter().enumerate() {
            for seed in [2u64, 5, 13] {
                let plan = FaultPlan {
                    leaks: vec![LeakSpec {
                        bytes_per_hour: 3600.0 * 500.0, // 500 B/s long-run
                        mode,
                        start_secs: start,
                    }],
                    ..FaultPlan::default()
                };
                let mut state = FaultState::new(plan).unwrap();
                let mut r = StdRng::seed_from_u64(seed);
                for step in 0..(start as u64) {
                    state.step(step as f64, 1.0, &mut r);
                }
                assert_eq!(
                    state.leaked(),
                    Bytes::ZERO,
                    "mode {mode_index} seed {seed}: leaked before start_secs"
                );
                let active = 30_000u64;
                for step in 0..active {
                    state.step(start + step as f64, 1.0, &mut r);
                }
                let expected = active as f64 * 500.0;
                let got = state.leaked().as_f64();
                assert!(
                    (got - expected).abs() < 0.1 * expected,
                    "mode {mode_index} seed {seed}: got {got}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn leak_start_time_respected() {
        let plan = FaultPlan {
            leaks: vec![LeakSpec {
                bytes_per_hour: 3_600_000.0,
                mode: LeakMode::Linear,
                start_secs: 100.0,
            }],
            ..FaultPlan::default()
        };
        let mut state = FaultState::new(plan).unwrap();
        let mut r = rng();
        for step in 0..100 {
            state.step(step as f64, 1.0, &mut r);
        }
        assert_eq!(state.leaked(), Bytes::ZERO);
        state.step(100.0, 1.0, &mut r);
        assert!(state.leaked() > Bytes::ZERO);
    }

    #[test]
    fn fragmentation_saturates() {
        let plan = FaultPlan {
            fragmentation: Some(FragmentationSpec {
                fraction_per_hour: 0.5,
                max_fraction: 0.3,
            }),
            ..FaultPlan::default()
        };
        let mut state = FaultState::new(plan).unwrap();
        let mut r = rng();
        for step in 0..7200 {
            state.step(step as f64, 1.0, &mut r);
        }
        assert!((state.fragmentation_fraction() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn handle_leak_accumulates() {
        let mut state = FaultState::new(FaultPlan::aging(0.0)).unwrap();
        let mut r = rng();
        for step in 0..3600 {
            state.step(step as f64, 1.0, &mut r);
        }
        // 360 handles/hour.
        assert!((state.handle_count() as i64 - 360).abs() <= 1);
        assert_eq!(
            state.handle_bytes(),
            Bytes::new(state.handle_count() * 4096)
        );
    }

    #[test]
    fn validation_catches_bad_reclaim() {
        for (period_secs, reclaim_fraction) in
            [(0.0, 0.5), (f64::NAN, 0.5), (60.0, 0.0), (60.0, 1.5)]
        {
            let plan = FaultPlan {
                reclaim: Some(ReclaimSpec {
                    period_secs,
                    reclaim_fraction,
                }),
                ..FaultPlan::default()
            };
            assert!(
                plan.validate().is_err(),
                "period={period_secs} fraction={reclaim_fraction} must be rejected"
            );
        }
    }

    /// Proportional reclaim turns a linear leak into a sawtooth whose
    /// peak converges to `rate × period / fraction`: the leaked total
    /// stays bounded by that ceiling (instead of growing without bound)
    /// and the cycle counter ticks exactly once per period.
    #[test]
    fn reclaim_sawtooth_is_bounded_by_its_ceiling() {
        let rate = 1000.0; // bytes/second long-run
        let period = 600.0;
        for &fraction in &[0.25, 0.5, 1.0] {
            let plan = FaultPlan {
                leaks: vec![LeakSpec {
                    bytes_per_hour: 3600.0 * rate,
                    mode: LeakMode::Linear,
                    start_secs: 0.0,
                }],
                reclaim: Some(ReclaimSpec {
                    period_secs: period,
                    reclaim_fraction: fraction,
                }),
                ..FaultPlan::default()
            };
            let mut state = FaultState::new(plan).unwrap();
            let mut r = rng();
            let steps = 200_000u64; // ~333 cycles, far past convergence
            for step in 0..steps {
                state.step(step as f64, 1.0, &mut r);
            }
            let ceiling = rate * period / fraction;
            let got = state.leaked().as_f64();
            let unreclaimed = steps as f64 * rate;
            assert!(
                got <= ceiling + rate * period,
                "fraction={fraction}: leaked {got} above ceiling {ceiling}"
            );
            assert!(
                got < 0.2 * unreclaimed,
                "fraction={fraction}: reclaim barely dented the leak ({got})"
            );
            assert_eq!(state.reclaim_cycles(), steps / period as u64);
        }
    }

    /// The cycle statistics must hold for load-coupled (bursty) leaks at
    /// any seed too: long-run containment within the same ceiling, with
    /// headroom for burst noise.
    #[test]
    fn reclaim_contains_bursty_leaks_across_seeds() {
        let rate = 1000.0;
        let period = 600.0;
        let fraction = 0.5;
        for seed in [2u64, 3, 5, 8, 13] {
            let plan = FaultPlan {
                leaks: vec![LeakSpec {
                    bytes_per_hour: 3600.0 * rate,
                    mode: LeakMode::Bursty { p: 0.1 },
                    start_secs: 0.0,
                }],
                reclaim: Some(ReclaimSpec {
                    period_secs: period,
                    reclaim_fraction: fraction,
                }),
                ..FaultPlan::default()
            };
            let mut state = FaultState::new(plan).unwrap();
            let mut r = StdRng::seed_from_u64(seed);
            let steps = 120_000u64;
            let mut peak = 0.0f64;
            for step in 0..steps {
                state.step(step as f64, 1.0, &mut r);
                peak = peak.max(state.leaked().as_f64());
            }
            let ceiling = rate * period / fraction;
            assert!(
                peak <= 2.0 * ceiling,
                "seed={seed}: peak {peak} vs ceiling {ceiling}"
            );
            assert!(peak > 0.25 * ceiling, "seed={seed}: leak never built up");
            assert_eq!(state.reclaim_cycles(), steps / period as u64);
        }
    }

    #[test]
    fn healthy_plan_never_ages() {
        let mut state = FaultState::new(FaultPlan::healthy()).unwrap();
        let mut r = rng();
        for step in 0..10_000 {
            state.step(step as f64, 1.0, &mut r);
        }
        assert_eq!(state.leaked(), Bytes::ZERO);
        assert_eq!(state.handle_count(), 0);
        assert_eq!(state.fragmentation_fraction(), 0.0);
    }
}
