//! # holder-aging
//!
//! A full reproduction of **"Software Aging and Multifractality of Memory
//! Resources"** (M. Shereshevsky, B. Cukic, J. Crowell, V. Gandikota,
//! Y. Liu — DSN 2003) as a Rust workspace.
//!
//! The paper's thesis: memory-resource usage of a long-running system is a
//! *multifractal* signal, and abrupt changes in the fractal dimension of
//! its local Hölder-exponent trace precede crashes — giving an online
//! software-aging (crash-warning) detector that beats classical
//! trend-extrapolation predictors on bursty real-world signals.
//!
//! This umbrella crate re-exports the workspace layers:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`timeseries`] | `aging-timeseries` | series container, statistics, trend tests |
//! | [`par`] | `aging-par` | deterministic chunked scoped-thread parallelism |
//! | [`wavelet`] | `aging-wavelet` | DWT / MODWT / CWT / wavelet leaders |
//! | [`fractal`] | `aging-fractal` | generators, Hölder, Hurst, dimensions, spectra |
//! | [`memsim`] | `aging-memsim` | the simulated testbed (machines, workloads, faults) |
//! | [`core`] | `aging-core` | the detector, baselines, evaluation, rejuvenation |
//! | [`rejuv`] | `aging-rejuv` | closed-loop restart policies, arbiter and availability accounting |
//! | [`stream`] | `aging-stream` | online bounded-memory detection, fleet supervisor, telemetry |
//! | [`chaos`] | `aging-chaos` | seeded fault injection and the differential robustness harness |
//! | [`store`] | `aging-store` | crash-safe WAL + snapshot persistence (std-only, CRC-framed) |
//! | [`serve`] | `aging-serve` | networked TCP ingestion/query server and load-generator client |
//!
//! Analysis hot paths (Hölder traces, CWT/WTMM, surrogate ensembles, fleet
//! scoring) run on a deterministic thread pool ([`par`]): results are
//! bit-identical for any thread count, and `AGING_THREADS` caps the
//! parallelism process-wide.
//!
//! # Quickstart
//!
//! ```
//! use holder_aging::prelude::*;
//!
//! # fn main() -> Result<(), holder_aging::Error> {
//! // 1. Simulate an aging web server until it crashes.
//! let scenario = Scenario::tiny_aging(7, 512.0);
//! let report = simulate(&scenario, 4.0 * 3600.0)?;
//! let crash = report.first_crash().expect("the leak crashes the machine");
//!
//! // 2. Run the paper's detector offline over the free-memory counter.
//! let series = report.log.series(Counter::AvailableBytes)?;
//! let config = DetectorConfig::builder()
//!     .holder_radius(16)
//!     .holder_max_lag(4)
//!     .dimension_window(64)
//!     .dimension_stride(8)
//!     .baseline_windows(6)
//!     .build()?;
//! let analysis = analyze(series.values(), &config)?;
//! println!("crash at {}, {} alerts", crash.time, analysis.alerts.len());
//! # Ok(())
//! # }
//! ```

pub use aging_chaos as chaos;
pub use aging_core as core;
pub use aging_fractal as fractal;
pub use aging_memsim as memsim;
pub use aging_par as par;
pub use aging_rejuv as rejuv;
pub use aging_serve as serve;
pub use aging_store as store;
pub use aging_stream as stream;
pub use aging_timeseries as timeseries;
pub use aging_wavelet as wavelet;

pub use aging_timeseries::{Error, Result, TimeSeries};

/// One-line import for applications: the most common types of every layer.
pub mod prelude {
    pub use aging_chaos::{
        fleet_perturber, run_differential, ChaosPlan, ChaosSource, DifferentialReport,
        InjectorSpec, Tolerance,
    };
    pub use aging_core::baseline::{AgingPredictor, ResourceDirection, TrendPredictorConfig};
    pub use aging_core::detector::{
        analyze, AlertLevel, DetectorConfig, DetectorConfigBuilder, HolderDimensionDetector,
        JumpRule,
    };
    pub use aging_core::eval::{compare, compare_in, evaluate, ComparisonRow, PredictorSpec};
    pub use aging_core::progression::{progression, ProgressionConfig};
    pub use aging_core::rejuvenation::{run_policy, OutageCosts, Policy};
    pub use aging_core::report::{assess, Assessment, AssessmentConfig, Verdict};
    pub use aging_core::roc::{sweep_detector, sweep_detector_in, RocPoint, SweepParameter};
    pub use aging_fractal::holder::{holder_trace, holder_trace_in, HolderEstimator};
    pub use aging_fractal::spectrum::{
        spectrum_trace, spectrum_trace_in, SpectrumConfig, SpectrumWindow, StreamingSpectrum,
    };
    pub use aging_fractal::surrogate::{surrogate_test, surrogate_test_in};
    pub use aging_fractal::wtmm::{wtmm, wtmm_in, WtmmConfig, WtmmConfigBuilder, WtmmResult};
    pub use aging_fractal::{dimension, generate, hurst, spectrum};
    pub use aging_memsim::{
        simulate, simulate_fleet, simulate_fleet_in, simulate_with_reboots, Bytes, Counter,
        FaultPlan, Machine, MachineConfig, Scenario, SimTime, WorkloadConfig,
    };
    pub use aging_par::Pool;
    pub use aging_rejuv::{
        availability, AvailabilitySummary, RejuvConfig, RejuvController, RejuvPolicy,
        RestartDecision, RestartReason, RestartRequest,
    };
    pub use aging_serve::{
        drive, BatchMode, LoadgenConfig, LoadgenReport, PersistStats, ServeClient, ServeConfig,
        ServeConfigBuilder, ServeReport, Server, PROTOCOL_VERSION, PROTOCOL_VERSION_V2,
    };
    pub use aging_store::{Store, StoreConfig, StoreError};
    pub use aging_stream::supervisor::{
        AlarmEvent, AlarmKind, CounterDetector, FleetConfig, FleetReport, FleetSupervisor,
    };
    pub use aging_stream::{
        DetectorSpec, FleetSink, GateConfig, IngestSink, SampleGate, SampleSource,
        SpectrumDetectorConfig, StreamingDetector,
    };
    pub use aging_timeseries::{trend::MannKendall, trend::SenSlope, Error, Result, TimeSeries};
    pub use aging_wavelet::{dwt, modwt, Wavelet, WaveletLeaders};
}
