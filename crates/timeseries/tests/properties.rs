//! Property-based tests for `aging-timeseries` invariants.

use aging_timeseries::{
    detrend, interp,
    regression::{self, ols, theil_sen},
    stats,
    trend::{MannKendall, SenSlope},
    window::{dyadic_scales, SlidingWindows},
    TimeSeries,
};
use proptest::prelude::*;

/// Strategy: a vector of "reasonable" finite floats.
fn finite_vec(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6f64, min_len..=max_len)
}

proptest! {
    #[test]
    fn mean_is_within_min_max(data in finite_vec(1, 200)) {
        let m = stats::mean(&data).unwrap();
        let lo = stats::min(&data).unwrap();
        let hi = stats::max(&data).unwrap();
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn variance_nonnegative(data in finite_vec(2, 200)) {
        prop_assert!(stats::variance(&data).unwrap() >= 0.0);
    }

    #[test]
    fn quantiles_monotone(data in finite_vec(1, 100), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let qa = stats::quantile(&data, lo).unwrap();
        let qb = stats::quantile(&data, hi).unwrap();
        prop_assert!(qa <= qb + 1e-9);
    }

    #[test]
    fn zscore_shift_invariant(data in finite_vec(3, 100), shift in -1e5f64..1e5) {
        // Skip near-constant data (z-score undefined).
        prop_assume!(stats::std_dev(&data).unwrap() > 1e-6);
        let shifted: Vec<f64> = data.iter().map(|v| v + shift).collect();
        let z1 = stats::zscore(&data).unwrap();
        let z2 = stats::zscore(&shifted).unwrap();
        for (a, b) in z1.iter().zip(&z2) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn ols_residuals_orthogonal_to_x(data in finite_vec(3, 100)) {
        let x: Vec<f64> = (0..data.len()).map(|i| i as f64).collect();
        let fit = ols(&x, &data).unwrap();
        // Σ residual = 0 and Σ residual·x = 0 (normal equations).
        let resid: Vec<f64> = x.iter().zip(&data).map(|(&a, &b)| b - fit.predict(a)).collect();
        let scale = data.iter().map(|v| v.abs()).fold(1.0, f64::max);
        let s: f64 = resid.iter().sum();
        let sx: f64 = resid.iter().zip(&x).map(|(r, &a)| r * a).sum();
        prop_assert!(s.abs() <= 1e-6 * scale * data.len() as f64);
        prop_assert!(sx.abs() <= 1e-6 * scale * (data.len() * data.len()) as f64);
    }

    #[test]
    fn theil_sen_equivariance_under_scaling(data in finite_vec(3, 60), k in 0.1f64..10.0) {
        let x: Vec<f64> = (0..data.len()).map(|i| i as f64).collect();
        let base = theil_sen(&x, &data).unwrap();
        let scaled: Vec<f64> = data.iter().map(|v| k * v).collect();
        let s = theil_sen(&x, &scaled).unwrap();
        prop_assert!((s.slope - k * base.slope).abs() < 1e-6 * (1.0 + base.slope.abs()) * k);
    }

    #[test]
    fn mann_kendall_antisymmetric(data in finite_vec(4, 80)) {
        let neg: Vec<f64> = data.iter().map(|v| -v).collect();
        let a = MannKendall::test(&data).unwrap();
        let b = MannKendall::test(&neg).unwrap();
        prop_assert_eq!(a.s, -b.s);
        prop_assert!((a.var_s - b.var_s).abs() < 1e-9 * a.var_s.max(1.0));
    }

    #[test]
    fn mann_kendall_invariant_under_monotone_map(data in finite_vec(4, 60)) {
        // exp is strictly increasing; S depends only on pairwise order.
        let mapped: Vec<f64> = data.iter().map(|v| (v / 1e6).exp()).collect();
        let a = MannKendall::test(&data).unwrap();
        let b = MannKendall::test(&mapped).unwrap();
        prop_assert_eq!(a.s, b.s);
    }

    #[test]
    fn sen_slope_shift_invariant(data in finite_vec(2, 60), shift in -1e5f64..1e5) {
        let shifted: Vec<f64> = data.iter().map(|v| v + shift).collect();
        let a = SenSlope::estimate(&data, 1.0).unwrap();
        let b = SenSlope::estimate(&shifted, 1.0).unwrap();
        prop_assert!((a.slope - b.slope).abs() < 1e-9 * (1.0 + a.slope.abs()));
    }

    #[test]
    fn detrend_linear_then_fit_is_flat(data in finite_vec(3, 100)) {
        let mut d = data.clone();
        detrend::remove_linear(&mut d).unwrap();
        let x: Vec<f64> = (0..d.len()).map(|i| i as f64).collect();
        let fit = ols(&x, &d).unwrap();
        let scale = data.iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!(fit.slope.abs() < 1e-6 * scale);
    }

    #[test]
    fn fill_gaps_leaves_valid_samples(
        data in finite_vec(2, 50),
        gap_idx in prop::collection::vec(0usize..50, 0..10),
    ) {
        let mut holed = data.clone();
        for &g in &gap_idx {
            if g < holed.len() {
                holed[g] = f64::NAN;
            }
        }
        // Need at least one valid sample.
        prop_assume!(holed.iter().any(|v| v.is_finite()));
        let reference = holed.clone();
        interp::fill_gaps(&mut holed, interp::FillMethod::Linear).unwrap();
        for (i, (&orig, &filled)) in reference.iter().zip(&holed).enumerate() {
            if orig.is_finite() {
                prop_assert_eq!(orig, filled, "valid sample {} changed", i);
            } else {
                prop_assert!(filled.is_finite(), "gap {} not filled", i);
            }
        }
    }

    #[test]
    fn sliding_windows_cover_exact_count(len in 1usize..300, width in 1usize..50, stride in 1usize..20) {
        let data = vec![0.0; len];
        match SlidingWindows::new(&data, width, stride) {
            Ok(plan) => {
                let expected = plan.count_windows();
                prop_assert_eq!(plan.count(), expected);
                prop_assert_eq!(expected, (len - width) / stride + 1);
            }
            Err(_) => prop_assert!(len < width),
        }
    }

    #[test]
    fn dyadic_scales_fit(n in 4usize..100_000, min_blocks in 1usize..16) {
        if let Ok(scales) = dyadic_scales(n, min_blocks) {
            for s in scales {
                prop_assert!(s * min_blocks <= n);
                prop_assert!(s.is_power_of_two());
            }
        }
    }

    #[test]
    fn series_profile_ends_near_zero(data in finite_vec(1, 200)) {
        let ts = TimeSeries::from_values(0.0, 1.0, data.clone()).unwrap();
        let p = ts.profile().unwrap();
        // Centred cumulative sum always ends at (numerically) zero.
        let scale = data.iter().map(|v| v.abs()).fold(1.0, f64::max) * data.len() as f64;
        prop_assert!(p.values().last().unwrap().abs() <= 1e-9 * scale);
    }

    #[test]
    fn decimate_then_len(data in finite_vec(1, 200), factor in 1usize..10) {
        let ts = TimeSeries::from_values(0.0, 1.0, data).unwrap();
        match ts.decimate_mean(factor) {
            Ok(d) => prop_assert_eq!(d.len(), ts.len() / factor),
            Err(_) => prop_assert!(ts.len() < factor),
        }
    }

    #[test]
    fn log_log_fit_recovers_exponent(exponent in -2.0f64..2.0, scale in 0.1f64..100.0) {
        let x: Vec<f64> = (1..=32).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| scale * v.powf(exponent)).collect();
        let fit = regression::log_log_fit(&x, &y).unwrap();
        prop_assert!((fit.slope - exponent).abs() < 1e-6);
    }
}

proptest! {
    #[test]
    fn ring_windowed_stats_match_batch_stats(data in finite_vec(2, 160), cap_sel in 0.0f64..1.0) {
        use aging_timeseries::ring::RingBuffer;
        // Capacity anywhere in 2..=len, derived from an independent draw.
        let cap = 2 + (cap_sel * (data.len() - 2) as f64) as usize;
        let mut ring = RingBuffer::new(cap).unwrap();
        for (i, &v) in data.iter().enumerate() {
            ring.push(v);
            // The ring must agree with `stats` on exactly the trailing
            // window at every point in the stream, not just at the end.
            let start = (i + 1).saturating_sub(cap);
            let window = &data[start..=i];
            prop_assert_eq!(ring.to_vec(), window.to_vec());
            let scale = window.iter().fold(1.0f64, |a, &b| a.max(b.abs()));
            let mean = stats::mean(window).unwrap();
            prop_assert!((ring.mean().unwrap() - mean).abs() <= 1e-9 * scale);
            prop_assert_eq!(ring.min().unwrap(), stats::min(window).unwrap());
            prop_assert_eq!(ring.max().unwrap(), stats::max(window).unwrap());
            if window.len() >= 2 {
                let var = stats::variance(window).unwrap();
                prop_assert!(
                    (ring.variance().unwrap() - var).abs() <= 1e-7 * scale * scale.max(1.0),
                    "{} vs {}", ring.variance().unwrap(), var
                );
            }
        }
    }

    #[test]
    fn ring_eviction_returns_stream_prefix(data in finite_vec(2, 160), cap_sel in 0.0f64..1.0) {
        use aging_timeseries::ring::RingBuffer;
        let cap = 2 + (cap_sel * (data.len() - 2) as f64) as usize;
        let mut ring = RingBuffer::new(cap).unwrap();
        let mut evicted = Vec::new();
        for &v in &data {
            if let Some(old) = ring.push(v) {
                evicted.push(old);
            }
        }
        // Evictions replay the stream prefix in arrival order.
        let expect = &data[..data.len().saturating_sub(cap)];
        prop_assert_eq!(evicted, expect.to_vec());
        prop_assert_eq!(ring.len(), data.len().min(cap));
    }
}
