//! Allocation-regression guard for the steady-state ingest hot paths.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warmup that establishes every ring, scratch buffer, and refit arena,
//! the hot loops below must perform **zero** heap allocations:
//!
//! - `MachinePipeline::ingest_column` on a trend-family detector (the
//!   e14 columnar serving path), including the per-sample Sen-slope
//!   refits,
//! - `StreamingHolder::push` including emissions,
//! - `StreamingDimension::push` (both window methods) including
//!   emissions,
//! - `StreamingSpectrum::push_in` between emissions (emissions
//!   themselves go through the pool's `try_map_indexed`, which returns
//!   its results in a fresh `Vec` — that per-emission cost is bounded by
//!   `repro e19`, not by this guard).
//!
//! Everything runs in ONE `#[test]` so no concurrent test can pollute
//! the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use aging_core::baseline::TrendPredictorConfig;
use aging_core::fusion::FusionRule;
use aging_fractal::spectrum::{SpectrumConfig, StreamingSpectrum};
use aging_fractal::streaming::{StreamingDimension, StreamingHolder, WindowDimension};
use aging_memsim::Counter;
use aging_par::Pool;
use aging_stream::pipeline::{CounterDetector, MachinePipeline, PipelineEvent};
use aging_stream::{DetectorSpec, GateConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Counting is gated per thread so the libtest harness (which keeps
    /// its own threads alive alongside the test body) cannot charge its
    /// bookkeeping allocations to a measured window. The `const` init
    /// keeps the TLS access itself allocation-free, and `try_with`
    /// tolerates allocator calls during thread teardown.
    static TRACK: Cell<bool> = const { Cell::new(false) };
}

fn tracking() -> bool {
    TRACK.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if tracking() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if tracking() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if tracking() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with this thread's allocations counted; returns how many
/// allocator calls (alloc / alloc_zeroed / realloc) it performed.
fn counted<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    TRACK.with(|t| t.set(true));
    let out = f();
    TRACK.with(|t| t.set(false));
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

/// Deterministic rough noise in [-1, 1] (splitmix-style LCG) — enough
/// variation that every estimator stays off its degenerate paths.
fn noise(n: usize) -> Vec<f64> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

/// e14-style trend pipeline: columnar steady-state ingest must not
/// allocate once the gate runs, refit arena and event vec are warm.
fn trend_pipeline_stays_allocation_free() {
    let detectors = [CounterDetector {
        counter: Counter::AvailableBytes,
        spec: DetectorSpec::Trend(TrendPredictorConfig {
            window: 64,
            refit_every: 4,
            alarm_horizon_secs: 1e6,
            ..TrendPredictorConfig::depleting(5.0)
        }),
    }];
    let gate = GateConfig {
        nominal_period_secs: 5.0,
        ..GateConfig::default()
    };
    let mut pipeline = MachinePipeline::new(&detectors, FusionRule::Any, gate).unwrap();
    let mut out: Vec<PipelineEvent> = Vec::with_capacity(64);

    // Growing AvailableBytes never extrapolates to exhaustion, so no
    // alert is ever pushed into `out`.
    let column = |start: usize| -> (Vec<f64>, Vec<f64>) {
        let times = (0..64).map(|k| 5.0 * (start + k) as f64).collect();
        let values = (0..64).map(|k| 1e9 + (start + k) as f64).collect();
        (times, values)
    };

    // Warmup: fill the 64-sample window and run many refits (every 4
    // samples), sizing the Sen-slope arena and the column scratch.
    let mut fed = 0usize;
    for _ in 0..16 {
        let (times, values) = column(fed);
        pipeline.ingest_column(Counter::AvailableBytes, &times, &values, &mut out);
        fed += 64;
    }

    let measured: Vec<(Vec<f64>, Vec<f64>)> = (0..8).map(|c| column(fed + 64 * c)).collect();
    let (delta, ()) = counted(|| {
        for (times, values) in &measured {
            pipeline.ingest_column(Counter::AvailableBytes, times, values, &mut out);
        }
    });
    assert_eq!(
        delta, 0,
        "steady-state ingest_column allocated {delta} times"
    );
    assert!(out.is_empty(), "unexpected pipeline events: {out:?}");
}

/// Streaming Hölder pushes — including per-push emissions once the ring
/// is full — must not allocate.
fn streaming_holder_stays_allocation_free() {
    let mut holder = StreamingHolder::new(32, 8, 2.0).unwrap();
    let data = noise(392);
    let (warmup, measured) = data.split_at(136);
    for &v in warmup {
        holder.push(v).unwrap();
    }

    let (delta, emissions) = counted(|| {
        let mut emissions = 0usize;
        for &v in measured {
            if holder.push(v).unwrap().is_some() {
                emissions += 1;
            }
        }
        emissions
    });
    assert_eq!(delta, 0, "StreamingHolder push allocated {delta} times");
    assert_eq!(emissions, measured.len(), "ring was full, every push emits");
}

/// Streaming dimension pushes — including windowed emissions — must not
/// allocate for either window method.
fn streaming_dimension_stays_allocation_free(method: WindowDimension) {
    let mut dim = StreamingDimension::new(method, 64, 16).unwrap();
    let data = noise(384);
    let (warmup, measured) = data.split_at(128);
    for &v in warmup {
        dim.push(v).unwrap();
    }

    let (delta, emissions) = counted(|| {
        let mut emissions = 0usize;
        for &v in measured {
            if dim.push(v).unwrap().is_some() {
                emissions += 1;
            }
        }
        emissions
    });
    assert_eq!(
        delta, 0,
        "StreamingDimension({method:?}) allocated {delta} times"
    );
    assert_eq!(emissions, measured.len() / 16, "one emission per stride");
}

/// Streaming spectrum pushes between emissions must not allocate (the
/// emission itself pays one pool fan-out, gated by `repro e19`).
fn streaming_spectrum_between_emissions_stays_allocation_free() {
    let config = SpectrumConfig::default();
    let (window, stride) = (config.window, config.stride);
    let mut spectrum = StreamingSpectrum::new(&config).unwrap();
    let pool = Pool::new(1);
    let data = noise(window + stride);

    // Warmup through the first emission so ring + kernel are built.
    for &v in &data[..window] {
        spectrum.push_in(v, &pool).unwrap();
    }

    let (delta, ()) = counted(|| {
        for &v in &data[window..window + stride - 1] {
            let emitted = spectrum.push_in(v, &pool).unwrap();
            assert!(emitted.is_none(), "mid-stride push must not emit");
        }
    });
    assert_eq!(
        delta, 0,
        "non-emitting spectrum push allocated {delta} times"
    );

    // The next push completes the stride and emits again.
    let emitted = spectrum.push_in(data[window + stride - 1], &pool).unwrap();
    assert!(emitted.is_some(), "stride-completing push must emit");
}

#[test]
fn steady_state_hot_paths_do_not_allocate() {
    trend_pipeline_stays_allocation_free();
    streaming_holder_stays_allocation_free();
    streaming_dimension_stays_allocation_free(WindowDimension::BoxCounting);
    streaming_dimension_stays_allocation_free(WindowDimension::Variation);
    streaming_spectrum_between_emissions_stays_allocation_free();
}
