//! Per-source sample sanitation: the gate between a raw feed and a
//! detector.
//!
//! Real monitor feeds misbehave in three ways the offline pipeline never
//! sees: values go non-finite (exporter hiccups, parse gaps), timestamps
//! arrive out of order (retransmits, clock steps), and the feed stalls
//! (agent restarts). A [`SampleGate`] applies one documented policy per
//! defect and counts everything it does, so a fleet operator can audit the
//! stream quality from the telemetry snapshot:
//!
//! | Defect | Policy |
//! |---|---|
//! | non-finite value | **drop** the sample (`dropped_non_finite`) |
//! | `time ≤` last accepted time | **drop** the sample (`dropped_out_of_order`) |
//! | gap `> max_gap_factor ×` nominal period | **reset** downstream detector, then accept (`gaps_detected`) |
//!
//! Dropping (rather than interpolating) non-finite values keeps the gate
//! allocation-free and unbiased; a long run of drops then surfaces as a
//! gap, which resets the detector instead of feeding it fabricated data.

use aging_timeseries::{Error, Result};

use crate::source::StreamSample;
use crate::telemetry::StageCounters;

/// Gate policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Nominal sampling period of the feed, seconds.
    pub nominal_period_secs: f64,
    /// A gap longer than `max_gap_factor × nominal_period_secs` is a
    /// discontinuity: the downstream detector must be reset rather than
    /// shown two samples that pretend to be adjacent.
    pub max_gap_factor: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            nominal_period_secs: 30.0,
            max_gap_factor: 4.0,
        }
    }
}

impl GateConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive period or a
    /// gap factor below 1.
    pub fn validate(&self) -> Result<()> {
        if !(self.nominal_period_secs > 0.0) {
            return Err(Error::invalid("nominal_period_secs", "must be positive"));
        }
        if !(self.max_gap_factor >= 1.0) {
            return Err(Error::invalid("max_gap_factor", "must be at least 1"));
        }
        Ok(())
    }
}

/// What the gate decided about one raw sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateAction {
    /// Feed the sample to the detector.
    Accept(StreamSample),
    /// Discard the sample (non-finite value).
    DropNonFinite,
    /// Discard the sample (timestamp not after the last accepted one).
    DropOutOfOrder,
    /// A feed discontinuity: reset the downstream detector, then feed the
    /// sample (it starts the new segment).
    AcceptAfterGap(StreamSample),
}

/// Stateful defect gate for one stream.
#[derive(Debug, Clone)]
pub struct SampleGate {
    config: GateConfig,
    last_time: Option<f64>,
    counters: StageCounters,
}

impl SampleGate {
    /// Creates a gate.
    ///
    /// # Errors
    ///
    /// Propagates [`GateConfig::validate`] failures.
    pub fn new(config: GateConfig) -> Result<Self> {
        config.validate()?;
        Ok(SampleGate {
            config,
            last_time: None,
            counters: StageCounters::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &GateConfig {
        &self.config
    }

    /// Ingestion counters accumulated so far.
    pub fn counters(&self) -> &StageCounters {
        &self.counters
    }

    /// Judges one raw sample.
    pub fn push(&mut self, raw: StreamSample) -> GateAction {
        self.counters.ingested += 1;
        if !raw.value.is_finite() || !raw.time_secs.is_finite() {
            self.counters.dropped_non_finite += 1;
            return GateAction::DropNonFinite;
        }
        let Some(last) = self.last_time else {
            self.last_time = Some(raw.time_secs);
            self.counters.accepted += 1;
            return GateAction::Accept(raw);
        };
        if raw.time_secs <= last {
            self.counters.dropped_out_of_order += 1;
            return GateAction::DropOutOfOrder;
        }
        let gap = raw.time_secs - last;
        self.last_time = Some(raw.time_secs);
        self.counters.accepted += 1;
        if gap > self.config.max_gap_factor * self.config.nominal_period_secs {
            self.counters.gaps_detected += 1;
            GateAction::AcceptAfterGap(raw)
        } else {
            GateAction::Accept(raw)
        }
    }

    /// Forgets the stream position (the counters are retained — they are
    /// lifetime totals).
    pub fn reset(&mut self) {
        self.last_time = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> SampleGate {
        SampleGate::new(GateConfig {
            nominal_period_secs: 30.0,
            max_gap_factor: 4.0,
        })
        .unwrap()
    }

    fn s(t: f64, v: f64) -> StreamSample {
        StreamSample {
            time_secs: t,
            value: v,
        }
    }

    #[test]
    fn config_guards() {
        assert!(GateConfig {
            nominal_period_secs: 0.0,
            max_gap_factor: 4.0
        }
        .validate()
        .is_err());
        assert!(GateConfig {
            nominal_period_secs: 30.0,
            max_gap_factor: 0.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn accepts_clean_sequence() {
        let mut g = gate();
        for i in 0..5 {
            let a = g.push(s(i as f64 * 30.0, 100.0 - i as f64));
            assert!(matches!(a, GateAction::Accept(_)), "{a:?}");
        }
        assert_eq!(g.counters().accepted, 5);
        assert_eq!(g.counters().ingested, 5);
    }

    #[test]
    fn drops_non_finite_and_out_of_order() {
        let mut g = gate();
        assert!(matches!(g.push(s(0.0, 1.0)), GateAction::Accept(_)));
        assert_eq!(g.push(s(30.0, f64::NAN)), GateAction::DropNonFinite);
        assert_eq!(g.push(s(f64::INFINITY, 1.0)), GateAction::DropNonFinite);
        assert_eq!(g.push(s(0.0, 2.0)), GateAction::DropOutOfOrder);
        assert_eq!(g.push(s(-5.0, 2.0)), GateAction::DropOutOfOrder);
        // The clock did not advance on dropped samples.
        assert!(matches!(g.push(s(30.0, 2.0)), GateAction::Accept(_)));
        let c = g.counters();
        assert_eq!(c.dropped_non_finite, 2);
        assert_eq!(c.dropped_out_of_order, 2);
        assert_eq!(c.accepted, 2);
    }

    #[test]
    fn long_gap_flags_discontinuity() {
        let mut g = gate();
        g.push(s(0.0, 1.0));
        g.push(s(30.0, 1.0));
        // 121 s > 4 × 30 s: discontinuity.
        let a = g.push(s(151.0, 1.0));
        assert!(matches!(a, GateAction::AcceptAfterGap(_)), "{a:?}");
        // Exactly at the limit: accepted normally.
        let b = g.push(s(151.0 + 120.0, 1.0));
        assert!(matches!(b, GateAction::Accept(_)), "{b:?}");
        assert_eq!(g.counters().gaps_detected, 1);
    }

    #[test]
    fn reset_forgets_position_keeps_totals() {
        let mut g = gate();
        g.push(s(100.0, 1.0));
        g.reset();
        // An "earlier" timestamp is fine after reset (new segment).
        assert!(matches!(g.push(s(0.0, 1.0)), GateAction::Accept(_)));
        assert_eq!(g.counters().accepted, 2);
    }
}
