//! Property tests for the wire protocol:
//!
//! 1. codec round-trip identity — any frame encoded, chunked arbitrarily
//!    through the [`FrameDecoder`] and decoded again yields the same
//!    payload bytes;
//! 2. garbage tolerance — arbitrary byte soup fed in arbitrary chunks
//!    never panics the decoder: every byte is either consumed as a
//!    CRC-valid frame, left buffered, or the stream is flagged corrupt;
//! 3. max-frame enforcement — a length prefix above the limit always
//!    flags corruption, no matter what follows.

use aging_memsim::Counter;
use aging_serve::codec::FrameDecoder;
use aging_serve::protocol::{
    counter_code, crc32, encode_frame, Frame, Record, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// Builds a frame from generated scalars. The `kind` index picks the
/// variant; the numeric payloads reuse whatever generated values apply
/// (the vendored proptest has no enum/tuple strategies).
fn build_frame(kind: usize, a: u64, b: u64, f: f64, text: &str, n_records: usize) -> Frame {
    let records: Vec<Record> = (0..n_records)
        .map(|i| Record {
            machine_id: a.wrapping_add(i as u64),
            counter: counter_code(Counter::ALL[i % Counter::ALL.len()]),
            // Exercise non-finite and negative floats too.
            time_secs: if i % 7 == 3 { f64::NAN } else { f + i as f64 },
            value: if i % 5 == 4 {
                f64::NEG_INFINITY
            } else {
                -f * i as f64
            },
        })
        .collect();
    match kind {
        0 => Frame::Hello {
            version: (a % 256) as u8,
            name: text.to_string(),
        },
        1 => Frame::HelloAck {
            version: PROTOCOL_VERSION,
            window: (a % 65536) as u16,
            max_frame: b as u32,
        },
        2 => Frame::Batch { seq: a, records },
        3 => Frame::Ack {
            seq: a,
            accepted: (b % 65536) as u16,
        },
        4 => Frame::Busy {
            backlog: (a % (u64::from(u32::MAX) + 1)) as u32,
        },
        5 => Frame::MachineDone { machine_id: a },
        6 => Frame::QueryStatus,
        7 => Frame::StatusReply {
            json: text.to_string(),
        },
        8 => Frame::QueryMachine { machine_id: a },
        9 => Frame::MachineReply {
            json: if a.is_multiple_of(2) {
                None
            } else {
                Some(text.to_string())
            },
        },
        10 => Frame::QueryAlarms { since: a },
        11 => Frame::Bye,
        12 => Frame::ByeAck,
        _ => Frame::Error {
            code: (a % 256) as u8,
            message: text.to_string(),
        },
    }
}

/// Splits `bytes` into chunks whose sizes cycle through `cuts`, feeding
/// each into the decoder.
fn feed_chunked(dec: &mut FrameDecoder, bytes: &[u8], cuts: &[usize]) {
    let mut pos = 0;
    let mut i = 0;
    while pos < bytes.len() {
        let step = cuts[i % cuts.len()].max(1).min(bytes.len() - pos);
        dec.feed(&bytes[pos..pos + step]);
        pos += step;
        i += 1;
    }
}

proptest! {
    /// Round-trip identity: re-encoded payload bytes are identical (the
    /// byte-level comparison sidesteps NaN != NaN on decoded floats).
    #[test]
    fn frames_survive_arbitrary_chunking(
        kinds in prop::collection::vec(0usize..14, 1..=12),
        seeds in prop::collection::vec(0u64..u64::MAX, 12..=12),
        floats in prop::collection::vec(-1e12f64..1e12, 12..=12),
        lens in prop::collection::vec(0usize..40, 12..=12),
        cuts in prop::collection::vec(1usize..37, 1..=8),
    ) {
        let mut wire = Vec::new();
        let mut payloads = Vec::new();
        for (i, &kind) in kinds.iter().enumerate() {
            let text: String = "multifractal-".chars().cycle().take(lens[i]).collect();
            let frame = build_frame(kind, seeds[i], seeds[(i + 1) % seeds.len()], floats[i], &text, lens[i] % 9);
            wire.extend_from_slice(&encode_frame(&frame));
            payloads.push(frame.encode_payload());
        }

        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        feed_chunked(&mut dec, &wire, &cuts);
        for expected in &payloads {
            let got = dec.next_payload().unwrap().expect("frame present");
            prop_assert_eq!(&got, expected);
            let decoded = Frame::decode_payload(&got).expect("decodes");
            prop_assert_eq!(&decoded.encode_payload(), expected);
        }
        prop_assert!(dec.next_payload().unwrap().is_none());
        prop_assert!(!dec.mid_frame());
    }

    /// Arbitrary garbage never panics: each pulled payload either
    /// decodes or is rejected with an error string, and the decoder ends
    /// in a sane state (corrupt, mid-frame, or fully drained).
    #[test]
    fn garbage_never_panics(
        bytes in prop::collection::vec(0u8..=255, 0..=600),
        cuts in prop::collection::vec(1usize..41, 1..=8),
    ) {
        let mut dec = FrameDecoder::new(1024);
        feed_chunked(&mut dec, &bytes, &cuts);
        let mut pulled = 0usize;
        loop {
            match dec.next_payload() {
                Err(_) => {
                    prop_assert!(dec.is_corrupt());
                    // Corruption is sticky.
                    prop_assert!(dec.next_payload().is_err());
                    break;
                }
                Ok(None) => break,
                Ok(Some(payload)) => {
                    // A CRC-passing payload may still be semantic junk;
                    // decode_payload must reject it gracefully, not panic.
                    let _ = Frame::decode_payload(&payload);
                    pulled += 1;
                    prop_assert!(pulled <= bytes.len() / 8 + 1);
                }
            }
        }
    }

    /// Oversized (or zero) length prefixes always corrupt the stream.
    #[test]
    fn max_frame_size_is_enforced(
        excess in prop::collection::vec(1u64..1_000_000, 1..=1),
        tail in prop::collection::vec(0u8..=255, 0..=64),
    ) {
        let max_frame = 256u32;
        let bad_len = u64::from(max_frame) + excess[0];
        let bad_len = u32::try_from(bad_len).unwrap_or(u32::MAX);

        // A frame that would be perfectly valid except for its size.
        let mut wire = bad_len.to_le_bytes().to_vec();
        wire.extend_from_slice(&tail);
        let mut dec = FrameDecoder::new(max_frame);
        dec.feed(&wire);
        prop_assert!(dec.next_payload().is_err());
        prop_assert!(dec.is_corrupt());

        // Sanity: the same payload passes under a larger limit when the
        // frame is honestly sized.
        let payload = vec![0xau8; 16];
        let mut ok = (payload.len() as u32).to_le_bytes().to_vec();
        ok.extend_from_slice(&payload);
        ok.extend_from_slice(&crc32(&payload).to_le_bytes());
        let mut dec = FrameDecoder::new(max_frame);
        dec.feed(&ok);
        prop_assert_eq!(dec.next_payload().unwrap(), Some(payload));
    }
}
