//! The reconstructed experiments E1–E8 (see DESIGN.md for the index).
//!
//! Every function regenerates one table/figure of the target paper's
//! (reconstructed) evaluation and prints it; when an output directory is
//! given, the underlying series/tables are also written as CSV.

use crate::scenarios;
use crate::trajectory;
use crate::util::{hours, opt_fmt, write_series_csv, Table};
use aging_core::baseline::{ResourceDirection, TrendPredictorConfig};
use aging_core::detector::{analyze, DetectorConfig, DimensionMethod, JumpRule};
use aging_core::eval::{compare, evaluate, PredictorSpec};
use aging_core::progression::{progression, ProgressionConfig};
use aging_core::rejuvenation::{run_policy, OutageCosts, Policy};
use aging_fractal::holder::{holder_trace, HolderEstimator};
use aging_fractal::spectrum::{leader_cumulants, mfdfa, partition_function, MfdfaConfig};
use aging_fractal::{generate, hurst};
use aging_memsim::{simulate_fleet, simulate_with_reboots, Counter, SimReport};
use aging_timeseries::{stats, Result};
use aging_wavelet::Wavelet;
use std::path::Path;

const HOUR: f64 = 3600.0;

fn ram_bytes() -> f64 {
    aging_memsim::MachineConfig::workstation_nt4().ram.as_f64()
}

fn swap_bytes() -> f64 {
    aging_memsim::MachineConfig::workstation_nt4().swap.as_f64()
}

/// Trend-predictor configuration for the NT4 free-memory counter.
fn trend_available() -> TrendPredictorConfig {
    TrendPredictorConfig {
        sample_period_secs: 30.0,
        window: 240,
        refit_every: 8,
        alpha: 0.05,
        exhaustion_level: 0.02 * ram_bytes(),
        direction: ResourceDirection::Depleting,
        alarm_horizon_secs: 2.0 * HOUR,
    }
}

/// Trend-predictor configuration for the NT4 used-swap counter.
fn trend_swap() -> TrendPredictorConfig {
    TrendPredictorConfig {
        exhaustion_level: 0.95 * swap_bytes(),
        direction: ResourceDirection::Filling,
        ..trend_available()
    }
}

/// The standard E4 predictor set for a counter direction.
fn predictor_specs(counter: Counter) -> Vec<PredictorSpec> {
    match counter {
        Counter::UsedSwapBytes => vec![
            PredictorSpec::HolderDimension(DetectorConfig::default()),
            PredictorSpec::SenSlope(trend_swap()),
            PredictorSpec::Ols(trend_swap()),
            PredictorSpec::Threshold {
                level: 0.85 * swap_bytes(),
                direction: ResourceDirection::Filling,
            },
            PredictorSpec::Cusum {
                config: aging_timeseries::changepoint::CusumConfig::default(),
                direction: ResourceDirection::Filling,
            },
        ],
        _ => vec![
            PredictorSpec::HolderDimension(DetectorConfig::default()),
            PredictorSpec::SenSlope(trend_available()),
            PredictorSpec::Ols(trend_available()),
            PredictorSpec::Threshold {
                level: 0.05 * ram_bytes(),
                direction: ResourceDirection::Depleting,
            },
            PredictorSpec::Cusum {
                config: aging_timeseries::changepoint::CusumConfig::default(),
                direction: ResourceDirection::Depleting,
            },
        ],
    }
}

fn banner(id: &str, title: &str, expectation: &str) {
    println!("\n════ {id}: {title} ════");
    println!("reconstructed expectation: {expectation}\n");
}

/// E1 — memory-resource traces of two aging machines run to crash.
pub fn e1(quick: bool, out: Option<&Path>) -> Result<()> {
    banner(
        "E1",
        "resource traces of aging machines (paper Fig. traces)",
        "free memory falls (with violent fluctuation) and used swap climbs until the crash",
    );
    let horizon = if quick { 24.0 * HOUR } else { 120.0 * HOUR };
    let scenarios = [scenarios::machine_a(101), scenarios::machine_b(202)];
    let reports = simulate_fleet(&scenarios, horizon)?;

    let mut table = Table::new(vec![
        "machine",
        "crash[h]",
        "cause",
        "samples",
        "avail_first[MiB]",
        "avail_last[MiB]",
        "swap_first[MiB]",
        "swap_last[MiB]",
    ]);
    for report in &reports {
        let avail = report.log.series(Counter::AvailableBytes)?;
        let swap = report.log.series(Counter::UsedSwapBytes)?;
        let crash = report.first_crash();
        let mib = 1024.0 * 1024.0;
        table.row(vec![
            report.scenario_name.clone(),
            opt_fmt(crash.map(|c| c.time.as_secs()), hours),
            crash.map_or("-".into(), |c| c.cause.to_string()),
            format!("{}", avail.len()),
            format!("{:.1}", avail.values()[0] / mib),
            format!("{:.1}", avail.values()[avail.len() - 1] / mib),
            format!("{:.1}", swap.values()[0] / mib),
            format!("{:.1}", swap.values()[swap.len() - 1] / mib),
        ]);

        // "Figure": 16-bucket means of the two resources over the run.
        println!(
            "{} — free memory / used swap (16-bucket means, MiB):",
            report.scenario_name
        );
        for counter in [Counter::AvailableBytes, Counter::UsedSwapBytes] {
            let s = report.log.series(counter)?;
            let bucket = (s.len() / 16).max(1);
            let means: Vec<String> = s
                .values()
                .chunks(bucket)
                .take(16)
                .map(|c| format!("{:5.0}", c.iter().sum::<f64>() / c.len() as f64 / mib))
                .collect();
            println!("  {:<18} [{}]", counter.to_string(), means.join(" "));
        }
        if let Some(dir) = out {
            let times: Vec<f64> = (0..avail.len()).map(|i| avail.time_at(i)).collect();
            write_series_csv(
                &dir.join(format!("e1_{}.csv", report.scenario_name)),
                &["t_secs", "available_bytes", "used_swap_bytes"],
                &[&times, avail.values(), swap.values()],
            )?;
        }
    }
    println!("\n{table}");
    if let Some(dir) = out {
        table.write_csv(&dir.join("e1_summary.csv"))?;
    }
    Ok(())
}

/// E2 — local Hölder exponent traces of the E1 machines.
pub fn e2(quick: bool, out: Option<&Path>) -> Result<()> {
    banner(
        "E2",
        "local Hölder exponent traces (paper Fig. h(t))",
        "h(t) is rough but stable early in life and collapses toward 0 as the crash nears",
    );
    let horizon = if quick { 24.0 * HOUR } else { 120.0 * HOUR };
    let scenarios = [scenarios::machine_a(101), scenarios::machine_b(202)];
    let reports = simulate_fleet(&scenarios, horizon)?;

    let mut table = Table::new(vec![
        "machine",
        "resource",
        "q1 mean h",
        "q2 mean h",
        "q3 mean h",
        "q4 mean h",
    ]);
    for report in &reports {
        for counter in [Counter::AvailableBytes, Counter::UsedSwapBytes] {
            let s = report.log.series(counter)?;
            let trace = holder_trace(s.values(), &HolderEstimator::default())?;
            let q = trace.len() / 4;
            if q == 0 {
                continue;
            }
            let mut cells = vec![report.scenario_name.clone(), counter.to_string()];
            for k in 0..4 {
                let lo = k * q;
                let hi = if k == 3 { trace.len() } else { (k + 1) * q };
                cells.push(format!("{:.3}", stats::mean(&trace[lo..hi])?));
            }
            table.row(cells);
            if let Some(dir) = out {
                let idx: Vec<f64> = (0..trace.len()).map(|i| i as f64 * s.dt()).collect();
                write_series_csv(
                    &dir.join(format!("e2_{}_{}.csv", report.scenario_name, counter)),
                    &["t_secs", "holder_exponent"],
                    &[&idx, &trace],
                )?;
            }
        }
    }
    println!("{table}");
    if let Some(dir) = out {
        table.write_csv(&dir.join("e2_summary.csv"))?;
    }
    Ok(())
}

/// E3 — windowed Hölder-dimension traces with crash markers and the
/// alarm-vs-crash table on a multi-crash reboot log.
pub fn e3(quick: bool, out: Option<&Path>) -> Result<()> {
    banner(
        "E3",
        "Hölder-dimension jumps before crashes (paper Fig. D_h + alarm table)",
        "the detector's anomaly (dimension jump / regularity collapse) precedes every crash with hours of lead",
    );
    let horizon = if quick {
        48.0 * HOUR
    } else {
        10.0 * 24.0 * HOUR
    };
    let scenario = scenarios::machine_a(777);
    let report = simulate_with_reboots(&scenario, horizon)?;
    println!(
        "{}: {} crashes over {} h",
        report.scenario_name,
        report.log.crashes().len(),
        hours(report.simulated_secs),
    );

    let spec = PredictorSpec::HolderDimension(DetectorConfig::default());
    let outcomes = evaluate(&spec, &report, Counter::AvailableBytes)?;
    let mut table = Table::new(vec!["segment", "crash[h]", "cause", "alarm[h]", "lead[h]"]);
    for outcome in outcomes.iter().filter(|o| o.crash_secs.is_some()) {
        let cause = report
            .log
            .crashes()
            .get(outcome.segment)
            .map_or("-".into(), |c| c.cause.to_string());
        table.row(vec![
            format!("{}", outcome.segment),
            opt_fmt(outcome.crash_secs, hours),
            cause,
            opt_fmt(outcome.alarm_secs, hours),
            opt_fmt(outcome.lead_secs, hours),
        ]);
    }
    println!("{table}");

    // Dimension trace of the first segment as the "figure".
    let series = report.log.series(Counter::AvailableBytes)?;
    let first_crash_idx = report
        .first_crash()
        .and_then(|c| series.index_of_time(c.time.as_secs()))
        .unwrap_or(series.len() - 1);
    let segment = series.slice(0, first_crash_idx + 1)?;
    let analysis = analyze(segment.values(), &DetectorConfig::default())?;
    if let Some(b) = analysis.baseline {
        println!(
            "segment 0 baseline: D = {:.3} (+{:.3} jump threshold), mean h = {:.3} (−{:.3} collapse threshold)",
            b.dimension, b.dimension_delta, b.mean_holder, b.holder_delta
        );
    }
    if let Some(dir) = out {
        let t: Vec<f64> = analysis
            .dimension_trace
            .iter()
            .map(|&(i, _)| i as f64 * series.dt())
            .collect();
        let d: Vec<f64> = analysis.dimension_trace.iter().map(|&(_, v)| v).collect();
        let h: Vec<f64> = analysis.mean_holder_trace.iter().map(|&(_, v)| v).collect();
        write_series_csv(
            &dir.join("e3_dimension_trace.csv"),
            &["t_secs", "holder_dimension", "mean_holder"],
            &[&t, &d, &h],
        )?;
        table.write_csv(&dir.join("e3_alarms.csv"))?;
    }
    Ok(())
}

/// E4 — the headline comparison: the Hölder-dimension detector against
/// trend-based predictors across a fleet with diverse aging dynamics.
pub fn e4(quick: bool, out: Option<&Path>) -> Result<()> {
    banner(
        "E4",
        "detector comparison across a fleet (paper's comparison table)",
        "the multifractal detector covers all aging shapes (incl. bursty/late-onset, where \
         trend extrapolation mispredicts) with few false alarms; trend methods shine only on \
         clean monotone leaks",
    );
    let (aging_n, healthy_n) = if quick { (4, 2) } else { (12, 8) };
    let mut fleet = scenarios::aging_fleet(aging_n);
    fleet.extend(scenarios::healthy_fleet(healthy_n));
    let horizon = if quick { 36.0 * HOUR } else { 72.0 * HOUR };
    println!(
        "simulating {} machines for up to {} h…",
        fleet.len(),
        hours(horizon)
    );
    let reports = simulate_fleet(&fleet, horizon)?;
    let crashed = reports.iter().filter(|r| r.first_crash().is_some()).count();
    println!("{crashed}/{} machines crashed\n", reports.len());

    for counter in [Counter::AvailableBytes, Counter::UsedSwapBytes] {
        let mut table = Table::new(vec![
            "predictor",
            "crashes",
            "detected",
            "missed",
            "false",
            "mean lead[h]",
            "median lead[h]",
        ]);
        for spec in predictor_specs(counter) {
            let row = compare(&spec, &reports, counter)?;
            table.row(vec![
                row.predictor.clone(),
                format!("{}", row.crashes),
                format!("{}", row.detected),
                format!("{}", row.missed),
                format!("{}", row.false_alarms),
                opt_fmt(row.mean_lead_secs, hours),
                opt_fmt(row.median_lead_secs, hours),
            ]);
        }
        println!("monitored counter: {counter}");
        println!("{table}");
        if let Some(dir) = out {
            table.write_csv(&dir.join(format!("e4_{counter}.csv")))?;
        }
    }
    Ok(())
}

/// E5 — estimator validation on synthetic ground truth (gates everything
/// else).
pub fn e5(quick: bool, out: Option<&Path>) -> Result<()> {
    banner(
        "E5",
        "estimator validation on known ground truth",
        "every estimator recovers the known exponents within its documented tolerance",
    );
    let n = if quick { 4096 } else { 16_384 };

    let mut hurst_table = Table::new(vec![
        "true H",
        "DFA",
        "R/S",
        "aggvar",
        "periodogram",
        "holder mean",
        "MF-DFA h(2)",
    ]);
    for (i, &h) in [0.2, 0.3, 0.5, 0.7, 0.8, 0.9].iter().enumerate() {
        let noise = generate::fgn(n, h, 500 + i as u64)?;
        let motion = generate::fbm(n, h, 600 + i as u64)?;
        let trace = holder_trace(&motion, &HolderEstimator::default())?;
        let mf = mfdfa(&noise, &MfdfaConfig::default())?;
        hurst_table.row(vec![
            format!("{h:.1}"),
            format!("{:.3}", hurst::dfa(&noise, 1)?.hurst),
            format!("{:.3}", hurst::rescaled_range(&noise)?.hurst),
            format!("{:.3}", hurst::aggregated_variance(&noise)?.hurst),
            format!("{:.3}", hurst::periodogram_hurst(&noise)?.hurst),
            format!("{:.3}", stats::mean(&trace)?),
            opt_fmt(mf.hurst(), |v| format!("{v:.3}")),
        ]);
    }
    println!("fractional Gaussian noise / motion (H = Hölder ground truth):");
    println!("{hurst_table}");

    let mut wei_table = Table::new(vec!["true h", "holder mean", "leader c1"]);
    for &h in &[0.3, 0.5, 0.7] {
        let x = generate::weierstrass(n, h)?;
        let trace = holder_trace(&x, &HolderEstimator::default())?;
        let lc = leader_cumulants(&x, Wavelet::Daubechies6, 9, 3)?;
        wei_table.row(vec![
            format!("{h:.1}"),
            format!("{:.3}", stats::mean(&trace)?),
            format!("{:.3}", lc.c1),
        ]);
    }
    println!("Weierstrass series (uniform Hölder exponent):");
    println!("{wei_table}");

    let m0 = 0.3;
    let levels = if quick { 12 } else { 14 };
    let cascade = generate::binomial_cascade(levels, m0, false, 0)?;
    let qs = [-4.0, -2.0, -1.0, 0.5, 1.0, 2.0, 3.0, 4.0];
    let est = partition_function(&cascade, &qs)?;
    let mut tau_table = Table::new(vec!["q", "tau(q) measured", "tau(q) theory", "error"]);
    for (i, &q) in qs.iter().enumerate() {
        let theory = generate::binomial_cascade_tau(m0, q);
        tau_table.row(vec![
            format!("{q:.1}"),
            format!("{:.4}", est.exponents[i]),
            format!("{theory:.4}"),
            format!("{:+.4}", est.exponents[i] - theory),
        ]);
    }
    println!("binomial cascade (m0 = {m0}) partition exponents:");
    println!("{tau_table}");

    // Multifractality discrimination.
    let mono = generate::fgn(n.min(8192), 0.6, 42)?;
    let cascade_rand = generate::binomial_cascade(13, 0.3, true, 43)?;
    let w_mono = mfdfa(&mono, &MfdfaConfig::default())?.width();
    let w_multi = mfdfa(&cascade_rand, &MfdfaConfig::default())?.width();
    println!("MF-DFA spectrum width: monofractal fGn = {w_mono:.3}, cascade = {w_multi:.3} (cascade ≫ fGn)\n");

    if let Some(dir) = out {
        hurst_table
            .write_csv(&dir.join("e5_hurst.csv"))
            .and_then(|_| wei_table.write_csv(&dir.join("e5_weierstrass.csv")))
            .and_then(|_| tau_table.write_csv(&dir.join("e5_cascade_tau.csv")))?;
    }
    Ok(())
}

/// E6 — multifractal spectrum widening / regularity loss with age.
pub fn e6(quick: bool, out: Option<&Path>) -> Result<()> {
    banner(
        "E6",
        "multifractality intensifies with age (paper Fig. f(α) early vs late)",
        "late-life segments show lower mean Hölder exponent than early life; healthy controls stay flat",
    );
    // Finer sampling so each life segment is long enough for MF-DFA.
    let mut aging = scenarios::machine_a(303);
    aging.machine.sample_period_secs = 10.0;
    aging.faults = aging_memsim::FaultPlan::aging(18.0);
    let mut healthy = scenarios::healthy_control(404);
    healthy.machine.sample_period_secs = 10.0;
    let horizon = if quick { 20.0 * HOUR } else { 60.0 * HOUR };
    let reports = simulate_fleet(&[aging, healthy], horizon)?;

    let mut table = Table::new(vec![
        "machine",
        "segment",
        "mean h",
        "f(α) width",
        "h(2)",
        "leader c2",
    ]);
    for report in &reports {
        let series = report.log.series(Counter::AvailableBytes)?;
        let prog = progression(series.values(), &ProgressionConfig::default())?;
        for (i, seg) in prog.iter().enumerate() {
            table.row(vec![
                report.scenario_name.clone(),
                format!("{}/{}", i + 1, prog.len()),
                format!("{:.3}", seg.mean_holder),
                format!("{:.3}", seg.spectrum_width),
                opt_fmt(seg.hurst, |v| format!("{v:.3}")),
                opt_fmt(seg.c2, |v| format!("{v:.3}")),
            ]);
        }
        let signature = aging_core::progression::is_aging_signature(&prog);
        println!(
            "{}: crash {:?}, aging signature = {signature}",
            report.scenario_name,
            report
                .first_crash()
                .map(|c| format!("{} ({})", c.time, c.cause)),
        );
    }
    println!("\n{table}");
    if let Some(dir) = out {
        table.write_csv(&dir.join("e6_progression.csv"))?;
    }
    Ok(())
}

/// E7 — rejuvenation policy availability (the motivating application).
pub fn e7(quick: bool, out: Option<&Path>) -> Result<()> {
    banner(
        "E7",
        "rejuvenation policies (paper's motivating application)",
        "prediction-triggered rejuvenation avoids crash outages with fewer restarts than blind periodic policies",
    );
    let scenario = scenarios::machine_a(555);
    let horizon = if quick {
        3.0 * 24.0 * HOUR
    } else {
        14.0 * 24.0 * HOUR
    };
    let costs = OutageCosts::default();
    let policies = vec![
        Policy::None,
        Policy::Periodic {
            period_secs: 6.0 * HOUR,
        },
        Policy::Periodic {
            period_secs: 12.0 * HOUR,
        },
        Policy::Periodic {
            period_secs: 24.0 * HOUR,
        },
        Policy::PredictorTriggered {
            spec: PredictorSpec::HolderDimension(DetectorConfig::default()),
            counter: Counter::AvailableBytes,
            cooldown_secs: 3600.0,
        },
        Policy::PredictorTriggered {
            spec: PredictorSpec::SenSlope(trend_available()),
            counter: Counter::AvailableBytes,
            cooldown_secs: 3600.0,
        },
    ];
    println!(
        "scenario {} over {} days (crash outage {} min, restart {} min)…",
        scenario.name,
        horizon / 24.0 / HOUR,
        costs.crash_downtime_secs / 60.0,
        costs.rejuvenation_downtime_secs / 60.0
    );

    let mut table = Table::new(vec![
        "policy",
        "availability",
        "crashes",
        "rejuvenations",
        "downtime[h]",
    ]);
    for policy in &policies {
        let outcome = run_policy(&scenario, policy, horizon, costs)?;
        table.row(vec![
            outcome.policy.clone(),
            format!("{:.5}", outcome.availability()),
            format!("{}", outcome.crashes),
            format!("{}", outcome.rejuvenations),
            hours(outcome.downtime_secs),
        ]);
    }
    println!("{table}");
    if let Some(dir) = out {
        table.write_csv(&dir.join("e7_policies.csv"))?;
    }
    Ok(())
}

/// E8 — ablation: sensitivity of the detector to its design choices.
pub fn e8(quick: bool, out: Option<&Path>) -> Result<()> {
    banner(
        "E8",
        "detector design ablation",
        "the two-rule default is robust; single rules / tiny windows trade lead time against false alarms",
    );
    let (aging_n, healthy_n) = if quick { (4, 2) } else { (8, 6) };
    let mut fleet = scenarios::aging_fleet(aging_n);
    fleet.extend(scenarios::healthy_fleet(healthy_n));
    let horizon = if quick { 36.0 * HOUR } else { 72.0 * HOUR };
    println!("simulating {} machines…", fleet.len());
    let reports: Vec<SimReport> = simulate_fleet(&fleet, horizon)?;

    let base = DetectorConfig::default();
    let variants: Vec<(String, DetectorConfig)> = vec![
        ("default (either rule)".into(), base.clone()),
        (
            "rule: dimension-jump only".into(),
            DetectorConfig {
                rule: JumpRule::DimensionJump,
                ..base.clone()
            },
        ),
        (
            "rule: holder-collapse only".into(),
            DetectorConfig {
                rule: JumpRule::HolderCollapse,
                ..base.clone()
            },
        ),
        (
            "dimension: variation".into(),
            DetectorConfig {
                dimension_method: DimensionMethod::Variation,
                ..base.clone()
            },
        ),
        (
            "window 64".into(),
            DetectorConfig {
                dimension_window: 64,
                ..base.clone()
            },
        ),
        (
            "window 256".into(),
            DetectorConfig {
                dimension_window: 256,
                ..base.clone()
            },
        ),
        (
            "confirm 1 (single jump)".into(),
            DetectorConfig {
                confirm_windows: 1,
                ..base.clone()
            },
        ),
        (
            "confirm 5".into(),
            DetectorConfig {
                confirm_windows: 5,
                ..base.clone()
            },
        ),
        (
            "holder radius 16".into(),
            DetectorConfig {
                holder_radius: 16,
                holder_max_lag: 4,
                ..base.clone()
            },
        ),
        (
            "holder radius 64".into(),
            DetectorConfig {
                holder_radius: 64,
                ..base.clone()
            },
        ),
    ];

    let mut table = Table::new(vec![
        "variant",
        "detected",
        "missed",
        "false",
        "mean lead[h]",
    ]);
    for (name, config) in &variants {
        let row = compare(
            &PredictorSpec::HolderDimension(config.clone()),
            &reports,
            Counter::AvailableBytes,
        )?;
        table.row(vec![
            name.clone(),
            format!("{}/{}", row.detected, row.crashes),
            format!("{}", row.missed),
            format!("{}", row.false_alarms),
            opt_fmt(row.mean_lead_secs, hours),
        ]);
    }
    println!("{table}");
    if let Some(dir) = out {
        table.write_csv(&dir.join("e8_ablation.csv"))?;
    }
    Ok(())
}

/// E9 — operating characteristic: sweep the detector's sensitivity
/// parameters and chart coverage against false alarms.
pub fn e9(quick: bool, out: Option<&Path>) -> Result<()> {
    banner(
        "E9",
        "detector operating characteristic (threshold sweep)",
        "coverage and false alarms trade off monotonically; the default sits at full coverage with ~zero false alarms",
    );
    use aging_core::roc::{sweep_detector, SweepParameter};
    let (aging_n, healthy_n) = if quick { (4, 2) } else { (8, 8) };
    let mut fleet = scenarios::aging_fleet(aging_n);
    fleet.extend(scenarios::healthy_fleet(healthy_n));
    let horizon = if quick { 36.0 * HOUR } else { 72.0 * HOUR };
    println!("simulating {} machines…", fleet.len());
    let reports = simulate_fleet(&fleet, horizon)?;

    let base = DetectorConfig::default();
    let sweeps: [(&str, SweepParameter, Vec<f64>); 3] = [
        (
            "holder_drop",
            SweepParameter::HolderDrop,
            vec![0.1, 0.2, 0.3, 0.45, 0.6, 0.8],
        ),
        (
            "jump_delta",
            SweepParameter::JumpDelta,
            vec![0.1, 0.15, 0.2, 0.3, 0.45],
        ),
        (
            "confirm_windows",
            SweepParameter::ConfirmWindows,
            vec![1.0, 2.0, 3.0, 5.0, 8.0],
        ),
    ];
    for (name, param, values) in sweeps {
        let points = sweep_detector(&base, param, &values, &reports, Counter::AvailableBytes)?;
        let mut table = Table::new(vec![
            "value",
            "detected",
            "false-alarm rate",
            "mean lead[h]",
        ]);
        for p in &points {
            table.row(vec![
                format!("{:.2}", p.parameter),
                format!("{}/{}", p.row.detected, p.row.crashes),
                format!("{:.2}", p.false_alarm_rate()),
                opt_fmt(p.row.mean_lead_secs, hours),
            ]);
        }
        println!("sweep: {name} (default marked in DetectorConfig::default)");
        println!("{table}");
        if let Some(dir) = out {
            table.write_csv(&dir.join(format!("e9_{name}.csv")))?;
        }
    }
    Ok(())
}

/// E10 — seasonality robustness: a strong diurnal load cycle must not be
/// mistaken for aging, and aging must still be caught under it.
pub fn e10(quick: bool, out: Option<&Path>) -> Result<()> {
    banner(
        "E10",
        "diurnal-load robustness (extension)",
        "day/night load cycles alone cause no alarms; aging under diurnal load is still detected",
    );
    let n = if quick { 2 } else { 4 };
    let horizon = if quick { 36.0 * HOUR } else { 96.0 * HOUR };
    let mut fleet = Vec::new();
    // Peak diurnal load must stay within the machine's capacity, or the
    // "healthy" controls genuinely die of overload; derate the base rate.
    let mut workload = aging_memsim::WorkloadConfig::web_server_diurnal();
    workload.base_rate = 15.0;
    for seed in 0..n as u64 {
        fleet.push(aging_memsim::Scenario {
            name: format!("diurnal-healthy-{seed}"),
            machine: aging_memsim::MachineConfig::workstation_nt4(),
            workload: workload.clone(),
            faults: aging_memsim::FaultPlan::healthy(),
            seed: 3000 + seed,
        });
        fleet.push(aging_memsim::Scenario {
            name: format!("diurnal-aging-{seed}"),
            machine: aging_memsim::MachineConfig::workstation_nt4(),
            workload: workload.clone(),
            faults: aging_memsim::FaultPlan::aging(20.0),
            seed: 4000 + seed,
        });
    }
    println!(
        "simulating {} machines under ±60 % day/night load…",
        fleet.len()
    );
    let reports = simulate_fleet(&fleet, horizon)?;

    let mut table = Table::new(vec![
        "predictor",
        "crashes",
        "detected",
        "missed",
        "false",
        "mean lead[h]",
    ]);
    for spec in predictor_specs(Counter::AvailableBytes) {
        let row = compare(&spec, &reports, Counter::AvailableBytes)?;
        table.row(vec![
            row.predictor.clone(),
            format!("{}", row.crashes),
            format!("{}", row.detected),
            format!("{}", row.missed),
            format!("{}", row.false_alarms),
            opt_fmt(row.mean_lead_secs, hours),
        ]);
    }
    println!("{table}");
    if let Some(dir) = out {
        table.write_csv(&dir.join("e10_diurnal.csv"))?;
    }

    // Δα false-alarm sweep: the streaming spectrum-width detector over
    // the same diurnal fleet. A ±60 % day/night cycle modulates the
    // *amplitude* of the allocation process but not its correlation
    // structure, so the multifractal spectrum width must stay inside its
    // frozen baseline on the healthy controls — every confirmed Δα alarm
    // on a healthy diurnal machine is a seasonality artifact, and that
    // rate is the hard gate here. Coverage on the leaking machines is
    // recorded but NOT gated: a smooth leak drifts in amplitude, the
    // mode Δα is blind to by design, so under heavy load cycles the
    // spectrum width is a corroborating signal — isolating its
    // discriminative power needs the calm-workload regime E17 pins.
    {
        use aging_stream::detector::{
            DetectorSpec as StreamSpec, SpectrumDetectorConfig, StreamingDetector,
        };
        let spec = StreamSpec::Spectrum(SpectrumDetectorConfig::default());
        let mut table = Table::new(vec![
            "scenario",
            "samples",
            "Δα alarm[h]",
            "crash[h]",
            "verdict",
        ]);
        let (mut healthy_total, mut healthy_false) = (0u32, 0u32);
        let (mut aging_total, mut aging_hits) = (0u32, 0u32);
        for report in &reports {
            let series = report.log.series(Counter::CommittedBytes)?;
            let dt = series.dt();
            let mut detector = StreamingDetector::new(&spec)?;
            let mut alarm_secs: Option<f64> = None;
            for (i, &v) in series.values().iter().enumerate() {
                if let Some(alert) = detector.push(v)? {
                    if alert.level == aging_core::detector::AlertLevel::Alarm {
                        alarm_secs = Some(i as f64 * dt);
                        break;
                    }
                }
            }
            let crash_secs = report.first_crash().map(|c| c.time.as_secs());
            let is_aging = report.scenario_name.contains("aging");
            let verdict = if is_aging {
                aging_total += 1;
                match alarm_secs {
                    Some(_) => {
                        aging_hits += 1;
                        "detected"
                    }
                    None => "missed",
                }
            } else {
                healthy_total += 1;
                match alarm_secs {
                    Some(_) => {
                        healthy_false += 1;
                        "FALSE ALARM"
                    }
                    None => "quiet",
                }
            };
            table.row(vec![
                report.scenario_name.clone(),
                format!("{}", series.values().len()),
                opt_fmt(alarm_secs, hours),
                opt_fmt(crash_secs, hours),
                verdict.to_string(),
            ]);
        }
        println!("Δα spectrum-width detector under the same diurnal cycle:");
        println!("{table}");
        let false_rate = f64::from(healthy_false) / f64::from(healthy_total.max(1));
        println!(
            "Δα false-alarm rate on healthy diurnal controls: {healthy_false}/{healthy_total} \
             ({false_rate:.2}); coverage on smooth leaks (informational — Δα corroborates, \
             the trend predictors above carry detection here): {aging_hits}/{aging_total}"
        );
        if healthy_false > 0 {
            return Err(aging_timeseries::Error::invalid(
                "e10",
                format!(
                    "the spectrum-width detector mistook the day/night cycle for aging on \
                     {healthy_false}/{healthy_total} healthy machines"
                ),
            ));
        }
        if let Some(dir) = out {
            table.write_csv(&dir.join("e10_spectrum.csv"))?;
        }
    }
    Ok(())
}

/// E11 — streaming/batch parity and throughput (aging-stream subsystem).
pub fn e11(quick: bool, out: Option<&Path>) -> Result<()> {
    use aging_stream::detector::{AlertDetail, DetectorSpec, StreamingDetector};
    use aging_stream::gate::GateAction;
    use aging_stream::{GateConfig, SampleGate};

    banner(
        "E11",
        "online streaming detector: parity with the batch detector + throughput",
        "the bounded-memory streaming detector fires the identical alerts at the identical \
         sample times as the offline batch run, at >10x the throughput of re-running the \
         batch detector per sample",
    );
    let horizon = if quick {
        48.0 * HOUR
    } else {
        10.0 * 24.0 * HOUR
    };
    let report = aging_memsim::simulate(&scenarios::machine_a(777), horizon)?;
    let series = report.log.series(Counter::AvailableBytes)?;
    let values = series.values();
    let dt = series.dt();
    println!(
        "machine A trace: {} samples ({} h), crash: {}",
        values.len(),
        hours(report.simulated_secs),
        opt_fmt(report.first_crash().map(|c| c.time.as_secs()), hours),
    );

    // Batch (offline) run.
    let config = DetectorConfig::default();
    let batch = analyze(values, &config)?;

    // Streaming run through the full ingestion path: gate + detector.
    let mut gate = SampleGate::new(GateConfig {
        nominal_period_secs: dt,
        max_gap_factor: 4.0,
        ..GateConfig::default()
    })?;
    let mut streaming = StreamingDetector::new(&DetectorSpec::Holder(config.clone()))?;
    let mut streamed = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        let raw = aging_stream::StreamSample {
            time_secs: i as f64 * dt,
            value: v,
        };
        let accepted = match gate.push(raw) {
            GateAction::Accept(s) | GateAction::AcceptAfterGap(s) => s,
            GateAction::DropNonFinite | GateAction::DropOutOfOrder => continue,
        };
        if let Some(alert) = streaming.push(accepted.value)? {
            if let AlertDetail::Holder(a) = alert.detail {
                streamed.push(a);
            }
        }
    }

    let mut table = Table::new(vec!["metric", "batch", "stream", "note"]);
    let match_count = batch
        .alerts
        .iter()
        .zip(&streamed)
        .filter(|(a, b)| a == b)
        .count();
    let parity = batch.alerts.len() == streamed.len() && match_count == streamed.len();
    table.row(vec![
        "alerts".to_string(),
        format!("{}", batch.alerts.len()),
        format!("{}", streamed.len()),
        if parity {
            "identical".into()
        } else {
            "MISMATCH".to_string()
        },
    ]);
    for (k, (a, b)) in batch.alerts.iter().zip(&streamed).enumerate() {
        table.row(vec![
            format!("alert{k}_{:?}_t[h]", a.level),
            hours(a.sample_index as f64 * dt),
            hours(b.sample_index as f64 * dt),
            if a == b {
                "same sample".into()
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }

    // Amortized throughput: streaming vs re-running the batch detector
    // from scratch on every arriving sample (the stateless alternative).
    let m = values.len().min(1500);
    let prefix = &values[..m];
    let t0 = std::time::Instant::now();
    let mut det = StreamingDetector::new(&DetectorSpec::Holder(config.clone()))?;
    for &v in prefix {
        let _ = det.push(v)?;
    }
    let stream_us = t0.elapsed().as_secs_f64() * 1e6 / m as f64;
    let t0 = std::time::Instant::now();
    for i in 1..=m {
        let mut det = aging_core::detector::HolderDimensionDetector::new(config.clone())?;
        for &v in &prefix[..i] {
            let _ = det.push(v)?;
        }
    }
    let scratch_us = t0.elapsed().as_secs_f64() * 1e6 / m as f64;
    let speedup = scratch_us / stream_us;
    table.row(vec![
        "amortized_us_per_sample".to_string(),
        format!("{scratch_us:.1}"),
        format!("{stream_us:.2}"),
        format!("{speedup:.0}x speedup over {m} samples"),
    ]);
    println!("{table}");
    println!(
        "parity: {} | streaming memory bound: {} samples | speedup: {speedup:.0}x (target >=10x)",
        if parity { "EXACT" } else { "BROKEN" },
        det.memory_bound_samples(),
    );

    if let Some(dir) = out {
        table.write_csv(&dir.join("e11_stream_parity.csv"))?;
    }
    if !parity {
        return Err(aging_timeseries::Error::Numerical(
            "streaming/batch alert parity broken".into(),
        ));
    }
    if speedup < 10.0 {
        return Err(aging_timeseries::Error::Numerical(format!(
            "streaming speedup {speedup:.1}x below the 10x floor"
        )));
    }
    Ok(())
}

/// E12 — the parallel analysis engine: bit-identical parity plus wall-clock
/// speedup of the pooled hot paths versus thread count.
pub fn e12(quick: bool, out: Option<&Path>) -> Result<()> {
    use aging_core::eval::compare_in;
    use aging_fractal::holder::holder_trace_in;
    use aging_par::Pool;

    banner(
        "E12",
        "deterministic parallel engine: holder_trace + fleet compare vs thread count",
        "parallel output is bit-identical to sequential at every thread count; on >=4 \
         hardware threads the 4-thread wall clock beats sequential by >=2.5x",
    );
    let hw_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("hardware threads: {hw_threads} (AGING_THREADS overrides pool sizing elsewhere)");

    // E3-scale trace: machine A with reboots.
    let horizon = if quick {
        48.0 * HOUR
    } else {
        10.0 * 24.0 * HOUR
    };
    let report = simulate_with_reboots(&scenarios::machine_a(777), horizon)?;
    let series = report.log.series(Counter::AvailableBytes)?;
    let values = series.values();
    println!(
        "machine A trace: {} samples ({} h), {} crashes",
        values.len(),
        hours(report.simulated_secs),
        report.log.crashes().len(),
    );

    // Fleet for the scoring path.
    let fleet_scenarios = scenarios::aging_fleet(if quick { 3 } else { 6 });
    let fleet = aging_memsim::simulate_fleet_in(
        &fleet_scenarios,
        if quick { 24.0 * HOUR } else { 72.0 * HOUR },
        &Pool::sequential(),
    )?;
    let spec = PredictorSpec::HolderDimension(DetectorConfig::default());

    let estimator = HolderEstimator::default();
    let thread_counts = [1usize, 2, 4];
    let mut table = Table::new(vec![
        "threads",
        "holder_ms",
        "holder_speedup",
        "compare_ms",
        "compare_speedup",
        "parity",
    ]);

    // Sequential references (timed as the 1-thread row).
    let mut holder_ref: Option<Vec<f64>> = None;
    let mut compare_ref = None;
    let mut holder_base_ms = 0.0;
    let mut compare_base_ms = 0.0;
    let mut holder_speedup_at = vec![0.0f64; thread_counts.len()];
    let mut compare_speedup_at = vec![0.0f64; thread_counts.len()];

    for (ti, &threads) in thread_counts.iter().enumerate() {
        let pool = Pool::new(threads);

        let t0 = std::time::Instant::now();
        let trace = holder_trace_in(values, &estimator, &pool)?;
        let holder_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = std::time::Instant::now();
        let row = compare_in(&spec, &fleet, Counter::AvailableBytes, &pool)?;
        let compare_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Hard bit-level parity against the 1-thread reference.
        let parity = match (&holder_ref, &compare_ref) {
            (None, None) => {
                holder_ref = Some(trace);
                compare_ref = Some(row);
                holder_base_ms = holder_ms;
                compare_base_ms = compare_ms;
                true
            }
            (Some(h), Some(r)) => {
                let holder_ok = h.len() == trace.len()
                    && h.iter()
                        .zip(&trace)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                holder_ok && *r == row
            }
            _ => unreachable!("references are set together"),
        };
        holder_speedup_at[ti] = holder_base_ms / holder_ms;
        compare_speedup_at[ti] = compare_base_ms / compare_ms;
        table.row(vec![
            format!("{threads}"),
            format!("{holder_ms:.1}"),
            format!("{:.2}x", holder_speedup_at[ti]),
            format!("{compare_ms:.1}"),
            format!("{:.2}x", compare_speedup_at[ti]),
            if parity {
                "exact".into()
            } else {
                "MISMATCH".to_string()
            },
        ]);
        if !parity {
            println!("{table}");
            return Err(aging_timeseries::Error::Numerical(format!(
                "parallel output diverged from sequential at {threads} threads"
            )));
        }
    }
    println!("{table}");

    if let Some(dir) = out {
        table.write_csv(&dir.join("e12_par_speedup.csv"))?;
    }

    // The speedup floor is a hardware claim: it only holds where 4 real
    // threads exist. Parity above is asserted unconditionally.
    let h4 = holder_speedup_at[thread_counts.len() - 1];
    let c4 = compare_speedup_at[thread_counts.len() - 1];
    if hw_threads >= 4 {
        println!("speedup gate (>=2.5x at 4 threads): holder {h4:.2}x, compare {c4:.2}x");
        if h4 < 2.5 || c4 < 2.5 {
            return Err(aging_timeseries::Error::Numerical(format!(
                "4-thread speedup below the 2.5x floor: holder {h4:.2}x, compare {c4:.2}x"
            )));
        }
    } else {
        println!(
            "speedup gate skipped: only {hw_threads} hardware thread(s) — measured holder \
             {h4:.2}x, compare {c4:.2}x at 4 pool threads (parity still asserted)"
        );
    }
    Ok(())
}

/// E13 — chaos differential robustness: the fleet supervisor under seeded
/// fault injection, clean vs. chaos-wrapped, with the robustness contract
/// (no panic, exact reconciliation, ordered watermarks, bounded lead
/// degradation) hard-checked by the harness.
pub fn e13(quick: bool, out: Option<&Path>) -> Result<()> {
    use aging_chaos::{run_differential, ChaosPlan, Tolerance};
    use aging_stream::detector::DetectorSpec;
    use aging_stream::{CounterDetector, FleetConfig};

    banner(
        "E13",
        "chaos differential: fleet supervisor under seeded fault injection",
        "under NaN bursts, replays, clock defects, spikes and stalls the supervisor \
         never panics, reconciles every sample exactly, keeps watermark order, and \
         loses at most a bounded amount of crash-warning lead time",
    );

    let (machines, horizon, seeds): (usize, f64, &[u64]) = if quick {
        (3, 8.0 * HOUR, &[0x00c0_ffee, 42])
    } else {
        (5, 12.0 * HOUR, &[42, 7, 1234, 2026])
    };
    // Aggressively-leaking tiny machines (5 s sampling) plus one healthy
    // control that must stay silent under injection.
    let mut fleet: Vec<aging_memsim::Scenario> = (0..machines)
        .map(|i| aging_memsim::Scenario::tiny_aging(500 + i as u64, 192.0 + 32.0 * i as f64))
        .collect();
    fleet.push(aging_memsim::Scenario::tiny_aging(900, 0.0));

    let mut cfg = FleetConfig::new(
        vec![CounterDetector {
            counter: Counter::AvailableBytes,
            spec: DetectorSpec::Trend(TrendPredictorConfig {
                window: 120,
                refit_every: 8,
                alarm_horizon_secs: 900.0,
                ..TrendPredictorConfig::depleting(5.0)
            }),
        }],
        horizon,
    );
    cfg.gate.nominal_period_secs = 5.0;
    cfg.gate.quarantine_after = 8;
    cfg.status_every_secs = 600.0;
    cfg.shards = 2;

    let tolerance = Tolerance::default();
    let mut table = Table::new(vec![
        "seed",
        "scenario",
        "crash[h]",
        "clean_lead[h]",
        "chaos_lead[h]",
        "note",
    ]);
    for &seed in seeds {
        let report = run_differential(&fleet, &cfg, &ChaosPlan::nasty(seed), &tolerance)?;
        println!(
            "seed {seed:#x}: injected {} faults, gate dropped {} samples",
            report.injected.injected(),
            report.chaos.status.ingestion.dropped(),
        );
        println!("{}", report.table());
        for row in &report.rows {
            let note = match (row.clean_lead_secs, row.chaos_lead_secs) {
                (Some(c), Some(x)) => format!("lead_loss {:.2} h", (c - x).max(0.0) / HOUR),
                (None, None) => "silent (healthy)".to_string(),
                (Some(_), None) => "MISSED under chaos".to_string(),
                (None, Some(_)) => "extra alarm under chaos".to_string(),
            };
            table.row(vec![
                format!("{seed:#x}"),
                row.scenario.clone(),
                opt_fmt(row.crash_time_secs, hours),
                opt_fmt(row.clean_lead_secs, hours),
                opt_fmt(row.chaos_lead_secs, hours),
                note,
            ]);
        }
    }
    println!("{table}");
    println!(
        "robustness contract held at all {} seed(s) (tolerance: {} missed, {:.1} h lead loss, \
         {} extra false alarms)",
        seeds.len(),
        tolerance.max_missed_detections,
        tolerance.max_lead_loss_secs / HOUR,
        tolerance.max_extra_false_alarms,
    );
    if let Some(dir) = out {
        table.write_csv(&dir.join("e13_chaos_differential.csv"))?;
    }
    Ok(())
}

/// E14 — networked ingestion parity and latency: the `aging-serve` TCP
/// server, fed by the load-generator client over loopback, must
/// reproduce the offline fleet supervisor's alarm history **byte for
/// byte** (a hard gate), while the run also reports sustained ingest
/// throughput, ack round-trip latency and alarm send-to-visibility
/// latency.
pub fn e14(quick: bool, out: Option<&Path>) -> Result<()> {
    use aging_serve::loadgen::{drive, BatchMode, LoadgenConfig};
    use aging_serve::protocol::{encode_events, ServeEvent};
    use aging_serve::{ServeConfig, Server};
    use aging_stream::detector::DetectorSpec;
    use aging_stream::{CounterDetector, FleetConfig, FleetSupervisor};

    banner(
        "E14",
        "networked ingestion: TCP server + loadgen vs. offline supervisor",
        "the alarm history ingested over loopback TCP is byte-identical to the \
         offline fleet supervisor's, with no panics, no quarantines and every \
         record acked; throughput and ingest-to-alarm latency are reported",
    );

    // The horizon must be long enough that the loadgen wall is dominated
    // by actual ingest rather than connection setup and the final poller
    // drain: at 8 h the whole columnar run fits inside a couple of poll
    // intervals and "throughput" mostly measures fixed overhead.
    let (leaky, horizon, seeds): (usize, f64, &[u64]) = if quick {
        (3, 24.0 * HOUR, &[0x00c0_ffee, 42])
    } else {
        (9, 24.0 * HOUR, &[42, 7, 1234])
    };

    let mut cfg = FleetConfig::new(
        vec![CounterDetector {
            counter: Counter::AvailableBytes,
            spec: DetectorSpec::Trend(TrendPredictorConfig {
                window: 120,
                refit_every: 8,
                alarm_horizon_secs: 900.0,
                ..TrendPredictorConfig::depleting(5.0)
            }),
        }],
        horizon,
    );
    cfg.gate.nominal_period_secs = 5.0;

    let loadgen_for = |mode: BatchMode| LoadgenConfig {
        connections: 4,
        batch_records: 64,
        rate_records_per_sec: 0.0,
        poll_alarms_ms: 20,
        counters: vec![Counter::AvailableBytes],
        mode,
    };

    // The shared telemetry histogram buckets are tuned for µs-scale
    // detector latencies; for ms-scale socket round-trips the exact mean
    // is the sharper statistic, with the bucketed p99 as an upper bound.
    let ms = |us: Option<u64>| opt_fmt(us.map(|v| v as f64 / 1000.0), |v| format!("{v:.2}"));
    let mean_ms =
        |h: &aging_stream::telemetry::LatencyHistogram| format!("{:.2}", h.mean_us() / 1000.0);
    let mut table = Table::new(vec![
        "seed",
        "mode",
        "machines",
        "records",
        "rec/s",
        "ack_mean[ms]",
        "ack_p99<=[ms]",
        "vis_mean[ms]",
        "vis_p99<=[ms]",
        "alarms",
        "parity",
    ]);
    let mut pooled_ack = aging_stream::telemetry::LatencyHistogram::default();
    let mut pooled_vis = aging_stream::telemetry::LatencyHistogram::default();
    // (records, wall seconds) per wire mode, Record then Columnar.
    let modes = [BatchMode::Record, BatchMode::Columnar];
    let mut totals = [(0u64, 0.0f64); 2];
    for &seed in seeds {
        // Leaky machines plus one healthy control, same recipe as E13.
        let mut fleet: Vec<aging_memsim::Scenario> = (0..leaky)
            .map(|i| aging_memsim::Scenario::tiny_aging(seed + i as u64, 192.0 + 32.0 * i as f64))
            .collect();
        fleet.push(aging_memsim::Scenario::tiny_aging(seed + leaky as u64, 0.0));

        let offline_report = FleetSupervisor::new(cfg.clone())?.run(&fleet)?;
        let offline: Vec<ServeEvent> = offline_report
            .events
            .iter()
            .map(|e| ServeEvent {
                machine_id: e.machine_index as u64,
                time_secs: e.time_secs,
                level: e.level,
                kind: e.kind,
            })
            .collect();

        for (mode_idx, &mode) in modes.iter().enumerate() {
            let mut serve_cfg = ServeConfig::from_fleet(&cfg);
            // Pin the release order: hold alarms until the whole fleet has
            // checked in, so concurrent feeders cannot permute the history.
            serve_cfg.expected_machines = Some(fleet.len() as u64);
            let server = Server::bind("127.0.0.1:0", serve_cfg)?;
            let report = drive(
                server.local_addr(),
                &fleet,
                cfg.horizon_secs,
                &loadgen_for(mode),
            )?;
            let outcome = server.shutdown();

            if outcome.wire.session_panics != 0 || outcome.wire.quarantined != 0 {
                return Err(aging_timeseries::Error::invalid(
                    "e14",
                    format!(
                        "seed {seed:#x} ({mode:?}): server misbehaved (panics {}, quarantined {})",
                        outcome.wire.session_panics, outcome.wire.quarantined
                    ),
                ));
            }
            if report.records_sent != report.records_accepted {
                return Err(aging_timeseries::Error::invalid(
                    "e14",
                    format!(
                        "seed {seed:#x} ({mode:?}): {} of {} records not acked as accepted",
                        report.records_sent - report.records_accepted,
                        report.records_sent
                    ),
                ));
            }
            if mode == BatchMode::Record {
                // Pool latency over record mode only, so the trajectory
                // metrics stay comparable commit-over-commit.
                pooled_ack.merge(&report.ack_rtt);
                pooled_vis.merge(&report.alarm_visibility);
            }
            totals[mode_idx].0 += report.records_sent;
            totals[mode_idx].1 += report.wall_secs;
            let parity = encode_events(&offline) == encode_events(&outcome.events)
                && encode_events(&report.alarms) == encode_events(&outcome.events);
            table.row(vec![
                format!("{seed:#x}"),
                format!("{mode:?}").to_lowercase(),
                format!("{}", fleet.len()),
                format!("{}", report.records_sent),
                format!("{:.0}", report.records_per_sec()),
                mean_ms(&report.ack_rtt),
                ms(report.ack_rtt.quantile_upper_bound_us(0.99)),
                mean_ms(&report.alarm_visibility),
                ms(report.alarm_visibility.quantile_upper_bound_us(0.99)),
                format!("{}", outcome.events.len()),
                if parity { "IDENTICAL" } else { "DIVERGED" }.to_string(),
            ]);
            if !parity {
                println!("{table}");
                return Err(aging_timeseries::Error::invalid(
                    "e14",
                    format!(
                        "seed {seed:#x} ({mode:?}): TCP-path alarm history diverged from the \
                         offline supervisor ({} offline vs {} online events)",
                        offline.len(),
                        outcome.events.len()
                    ),
                ));
            }
        }
    }
    println!("{table}");
    let record_rps = totals[0].0 as f64 / totals[0].1.max(1e-9);
    let columnar_rps = totals[1].0 as f64 / totals[1].1.max(1e-9);
    println!(
        "parity gate held at all {} seed(s) in both wire modes: the networked path is \
         alarm-for-alarm identical to the offline supervisor",
        seeds.len()
    );
    println!(
        "columnar ingest: {columnar_rps:.0} rec/s vs {record_rps:.0} rec/s record-at-a-time \
         ({:.1}x)",
        columnar_rps / record_rps.max(1e-9)
    );
    trajectory::record("records_per_sec", record_rps);
    trajectory::record("columnar_records_per_sec", columnar_rps);
    trajectory::record("columnar_speedup", columnar_rps / record_rps.max(1e-9));
    trajectory::record("ack_mean_ms", pooled_ack.mean_us() / 1000.0);
    trajectory::record("vis_mean_ms", pooled_vis.mean_us() / 1000.0);
    if let Some(us) = pooled_ack.quantile_upper_bound_us(0.99) {
        trajectory::record("ack_p99_ms", us as f64 / 1000.0);
    }
    if let Some(dir) = out {
        table.write_csv(&dir.join("e14_serve_parity.csv"))?;
    }
    Ok(())
}

/// E15 — crash-safe persistence: the store-backed server journals every
/// accepted batch before acking (acked ⇒ durable), so the run measures
/// what that costs and what it buys: ingest throughput with the journal
/// on vs. off (**hard gate: < 20 % overhead**), journal volume and
/// snapshot cadence, and the wall-clock time to recover a server from
/// its snapshot + journal — with the recovered alarm history held
/// byte-identical to both the in-memory run and the persisted one.
pub fn e15(quick: bool, out: Option<&Path>) -> Result<()> {
    use aging_serve::loadgen::{drive, BatchMode, LoadgenConfig};
    use aging_serve::protocol::encode_events;
    use aging_serve::{ServeConfig, Server};
    use aging_store::StoreConfig;
    use aging_stream::detector::DetectorSpec;
    use aging_stream::{CounterDetector, FleetConfig};
    use std::time::Instant;

    banner(
        "E15",
        "crash-safe persistence: journal overhead and recovery time",
        "journaling every batch before the ack costs < 20% of loopback ingest \
         throughput (fsync off), and a server recovered from the snapshot + \
         journal reproduces the persisted alarm history byte for byte",
    );

    let (leaky, horizon, seeds): (usize, f64, &[u64]) = if quick {
        (3, 8.0 * HOUR, &[0x00c0_ffee, 42])
    } else {
        (9, 12.0 * HOUR, &[42, 7, 1234])
    };

    let mut cfg = FleetConfig::new(
        vec![CounterDetector {
            counter: Counter::AvailableBytes,
            spec: DetectorSpec::Trend(TrendPredictorConfig {
                window: 120,
                refit_every: 8,
                alarm_horizon_secs: 900.0,
                ..TrendPredictorConfig::depleting(5.0)
            }),
        }],
        horizon,
    );
    cfg.gate.nominal_period_secs = 5.0;

    let loadgen = LoadgenConfig {
        connections: 4,
        batch_records: 64,
        rate_records_per_sec: 0.0,
        poll_alarms_ms: 20,
        counters: vec![Counter::AvailableBytes],
        mode: BatchMode::Record,
    };

    let store_dir = std::env::temp_dir().join(format!("aging-e15-{}", std::process::id()));
    let store_config = || StoreConfig {
        // Several snapshots per run, so recovery exercises the
        // snapshot-restore + journal-suffix path, not a cold replay.
        snapshot_every_entries: 16,
        ..StoreConfig::new(&store_dir)
    };

    let mut table = Table::new(vec![
        "seed",
        "machines",
        "records",
        "base[rec/s]",
        "store[rec/s]",
        "overhead[%]",
        "journal[KiB]",
        "entries",
        "snaps",
        "recover[ms]",
        "parity",
    ]);
    let (mut base_total, mut base_secs) = (0u64, 0.0f64);
    let (mut store_total, mut store_secs) = (0u64, 0.0f64);
    let mut recover_ms_sum = 0.0f64;
    for &seed in seeds {
        let mut fleet: Vec<aging_memsim::Scenario> = (0..leaky)
            .map(|i| aging_memsim::Scenario::tiny_aging(seed + i as u64, 192.0 + 32.0 * i as f64))
            .collect();
        fleet.push(aging_memsim::Scenario::tiny_aging(seed + leaky as u64, 0.0));

        // Baseline: the E14 loopback workload with persistence off.
        let mut serve_cfg = ServeConfig::from_fleet(&cfg);
        serve_cfg.expected_machines = Some(fleet.len() as u64);
        let server = Server::bind("127.0.0.1:0", serve_cfg.clone())?;
        let base_report = drive(server.local_addr(), &fleet, cfg.horizon_secs, &loadgen)?;
        let base_outcome = server.shutdown();
        base_total += base_report.records_sent;
        base_secs += base_report.records_sent as f64 / base_report.records_per_sec().max(1e-9);

        // Same workload, journaled: every ack now implies durability.
        let _ = std::fs::remove_dir_all(&store_dir);
        serve_cfg.store = Some(store_config());
        let server = Server::bind("127.0.0.1:0", serve_cfg)?;
        let store_report = drive(server.local_addr(), &fleet, cfg.horizon_secs, &loadgen)?;
        let store_outcome = server.shutdown();
        store_total += store_report.records_sent;
        store_secs += store_report.records_sent as f64 / store_report.records_per_sec().max(1e-9);
        let persist = store_outcome.persist.ok_or_else(|| {
            aging_timeseries::Error::invalid("e15", "store-backed report lacks persist stats")
        })?;

        // Recovery: re-open the same directory and time the rebuild
        // (snapshot restore + journal-suffix replay inside `bind`).
        let mut recover_cfg = ServeConfig::from_fleet(&cfg);
        recover_cfg.expected_machines = Some(fleet.len() as u64);
        recover_cfg.store = Some(store_config());
        let t0 = Instant::now();
        let recovered = Server::bind("127.0.0.1:0", recover_cfg)?;
        let recover_ms = t0.elapsed().as_secs_f64() * 1000.0;
        recover_ms_sum += recover_ms;
        let recovered_outcome = recovered.shutdown();
        let _ = std::fs::remove_dir_all(&store_dir);

        let canonical = encode_events(&store_outcome.events);
        let parity = canonical == encode_events(&base_outcome.events)
            && canonical == encode_events(&recovered_outcome.events);
        table.row(vec![
            format!("{seed:#x}"),
            format!("{}", fleet.len()),
            format!("{}", store_report.records_sent),
            format!("{:.0}", base_report.records_per_sec()),
            format!("{:.0}", store_report.records_per_sec()),
            format!(
                "{:.1}",
                100.0 * (1.0 - store_report.records_per_sec() / base_report.records_per_sec())
            ),
            format!("{:.1}", persist.journal_appended_bytes as f64 / 1024.0),
            format!("{}", persist.entries_journaled),
            format!("{}", persist.snapshots_committed),
            format!("{recover_ms:.2}"),
            if parity { "IDENTICAL" } else { "DIVERGED" }.to_string(),
        ]);
        if !parity {
            println!("{table}");
            return Err(aging_timeseries::Error::invalid(
                "e15",
                format!(
                    "seed {seed:#x}: alarm history diverged across memory-only ({}), \
                     store-backed ({}) and recovered ({}) runs",
                    base_outcome.events.len(),
                    store_outcome.events.len(),
                    recovered_outcome.events.len()
                ),
            ));
        }
        if persist.entries_journaled == 0 || persist.snapshots_committed == 0 {
            return Err(aging_timeseries::Error::invalid(
                "e15",
                format!(
                    "seed {seed:#x}: store-backed run journaled {} entries and committed {} \
                     snapshots; the persistence path was not exercised",
                    persist.entries_journaled, persist.snapshots_committed
                ),
            ));
        }
    }
    println!("{table}");
    // Gate on the aggregate across seeds: per-seed loopback throughput is
    // noisy, the pooled ratio is what the < 20% contract is about.
    let base_rps = base_total as f64 / base_secs.max(1e-9);
    let store_rps = store_total as f64 / store_secs.max(1e-9);
    let overhead = 1.0 - store_rps / base_rps;
    println!(
        "aggregate ingest: {base_rps:.0} rec/s without the journal, {store_rps:.0} rec/s \
         with it ({:.1}% overhead; gate < 20%)",
        100.0 * overhead
    );
    if overhead >= 0.20 {
        return Err(aging_timeseries::Error::invalid(
            "e15",
            format!(
                "journal overhead {:.1}% exceeds the 20% budget \
                 ({base_rps:.0} rec/s baseline vs {store_rps:.0} rec/s store-backed)",
                100.0 * overhead
            ),
        ));
    }
    trajectory::record("base_records_per_sec", base_rps);
    trajectory::record("store_records_per_sec", store_rps);
    trajectory::record("overhead_pct", 100.0 * overhead);
    trajectory::record("recover_ms_mean", recover_ms_sum / seeds.len() as f64);
    if let Some(dir) = out {
        table.write_csv(&dir.join("e15_store_overhead.csv"))?;
    }
    Ok(())
}

/// E16 — the sharded cluster tier: machine ids partitioned across N
/// `aging-serve` shards by the consistent-hash ring, each shard's
/// watermark-ordered alarm stream pulled and k-way merged by the
/// aggregator node. **Hard gate:** the merged global history is
/// byte-identical to the offline whole-fleet supervisor at 1, 2 and 4
/// shards, *including* a run where one store-backed shard is killed and
/// recovered mid-stream; on ≥ 4 hardware threads, 4-shard aggregate
/// ingest must additionally beat the single-shard rate (on fewer
/// threads the scale-out comparison is reported but not gated — shards
/// would just time-slice one core).
pub fn e16(quick: bool, out: Option<&Path>) -> Result<()> {
    use aging_cluster::{drive_fleet, Aggregator, AggregatorConfig, HashRing, LocalCluster};
    use aging_serve::loadgen::{BatchMode, LoadgenConfig};
    use aging_serve::protocol::{counter_code, encode_events, Record, ServeEvent};
    use aging_serve::{ServeClient, ServeConfig};
    use aging_stream::detector::DetectorSpec;
    use aging_stream::source::{MachineSource, SampleSource};
    use aging_stream::{CounterDetector, FleetConfig, FleetSupervisor};
    use std::collections::HashMap;

    const RING_VNODES: u32 = 64;
    const RING_SEED: u64 = 0x00e1_6000;

    banner(
        "E16",
        "sharded cluster: hash-ring shards + watermark-merging aggregator",
        "the aggregator's merged alarm history is byte-identical to the offline \
         supervisor at 1/2/4 shards — also when one store-backed shard is killed \
         and recovered mid-stream — and on >=4 hardware threads the 4-shard \
         aggregate ingest rate beats the single-shard rate",
    );

    let (leaky, horizon, seeds): (usize, f64, &[u64]) = if quick {
        (3, 8.0 * HOUR, &[0x00c0_ffee])
    } else {
        (9, 12.0 * HOUR, &[42, 7])
    };
    let hw_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("hardware threads: {hw_threads}");

    let mut cfg = FleetConfig::new(
        vec![CounterDetector {
            counter: Counter::AvailableBytes,
            spec: DetectorSpec::Trend(TrendPredictorConfig {
                window: 120,
                refit_every: 8,
                alarm_horizon_secs: 900.0,
                ..TrendPredictorConfig::depleting(5.0)
            }),
        }],
        horizon,
    );
    cfg.gate.nominal_period_secs = 5.0;
    let loadgen = LoadgenConfig {
        connections: 2,
        batch_records: 64,
        rate_records_per_sec: 0.0,
        poll_alarms_ms: 0,
        counters: vec![Counter::AvailableBytes],
        mode: BatchMode::Record,
    };

    let shard_counts = [1u64, 2, 4];
    let mut table = Table::new(vec![
        "seed",
        "shards",
        "machines",
        "records",
        "rec/s",
        "alarms",
        "reconnects",
        "parity",
        "note",
    ]);
    // Pooled per shard count across seeds, for the scale-out comparison.
    let mut pooled: HashMap<u64, (u64, f64)> = HashMap::new();

    let fail = |seed: u64, what: &str, offline: usize, merged: usize| {
        aging_timeseries::Error::invalid(
            "e16",
            format!(
                "seed {seed:#x}: {what} merged history diverged from the offline \
                 supervisor ({offline} offline vs {merged} merged events)"
            ),
        )
    };

    for &seed in seeds {
        let mut fleet: Vec<aging_memsim::Scenario> = (0..leaky)
            .map(|i| aging_memsim::Scenario::tiny_aging(seed + i as u64, 192.0 + 32.0 * i as f64))
            .collect();
        fleet.push(aging_memsim::Scenario::tiny_aging(seed + leaky as u64, 0.0));
        let ids: Vec<u64> = (0..fleet.len() as u64).collect();

        let offline_report = FleetSupervisor::new(cfg.clone())?.run(&fleet)?;
        let offline: Vec<ServeEvent> = offline_report
            .events
            .iter()
            .map(|e| ServeEvent {
                machine_id: e.machine_index as u64,
                time_secs: e.time_secs,
                level: e.level,
                kind: e.kind,
            })
            .collect();
        let offline_bytes = encode_events(&offline);

        // Shard sweep: the same fleet through 1-, 2- and 4-shard clusters.
        for &shards in &shard_counts {
            let ring = HashRing::new(shards, RING_VNODES, RING_SEED)?;
            let template = ServeConfig::from_fleet(&cfg);
            let cluster = LocalCluster::launch(&ring, &template, &ids, None)?;
            let aggregator = Aggregator::new(AggregatorConfig::default())?;
            let (drive_result, agg_result) = std::thread::scope(|scope| {
                let agg = scope.spawn(|| aggregator.run(cluster.directory()));
                let drive = drive_fleet(
                    &ring,
                    cluster.directory(),
                    &fleet,
                    &ids,
                    cfg.horizon_secs,
                    &loadgen,
                );
                (drive, agg.join().expect("aggregator thread"))
            });
            let drive = drive_result?;
            let merged = agg_result?;
            for outcome in cluster.shutdown().into_iter().flatten() {
                if outcome.wire.session_panics != 0 || outcome.wire.quarantined != 0 {
                    return Err(aging_timeseries::Error::invalid(
                        "e16",
                        format!(
                            "seed {seed:#x}, {shards} shard(s): shard misbehaved (panics {}, \
                             quarantined {})",
                            outcome.wire.session_panics, outcome.wire.quarantined
                        ),
                    ));
                }
            }
            let parity = offline_bytes == encode_events(&merged.events);
            let entry = pooled.entry(shards).or_insert((0, 0.0));
            entry.0 += drive.records_sent();
            entry.1 += drive.wall_secs;
            table.row(vec![
                format!("{seed:#x}"),
                format!("{shards}"),
                format!("{}", fleet.len()),
                format!("{}", drive.records_sent()),
                format!("{:.0}", drive.records_per_sec()),
                format!("{}", merged.events.len()),
                format!("{}", merged.reconnects),
                if parity { "IDENTICAL" } else { "DIVERGED" }.to_string(),
                String::new(),
            ]);
            if !parity {
                println!("{table}");
                return Err(fail(
                    seed,
                    &format!("{shards}-shard"),
                    offline.len(),
                    merged.events.len(),
                ));
            }
        }

        // Kill-and-recover: a 2-shard store-backed cluster; the shard
        // owning the most machines is killed mid-stream and re-bound
        // from its WAL + snapshot, while the aggregator reconnects
        // through the directory. Parity must still hold.
        let shards = 2u64;
        let ring = HashRing::new(shards, RING_VNODES, RING_SEED)?;
        let parts = ring.partition_indices(&ids);
        let victim = (0..parts.len())
            .max_by_key(|&s| parts[s].len())
            .expect("two shards");
        let store_root = std::env::temp_dir().join(format!("aging-e16-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store_root);
        let template = ServeConfig::from_fleet(&cfg);
        let cluster = LocalCluster::launch(&ring, &template, &ids, Some(&store_root))?;
        let aggregator = Aggregator::new(AggregatorConfig::default())?;

        // The victim's records, round-robin across its machines by
        // sample index (preserving per-machine time order), in batches
        // small enough that the kill lands mid-stream.
        let code = counter_code(Counter::AvailableBytes);
        let traces: Vec<Vec<Record>> = parts[victim]
            .iter()
            .map(|&pos| -> Result<Vec<Record>> {
                let mut source =
                    MachineSource::new(&fleet[pos], Counter::AvailableBytes, cfg.horizon_secs)?;
                let mut out = Vec::new();
                while let Some(s) = source.next_sample()? {
                    out.push(Record {
                        machine_id: ids[pos],
                        counter: code,
                        time_secs: s.time_secs,
                        value: s.value,
                    });
                }
                Ok(out)
            })
            .collect::<Result<_>>()?;
        let longest = traces.iter().map(Vec::len).max().unwrap_or(0);
        let mut records = Vec::new();
        for i in 0..longest {
            for trace in &traces {
                if let Some(rec) = trace.get(i) {
                    records.push(*rec);
                }
            }
        }
        let batches: Vec<Vec<Record>> = records.chunks(16).map(<[Record]>::to_vec).collect();
        let kill_at = batches.len() / 2;

        let agg_result = std::thread::scope(|scope| -> Result<_> {
            let agg = scope.spawn(|| aggregator.run(cluster.directory()));
            let mut healthy = Vec::new();
            for (shard, positions) in parts.iter().enumerate() {
                if shard == victim || positions.is_empty() {
                    continue;
                }
                let shard_fleet: Vec<aging_memsim::Scenario> =
                    positions.iter().map(|&p| fleet[p].clone()).collect();
                let shard_ids: Vec<u64> = positions.iter().map(|&p| ids[p]).collect();
                let addr = cluster.directory().addr(shard);
                let horizon_secs = cfg.horizon_secs;
                let loadgen = &loadgen;
                healthy.push(scope.spawn(move || {
                    aging_serve::loadgen::drive_with_ids(
                        addr,
                        &shard_fleet,
                        &shard_ids,
                        horizon_secs,
                        loadgen,
                    )
                }));
            }
            // At-least-once feeder for the victim, killed once mid-feed.
            let mut cursor = 0usize;
            let mut carry: Vec<Vec<Record>> = Vec::new();
            let mut killed = false;
            loop {
                let mut client = ServeClient::connect(cluster.directory().addr(victim), "e16")?;
                let mut sent: HashMap<u64, Vec<Record>> = HashMap::new();
                for batch in carry.drain(..) {
                    let seq = client.send_batch(&batch)?;
                    sent.insert(seq, batch);
                }
                while cursor < batches.len() {
                    if !killed && cursor == kill_at {
                        break;
                    }
                    let batch = batches[cursor].clone();
                    let seq = client.send_batch(&batch)?;
                    sent.insert(seq, batch);
                    cursor += 1;
                }
                if !killed && cursor == kill_at {
                    cluster.abort_shard(victim)?;
                    killed = true;
                    carry = client
                        .unacked_seqs()
                        .into_iter()
                        .filter_map(|seq| sent.remove(&seq))
                        .collect();
                    cluster.rebind_shard(victim)?;
                    continue;
                }
                for &pos in &parts[victim] {
                    client.machine_done(ids[pos])?;
                }
                let _ = client.bye()?;
                break;
            }
            for handle in healthy {
                handle.join().expect("healthy driver thread")?;
            }
            agg.join().expect("aggregator thread")
        });
        let merged = agg_result?;
        let _ = std::fs::remove_dir_all(&store_root);
        for outcome in cluster.shutdown().into_iter().flatten() {
            if outcome.wire.session_panics != 0 {
                return Err(aging_timeseries::Error::invalid(
                    "e16",
                    format!("seed {seed:#x}: kill-and-recover run saw a shard panic"),
                ));
            }
        }
        let parity = offline_bytes == encode_events(&merged.events);
        table.row(vec![
            format!("{seed:#x}"),
            format!("{shards}"),
            format!("{}", fleet.len()),
            "-".to_string(),
            "-".to_string(),
            format!("{}", merged.events.len()),
            format!("{}", merged.reconnects),
            if parity { "IDENTICAL" } else { "DIVERGED" }.to_string(),
            format!("shard {victim} killed+recovered"),
        ]);
        if !parity {
            println!("{table}");
            return Err(fail(
                seed,
                "kill-and-recover",
                offline.len(),
                merged.events.len(),
            ));
        }
        if merged.reconnects == 0 {
            return Err(aging_timeseries::Error::invalid(
                "e16",
                format!(
                    "seed {seed:#x}: the aggregator never reconnected — the kill did not \
                     exercise the recovery path"
                ),
            ));
        }
    }
    println!("{table}");

    let rate = |shards: u64| {
        let (records, secs) = pooled[&shards];
        records as f64 / secs.max(1e-9)
    };
    let (r1, r4) = (rate(1), rate(4));
    println!(
        "parity gate held at all {} seed(s) and shard counts {{1, 2, 4}}, including one \
         kill-and-recover run per seed",
        seeds.len()
    );
    println!(
        "aggregate ingest: {r1:.0} rec/s at 1 shard, {:.0} rec/s at 2, {r4:.0} rec/s at 4 \
         ({:.2}x scale-out at 4 shards)",
        rate(2),
        r4 / r1.max(1e-9),
    );
    if hw_threads >= 4 {
        if r4 <= r1 {
            return Err(aging_timeseries::Error::invalid(
                "e16",
                format!(
                    "4-shard aggregate ingest ({r4:.0} rec/s) did not beat the single-shard \
                     rate ({r1:.0} rec/s) on {hw_threads} hardware threads"
                ),
            ));
        }
        println!("scale-out gate held: 4-shard ingest beats single-shard on {hw_threads} threads");
    } else {
        println!(
            "scale-out gate SKIPPED: only {hw_threads} hardware thread(s); shards would \
             time-slice one core, so the comparison is reported but not enforced"
        );
    }

    for &shards in &shard_counts {
        trajectory::record(&format!("shard{shards}_records_per_sec"), rate(shards));
    }
    trajectory::record("scaleout_4shard", r4 / r1.max(1e-9));
    if let Some(dir) = out {
        table.write_csv(&dir.join("e16_cluster_parity.csv"))?;
    }
    Ok(())
}

/// E17 — the streaming multifractal spectrum: Δα(t) (the f(α) width of
/// the trailing window) as a first-class aging signal. **Hard gates:**
/// on aging machines Δα(t) drifts upward (positive OLS slope and a
/// last-quarter mean clearly above the first-quarter mean) while
/// healthy controls stay flat, at every seed; and the bounded-memory
/// [`StreamingSpectrum`] is bit-identical to the offline
/// [`spectrum_trace`] reference on every window, at 1 and 4 pool
/// threads.
pub fn e17(quick: bool, out: Option<&Path>) -> Result<()> {
    use aging_fractal::spectrum::{spectrum_trace_in, SpectrumConfig, StreamingSpectrum};
    use aging_par::Pool;
    use aging_timeseries::regression::ols;

    banner(
        "E17",
        "streaming multifractal spectrum: Δα(t) drift as an aging signal",
        "the rolling f(α) width widens as aging machines approach the crash (positive \
         Δα(t) slope, last-quarter mean above first-quarter mean) and stays flat on \
         healthy controls; the bounded-memory streaming estimator is bit-identical to \
         the offline per-window reference at every window and pool size",
    );

    let horizon = if quick { 20.0 * HOUR } else { 30.0 * HOUR };
    let seeds: &[u64] = &[777, 1234];
    let config = SpectrumConfig::default();
    println!(
        "spectrum: window {} stride {} over q {:?}, counter {}",
        config.window,
        config.stride,
        config.qs,
        Counter::CommittedBytes
    );

    // Gate margins (empirical, see EXPERIMENTS.md E17): aging runs rise
    // by > `rise_margin` between first- and last-quarter means; healthy
    // controls stay within `flat_margin`. Measured at seeds {777, 1234,
    // 42}: aging rise >= +0.059, healthy |drift| <= 0.010.
    let rise_margin = 0.04;
    let flat_margin = 0.05;

    let mut table = Table::new(vec![
        "scenario",
        "windows",
        "Δα q1 mean",
        "Δα q4 mean",
        "slope[/win]",
        "parity",
    ]);
    let mut aging_rise_min = f64::INFINITY;
    let mut aging_slope_min = f64::INFINITY;
    let mut healthy_drift_max = 0.0f64;
    for &seed in seeds {
        let aging = scenarios::spectrum_aging(seed);
        let healthy = scenarios::spectrum_healthy(seed);
        for (is_aging, scenario) in [(true, aging), (false, healthy)] {
            let report = aging_memsim::simulate(&scenario, horizon)?;
            let series = report.log.series(Counter::CommittedBytes)?;
            let values = series.values();

            // Offline reference at 1 and 4 pool threads, plus the
            // streaming estimator at both pool sizes: four runs, one
            // answer, compared bit-for-bit window-for-window.
            let reference = spectrum_trace_in(values, &config, &Pool::new(1))?;
            let mut parity = true;
            let mut variants = vec![spectrum_trace_in(values, &config, &Pool::new(4))?];
            for threads in [1usize, 4] {
                let pool = Pool::new(threads);
                let mut streaming = StreamingSpectrum::new(&config)?;
                let mut windows = Vec::with_capacity(reference.len());
                for &v in values {
                    if let Some(w) = streaming.push_in(v, &pool)? {
                        windows.push(w);
                    }
                }
                variants.push(windows);
            }
            for variant in &variants {
                parity &= variant.len() == reference.len()
                    && variant.iter().zip(&reference).all(|(a, b)| {
                        a.input_index == b.input_index
                            && a.alpha_min.to_bits() == b.alpha_min.to_bits()
                            && a.alpha_max.to_bits() == b.alpha_max.to_bits()
                            && a.delta_alpha.to_bits() == b.delta_alpha.to_bits()
                    });
            }

            let widths: Vec<f64> = reference.iter().map(|w| w.delta_alpha).collect();
            let q = widths.len() / 4;
            if q == 0 {
                return Err(aging_timeseries::Error::invalid(
                    "e17",
                    format!(
                        "{}: only {} spectrum windows — trace too short to quarter",
                        scenario.name,
                        widths.len()
                    ),
                ));
            }
            let first_mean = stats::mean(&widths[..q])?;
            let last_mean = stats::mean(&widths[widths.len() - q..])?;
            let idx: Vec<f64> = (0..widths.len()).map(|i| i as f64).collect();
            let slope = ols(&idx, &widths)?.slope;
            table.row(vec![
                scenario.name.clone(),
                format!("{}", widths.len()),
                format!("{first_mean:.3}"),
                format!("{last_mean:.3}"),
                format!("{slope:+.5}"),
                if parity { "exact" } else { "MISMATCH" }.to_string(),
            ]);
            if !parity {
                println!("{table}");
                return Err(aging_timeseries::Error::invalid(
                    "e17",
                    format!(
                        "{}: streaming spectrum diverged from the offline reference",
                        scenario.name
                    ),
                ));
            }
            if let Some(dir) = out {
                let t: Vec<f64> = reference
                    .iter()
                    .map(|w| w.input_index as f64 * series.dt())
                    .collect();
                write_series_csv(
                    &dir.join(format!("e17_{}.csv", scenario.name)),
                    &["t_secs", "delta_alpha"],
                    &[&t, &widths],
                )?;
            }

            // Drift gates.
            let rise = last_mean - first_mean;
            if is_aging {
                aging_rise_min = aging_rise_min.min(rise);
                aging_slope_min = aging_slope_min.min(slope);
                if slope <= 0.0 || rise <= rise_margin {
                    println!("{table}");
                    return Err(aging_timeseries::Error::invalid(
                        "e17",
                        format!(
                            "{}: Δα(t) did not drift upward (slope {slope:+.5}/window, \
                             quarter-mean rise {rise:+.3}; gate: slope > 0, rise > {rise_margin})",
                            scenario.name
                        ),
                    ));
                }
            } else {
                healthy_drift_max = healthy_drift_max.max(rise.abs());
                if rise.abs() >= flat_margin {
                    println!("{table}");
                    return Err(aging_timeseries::Error::invalid(
                        "e17",
                        format!(
                            "{}: healthy control drifted (quarter-mean drift {rise:+.3}; \
                             gate: |drift| < {flat_margin})",
                            scenario.name
                        ),
                    ));
                }
            }
        }
    }
    println!("{table}");
    println!(
        "drift gate held at all {} seed(s): aging Δα rises >= {aging_rise_min:+.3} \
         (slope >= {aging_slope_min:+.5}/window), healthy drift <= {healthy_drift_max:.3} \
         (margins: rise > {rise_margin}, |healthy drift| < {flat_margin})",
        seeds.len()
    );
    println!("parity gate held: streaming == offline bit-for-bit at 1 and 4 pool threads");
    trajectory::record("aging_rise_min", aging_rise_min);
    trajectory::record("aging_slope_min", aging_slope_min);
    trajectory::record("healthy_drift_max", healthy_drift_max);
    if let Some(dir) = out {
        table.write_csv(&dir.join("e17_spectrum_drift.csv"))?;
    }
    Ok(())
}

/// E18 — closed-loop software rejuvenation: the alarm-driven controller
/// acting online on the fused detector stream must buy availability over
/// both the cron-style periodic baseline and the no-op
/// (crash-repair-only) baseline, on two scenario families — GPU
/// inference serving and mobile app churn — at every seed. **Hard
/// gates:** alarm-driven mean availability strictly exceeds periodic and
/// no-op per (family, seed); healthy controls stay within the
/// false-alarm budget (at most one spurious restart per machine-day, no
/// crashes, three-nines availability); under the no-op policy at least
/// 3 in 4 crashing machines alarmed before their first crash with
/// positive lead time; and a store-backed closed-loop run
/// recovers a byte-identical event history — restart events included —
/// while matching the unjournaled run decision for decision
/// (acked ⇒ durable holds for actions, and the journal replays them).
pub fn e18(quick: bool, out: Option<&Path>) -> Result<()> {
    use aging_memsim::Scenario;
    use aging_rejuv::{RejuvConfig, RejuvPolicy};
    use aging_store::StoreConfig;
    use aging_stream::detector::DetectorSpec;
    use aging_stream::supervisor::{CounterDetector, FleetConfig, FleetSupervisor};

    banner(
        "E18",
        "closed-loop rejuvenation: availability under three restart policies",
        "restarting on the fused alarm (before the crash) strictly beats both \
         cron-style periodic restarts and crash-repair-only operation on mean \
         availability, for the GPU-serving and mobile-churn families at every seed; \
         healthy controls stay inside the false-alarm budget; the journaled closed \
         loop recovers its restart decisions byte for byte",
    );

    let machines = if quick { 2usize } else { 4 };
    let seeds: &[u64] = &[777, 1234];
    type Build = fn(u64) -> Scenario;
    // Per-family detector tuning (window samples, alarm horizon secs) at
    // the 5 s sample period. The window must sit well inside a machine's
    // time-to-crash (a fit spanning a restart discontinuity is blind),
    // yet long enough to average out the workload's own cycle: the GPU
    // machines die every ~45 min, so they get a 30-minute window; the
    // mobile sawtooth reclaims every 30 min and dies in ~2.3 h, so its
    // window spans two reclaim cycles.
    let families: [(&str, f64, usize, f64, Build, Build); 2] = [
        (
            "gpu-serving",
            8.0 * HOUR,
            240,
            600.0,
            |seed| Scenario::gpu_serving(seed, 192.0),
            Scenario::gpu_serving_healthy,
        ),
        (
            "mobile-churn",
            12.0 * HOUR,
            900,
            900.0,
            |seed| Scenario::mobile_churn(seed, 72.0),
            Scenario::mobile_churn_healthy,
        ),
    ];

    let base = RejuvConfig {
        policy: RejuvPolicy::AlarmTriggered,
        // Boot counts as a restart epoch, so the cooldown must clear
        // before the first pre-crash alarm: 15 min (vs the one-hour
        // default) keeps the controller armed on the fast-aging tiny
        // machines while still riding out the post-restart refill.
        cooldown_secs: 900.0,
        restart_downtime_secs: 30.0,
        crash_repair_secs: 900.0,
        max_concurrent_restarts: 2,
    };
    let policies: [(&str, RejuvConfig); 3] = [
        (
            "no-op",
            RejuvConfig {
                policy: RejuvPolicy::None,
                ..base
            },
        ),
        (
            "periodic-1h",
            RejuvConfig {
                policy: RejuvPolicy::Periodic {
                    period_secs: 3600.0,
                },
                ..base
            },
        ),
        ("alarm-driven", base),
    ];
    let fleet_config = |horizon: f64, window: usize, alarm_horizon_secs: f64| {
        let mut cfg = FleetConfig::new(
            vec![CounterDetector {
                counter: Counter::AvailableBytes,
                spec: DetectorSpec::Trend(TrendPredictorConfig {
                    window,
                    refit_every: 8,
                    alarm_horizon_secs,
                    ..TrendPredictorConfig::depleting(5.0)
                }),
            }],
            horizon,
        );
        cfg.gate.nominal_period_secs = 5.0;
        cfg
    };

    let mut table = Table::new(vec![
        "family",
        "seed",
        "policy",
        "restarts",
        "crashes",
        "alarms",
        "downtime[h]",
        "avail mean",
        "avail min",
    ]);
    let store_dir = std::env::temp_dir().join(format!("aging-e18-{}", std::process::id()));
    let mut alarm_vs_periodic_min = f64::INFINITY;
    let mut alarm_vs_noop_min = f64::INFINITY;
    let mut alarm_avail_min = f64::INFINITY;
    let mut lead_time_min = f64::INFINITY;
    let mut healthy_false_restarts = 0u64;

    for &(family, horizon, window, alarm_horizon, build_aging, build_healthy) in &families {
        for &seed in seeds {
            let fleet: Vec<Scenario> = (0..machines)
                .map(|i| build_aging(seed + i as u64))
                .collect();
            let mut mean_by_policy = Vec::with_capacity(policies.len());
            let mut alarm_report = None;
            for &(policy_name, rejuv) in &policies {
                let mut cfg = fleet_config(horizon, window, alarm_horizon);
                cfg.rejuv = Some(rejuv);
                let report = FleetSupervisor::new(cfg)?.run(&fleet)?;
                let avail = report.availability(horizon)?;
                table.row(vec![
                    family.to_string(),
                    format!("{seed}"),
                    policy_name.to_string(),
                    format!("{}", avail.restarts),
                    format!("{}", avail.crashes),
                    format!("{}", report.machine_alarms().count()),
                    format!("{:.2}", avail.downtime_secs / HOUR),
                    format!("{:.4}", avail.mean_availability),
                    format!("{:.4}", avail.min_availability),
                ]);

                if rejuv.policy == RejuvPolicy::None {
                    // Lead-time budget, measured where nothing intervenes:
                    // every aging machine must crash (else the separation
                    // premise is void), and at least 3 in 4 must have
                    // alarmed strictly before their first crash. Not all:
                    // a seed can draw a first life shorter than the trend
                    // window, and a detector that misses one fast death
                    // is a budgeted miss, not a broken experiment.
                    let mut crashed = 0usize;
                    let mut led = 0usize;
                    for outcome in &report.outcomes {
                        if outcome.crash_time_secs.is_none() {
                            return Err(aging_timeseries::Error::invalid(
                                "e18",
                                format!(
                                    "{family} seed {seed}: {} survived the no-op run — the \
                                     family is not aging hard enough to separate policies",
                                    outcome.machine
                                ),
                            ));
                        }
                        crashed += 1;
                        if let Some(lead) = report.lead_time_secs(outcome.machine_index) {
                            if lead > 0.0 {
                                led += 1;
                                lead_time_min = lead_time_min.min(lead);
                            }
                        }
                    }
                    if led * 4 < crashed * 3 {
                        return Err(aging_timeseries::Error::invalid(
                            "e18",
                            format!(
                                "{family} seed {seed}: only {led}/{crashed} machines alarmed \
                                 before their first crash (lead-time budget: >= 3/4)"
                            ),
                        ));
                    }
                }
                if rejuv.policy == RejuvPolicy::AlarmTriggered {
                    alarm_report = Some(report);
                }
                mean_by_policy.push((policy_name, avail.mean_availability));
            }

            // Availability separation: the whole point of closing the loop.
            let mean_of = |name: &str| {
                mean_by_policy
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map_or(f64::NAN, |(_, a)| *a)
            };
            let (noop, periodic, alarm) = (
                mean_of("no-op"),
                mean_of("periodic-1h"),
                mean_of("alarm-driven"),
            );
            alarm_vs_periodic_min = alarm_vs_periodic_min.min(alarm - periodic);
            alarm_vs_noop_min = alarm_vs_noop_min.min(alarm - noop);
            alarm_avail_min = alarm_avail_min.min(alarm);
            if !(alarm > periodic && alarm > noop) {
                println!("{table}");
                return Err(aging_timeseries::Error::invalid(
                    "e18",
                    format!(
                        "{family} seed {seed}: alarm-driven availability {alarm:.4} does not \
                         strictly beat periodic {periodic:.4} and no-op {noop:.4}"
                    ),
                ));
            }

            // False-alarm budget: the same policy on the healthy controls
            // must (nearly) leave them alone — at most one spurious
            // restart per healthy machine-day (the detector tuned sharp
            // enough to catch a ~35-minute GPU life occasionally reads a
            // workload burst as depletion), zero crashes, and three-nines
            // availability.
            let healthy: Vec<Scenario> = (0..machines)
                .map(|i| build_healthy(seed + i as u64))
                .collect();
            let mut cfg = fleet_config(horizon, window, alarm_horizon);
            cfg.rejuv = Some(base);
            let healthy_report = FleetSupervisor::new(cfg)?.run(&healthy)?;
            let healthy_avail = healthy_report.availability(horizon)?;
            table.row(vec![
                family.to_string(),
                format!("{seed}"),
                "alarm (healthy)".to_string(),
                format!("{}", healthy_avail.restarts),
                format!("{}", healthy_avail.crashes),
                format!("{}", healthy_report.machine_alarms().count()),
                format!("{:.2}", healthy_avail.downtime_secs / HOUR),
                format!("{:.4}", healthy_avail.mean_availability),
                format!("{:.4}", healthy_avail.min_availability),
            ]);
            healthy_false_restarts += healthy_avail.restarts;
            let false_alarm_budget = (machines as f64 * horizon / (24.0 * HOUR)).ceil() as u64;
            if healthy_avail.restarts > false_alarm_budget
                || healthy_avail.crashes != 0
                || healthy_avail.mean_availability < 0.999
            {
                println!("{table}");
                return Err(aging_timeseries::Error::invalid(
                    "e18",
                    format!(
                        "{family} seed {seed}: healthy controls drew {} restart(s) and {} \
                         crash(es) at availability {:.4} under the alarm policy (budget: \
                         <= {false_alarm_budget} restart(s), 0 crashes, >= 0.999)",
                        healthy_avail.restarts,
                        healthy_avail.crashes,
                        healthy_avail.mean_availability
                    ),
                ));
            }

            // Kill-and-recover: journal the closed loop, then replay. The
            // journaled run must decide exactly like the unjournaled one,
            // and recovery must reproduce the full event history — restart
            // events included — byte for byte.
            let _ = std::fs::remove_dir_all(&store_dir);
            let store_cfg = StoreConfig::new(&store_dir);
            let mut cfg = fleet_config(horizon, window, alarm_horizon);
            cfg.rejuv = Some(base);
            cfg.store = Some(store_cfg.clone());
            let journaled = FleetSupervisor::new(cfg)?.run(&fleet)?;
            let recovered = FleetSupervisor::recover_events(&store_cfg)?;
            let _ = std::fs::remove_dir_all(&store_dir);
            let alarm_report = alarm_report.ok_or_else(|| {
                aging_timeseries::Error::invalid("e18", "alarm-driven run missing from the matrix")
            })?;
            if journaled.decisions != alarm_report.decisions {
                return Err(aging_timeseries::Error::invalid(
                    "e18",
                    format!(
                        "{family} seed {seed}: journaling changed the restart decisions \
                         ({} vs {})",
                        journaled.decisions.len(),
                        alarm_report.decisions.len()
                    ),
                ));
            }
            if recovered != journaled.events {
                return Err(aging_timeseries::Error::invalid(
                    "e18",
                    format!(
                        "{family} seed {seed}: recovery replayed {} event(s), run produced {} \
                         — the histories must be byte-identical",
                        recovered.len(),
                        journaled.events.len()
                    ),
                ));
            }
        }
    }
    println!("{table}");
    println!(
        "availability gate held on {} (family, seed) cells: alarm-driven beats periodic by \
         >= {alarm_vs_periodic_min:+.4} and no-op by >= {alarm_vs_noop_min:+.4} \
         (alarm-driven mean availability >= {alarm_avail_min:.4})",
        2 * seeds.len()
    );
    println!(
        "budgets held: {healthy_false_restarts} false restart(s) on healthy controls \
         (budget: one per machine-day); no-op alarm lead >= {lead_time_min:.0} s on >= 3/4 \
         of first crashes; journaled decisions and recovered histories byte-identical"
    );
    trajectory::record("alarm_vs_periodic_min", alarm_vs_periodic_min);
    trajectory::record("alarm_vs_noop_min", alarm_vs_noop_min);
    trajectory::record("alarm_avail_min", alarm_avail_min);
    trajectory::record("lead_time_min_secs", lead_time_min);
    trajectory::record("healthy_false_restarts", healthy_false_restarts as f64);
    if let Some(dir) = out {
        table.write_csv(&dir.join("e18_rejuvenation.csv"))?;
    }
    Ok(())
}

/// E19 — spectrum kernel micro-gate: per-emission cost of the rolling
/// multifractal spectrum, before (honest per-window `spectrum_in`
/// recompute) versus after (incremental O(stride) accumulator slide in
/// [`StreamingSpectrum`]). **Hard gates:** the incremental kernel cuts
/// per-emission cost by at least 2×; streaming stays bit-identical to
/// the offline [`spectrum_trace_in`] reference at 1 and 4 pool threads;
/// and the incremental emissions drift from the naive per-window
/// recompute by at most 1e-9 relative in `Δα` (the documented low-bit
/// residue of reassociating the moment sums, measured ~1e-13).
pub fn e19(quick: bool, out: Option<&Path>) -> Result<()> {
    use aging_fractal::spectrum::{
        spectrum_in, spectrum_trace_in, SpectrumConfig, StreamingSpectrum,
    };
    use aging_par::Pool;
    use std::time::Instant;

    banner(
        "E19",
        "spectrum kernel micro-gate: O(window) recompute vs O(stride) slide",
        "the incremental structure-function kernel emits each rolling spectrum window \
         at <= half the per-emission cost of the honest full-window recompute, while \
         staying bit-identical to the offline trace reference at 1 and 4 pool threads \
         and within 1e-9 relative of the naive recompute",
    );

    let config = SpectrumConfig::default();
    let (window, stride, qs) = (config.window, config.stride, config.qs.clone());
    // Sample counts sit on the emission grid (window + k·stride) so both
    // paths emit identical window sets; passes keep each timed side well
    // above timer noise on a single-core host.
    let (n, passes) = if quick {
        (16_640usize, 4u32)
    } else {
        (65_792, 4)
    };
    let emissions = (n - window) / stride + 1;
    let data = generate::fbm(n, 0.6, 777)?;
    let pool = Pool::new(1);
    println!(
        "kernel grid: window {window} stride {stride} q {qs:?}, {n} samples \
         -> {emissions} emissions x {passes} passes per side"
    );

    // Before: the pre-incremental cost model — one full structure-function
    // recompute per grid position.
    let mut naive = Vec::with_capacity(emissions);
    let baseline_started = Instant::now();
    for _ in 0..passes {
        naive.clear();
        let mut start = 0usize;
        while start + window <= n {
            naive.push(spectrum_in(&data[start..start + window], &qs, &pool)?);
            start += stride;
        }
    }
    let baseline_secs = baseline_started.elapsed().as_secs_f64();

    // After: the streaming estimator over the same samples.
    let mut streamed = Vec::with_capacity(emissions);
    let incremental_started = Instant::now();
    for _ in 0..passes {
        streamed.clear();
        let mut streaming = StreamingSpectrum::new(&config)?;
        for &v in &data {
            if let Some(w) = streaming.push_in(v, &pool)? {
                streamed.push(w);
            }
        }
    }
    let incremental_secs = incremental_started.elapsed().as_secs_f64();

    if naive.len() != emissions || streamed.len() != emissions {
        return Err(aging_timeseries::Error::invalid(
            "e19",
            format!(
                "emission grids disagree: naive {} streaming {} expected {emissions}",
                naive.len(),
                streamed.len()
            ),
        ));
    }

    // Parity gate: streaming == offline trace, bit for bit, both pool
    // sizes — the correctness contract the timing claim rides on.
    for threads in [1usize, 4] {
        let reference = spectrum_trace_in(&data, &config, &Pool::new(threads))?;
        let parity = reference.len() == streamed.len()
            && reference.iter().zip(&streamed).all(|(a, b)| {
                a.input_index == b.input_index
                    && a.alpha_min.to_bits() == b.alpha_min.to_bits()
                    && a.alpha_max.to_bits() == b.alpha_max.to_bits()
                    && a.delta_alpha.to_bits() == b.delta_alpha.to_bits()
            });
        if !parity {
            return Err(aging_timeseries::Error::invalid(
                "e19",
                format!("streaming diverged from the offline trace at {threads} pool thread(s)"),
            ));
        }
    }

    // Drift differential: the incremental slide may disagree with the
    // naive per-window recompute only in the low bits.
    let mut drift_max_rel = 0.0f64;
    for (est, w) in naive.iter().zip(&streamed) {
        let scale = est.delta_alpha.abs().max(1e-12);
        drift_max_rel = drift_max_rel.max((est.delta_alpha - w.delta_alpha).abs() / scale);
    }
    if drift_max_rel > 1e-9 {
        return Err(aging_timeseries::Error::invalid(
            "e19",
            format!(
                "incremental kernel drifted {drift_max_rel:.3e} relative from the naive \
                 recompute (gate: <= 1e-9)"
            ),
        ));
    }

    let per_emission = |secs: f64| secs / (passes as usize * emissions) as f64 * 1e6;
    let baseline_us = per_emission(baseline_secs);
    let incremental_us = per_emission(incremental_secs);
    let speedup = baseline_us / incremental_us.max(1e-12);
    let mut table = Table::new(vec!["kernel", "emissions", "us/emission", "speedup"]);
    table.row(vec![
        "recompute (before)".to_string(),
        format!("{emissions}"),
        format!("{baseline_us:.2}"),
        "1.00".to_string(),
    ]);
    table.row(vec![
        "incremental (after)".to_string(),
        format!("{emissions}"),
        format!("{incremental_us:.2}"),
        format!("{speedup:.2}"),
    ]);
    println!("{table}");
    println!(
        "parity gate held: streaming == offline trace bit-for-bit at 1 and 4 pool threads; \
         drift vs naive recompute <= {drift_max_rel:.3e} relative"
    );
    // The ≥2× floor is a claim about optimized code (like e12's floor is
    // a claim about real cores): the slide's win comes from hoisted
    // moment ladders and stack-resident fit rows, which the unoptimized
    // dev profile doesn't inline, so a debug run reports the measurement
    // without hard-failing on it.
    if cfg!(debug_assertions) {
        println!(
            "cost gate skipped (unoptimized build): measured {baseline_us:.2} -> \
             {incremental_us:.2} us/emission ({speedup:.2}x, release gate >= 2x)"
        );
    } else if speedup < 2.0 {
        return Err(aging_timeseries::Error::invalid(
            "e19",
            format!(
                "incremental kernel speedup {speedup:.2}x below the 2x gate \
                 ({baseline_us:.2} -> {incremental_us:.2} us/emission)"
            ),
        ));
    } else {
        println!(
            "cost gate held: {baseline_us:.2} -> {incremental_us:.2} us/emission ({speedup:.2}x)"
        );
    }
    trajectory::record("baseline_us_per_emission", baseline_us);
    trajectory::record("incremental_us_per_emission", incremental_us);
    trajectory::record("kernel_speedup", speedup);
    trajectory::record("drift_max_rel", drift_max_rel);
    if let Some(dir) = out {
        table.write_csv(&dir.join("e19_kernel.csv"))?;
    }
    Ok(())
}

/// Runs one experiment by id, appending its perf trajectory entry
/// (`BENCH_<id>.json` under `out`) when the run succeeds: wall-clock
/// seconds for every experiment, plus whatever domain metrics the
/// experiment [`trajectory::record`]ed while it ran.
///
/// # Errors
///
/// Propagates the experiment's failures; unknown ids are an
/// `InvalidParameter` error.
pub fn run_experiment(id: &str, quick: bool, out: Option<&Path>) -> Result<()> {
    run_experiment_with(id, quick, out, true)
}

/// [`run_experiment`] with the trajectory append switchable: quick/dev
/// probe runs pass `trajectory = false` (`repro --no-trajectory`) so
/// they don't pollute the committed `BENCH_<id>.json` histories with
/// stray entries. CSV outputs under `out` are unaffected.
///
/// # Errors
///
/// Propagates the experiment's failures; unknown ids are an
/// `InvalidParameter` error.
pub fn run_experiment_with(
    id: &str,
    quick: bool,
    out: Option<&Path>,
    trajectory: bool,
) -> Result<()> {
    // Clear any metrics a previously failed experiment left behind on
    // this thread — they belong to that run, not this one.
    let _ = trajectory::take_metrics();
    let started = std::time::Instant::now();
    let result = dispatch_experiment(id, quick, out);
    let mut metrics = trajectory::take_metrics();
    if result.is_ok() {
        if let Some(dir) = out {
            metrics.insert("wall_secs".to_string(), started.elapsed().as_secs_f64());
            let path = trajectory::append_if(dir, id, quick, metrics, trajectory)
                .map_err(|e| aging_timeseries::Error::Io(format!("bench trajectory: {e}")))?;
            match path {
                Some(p) => println!("trajectory entry appended to {}", p.display()),
                None => println!("trajectory append skipped (--no-trajectory)"),
            }
        }
    }
    result
}

fn dispatch_experiment(id: &str, quick: bool, out: Option<&Path>) -> Result<()> {
    match id {
        "e1" => e1(quick, out),
        "e2" => e2(quick, out),
        "e3" => e3(quick, out),
        "e4" => e4(quick, out),
        "e5" => e5(quick, out),
        "e6" => e6(quick, out),
        "e7" => e7(quick, out),
        "e8" => e8(quick, out),
        "e9" => e9(quick, out),
        "e10" => e10(quick, out),
        "e11" => e11(quick, out),
        "e12" => e12(quick, out),
        "e13" => e13(quick, out),
        "e14" => e14(quick, out),
        "e15" => e15(quick, out),
        "e16" => e16(quick, out),
        "e17" => e17(quick, out),
        "e18" => e18(quick, out),
        "e19" => e19(quick, out),
        other => Err(aging_timeseries::Error::invalid(
            "experiment",
            format!("unknown experiment `{other}` (expected e1..e19)"),
        )),
    }
}

/// All experiment ids in order.
pub const ALL_EXPERIMENTS: [&str; 19] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_error() {
        assert!(run_experiment("e99", true, None).is_err());
    }

    #[test]
    fn predictor_specs_cover_both_directions() {
        assert_eq!(predictor_specs(Counter::AvailableBytes).len(), 5);
        assert_eq!(predictor_specs(Counter::UsedSwapBytes).len(), 5);
    }

    #[test]
    fn trend_configs_validate() {
        trend_available().validate().unwrap();
        trend_swap().validate().unwrap();
    }
}
