//! Baseline aging predictors from the measurement-based literature the
//! target paper compares against.
//!
//! - [`SenSlopePredictor`] — Mann–Kendall trend test plus Sen's slope
//!   extrapolation to exhaustion (Garg et al. 1998; Vaidyanathan & Trivedi
//!   1998): the classical "estimate time to resource exhaustion" method.
//! - [`OlsPredictor`] — ordinary least-squares extrapolation.
//! - [`ThresholdPredictor`] — naive level crossing.
//!
//! All predictors and the Hölder-dimension detector implement
//! [`AgingPredictor`], so the evaluation harness can score them uniformly.

use crate::detector::{DetectorConfig, HolderDimensionDetector};
use aging_timeseries::regression::ols;
use aging_timeseries::trend::{MannKendall, SenSlope, TrendDirection};
use aging_timeseries::{Error, Result};

/// Whether the monitored resource depletes toward exhaustion (available
/// memory) or fills toward a capacity (used swap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceDirection {
    /// Exhaustion is the series *falling* to the level (e.g. free memory).
    Depleting,
    /// Exhaustion is the series *rising* to the level (e.g. used swap).
    Filling,
}

/// A unified streaming interface for aging predictors.
pub trait AgingPredictor {
    /// Short name for reports.
    fn name(&self) -> &str;

    /// Feeds one counter sample; returns `true` if the predictor's alarm
    /// fired **on this sample** (first firing only — predictors latch).
    ///
    /// # Errors
    ///
    /// Implementations reject NaN samples and propagate estimator errors.
    fn push(&mut self, value: f64) -> Result<bool>;

    /// Whether the alarm has fired.
    fn is_alarmed(&self) -> bool;

    /// Latest estimated time to exhaustion in seconds, when the method
    /// produces one (`None` for jump-style detectors).
    fn eta_secs(&self) -> Option<f64>;

    /// Clears all state (after rejuvenation/reboot).
    fn reset(&mut self);
}

/// Configuration shared by the trend-extrapolation predictors.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPredictorConfig {
    /// Sampling period of the fed series, seconds.
    pub sample_period_secs: f64,
    /// Number of trailing samples in the regression window.
    pub window: usize,
    /// Recompute the fit every this many samples.
    pub refit_every: usize,
    /// Mann–Kendall significance level (ignored by the OLS variant).
    pub alpha: f64,
    /// The exhaustion level the series is extrapolated to.
    pub exhaustion_level: f64,
    /// Direction of exhaustion.
    pub direction: ResourceDirection,
    /// Alarm when the estimated time to exhaustion falls below this many
    /// seconds.
    pub alarm_horizon_secs: f64,
}

impl TrendPredictorConfig {
    /// A default for a depleting resource sampled every `dt` seconds:
    /// 240-sample window, refit every 8 samples, 2-hour alarm horizon,
    /// exhaustion at level 0.
    pub fn depleting(dt: f64) -> Self {
        TrendPredictorConfig {
            sample_period_secs: dt,
            window: 240,
            refit_every: 8,
            alpha: 0.05,
            exhaustion_level: 0.0,
            direction: ResourceDirection::Depleting,
            alarm_horizon_secs: 7200.0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if !(self.sample_period_secs > 0.0 && self.sample_period_secs.is_finite()) {
            return Err(Error::invalid(
                "sample_period_secs",
                "must be finite and positive",
            ));
        }
        if self.window < 16 {
            return Err(Error::invalid("window", "must be at least 16"));
        }
        if self.refit_every == 0 {
            return Err(Error::invalid("refit_every", "must be positive"));
        }
        if !(0.0 < self.alpha && self.alpha < 1.0) {
            return Err(Error::invalid("alpha", "must lie in (0, 1)"));
        }
        if !self.exhaustion_level.is_finite() {
            return Err(Error::invalid("exhaustion_level", "must be finite"));
        }
        if !(self.alarm_horizon_secs > 0.0) {
            return Err(Error::invalid("alarm_horizon_secs", "must be positive"));
        }
        Ok(())
    }
}

/// Shared state of the windowed trend predictors.
#[derive(Debug, Clone)]
struct TrendState {
    config: TrendPredictorConfig,
    buffer: Vec<f64>,
    count: usize,
    eta: Option<f64>,
    alarmed: bool,
}

impl TrendState {
    fn new(config: TrendPredictorConfig) -> Result<Self> {
        config.validate()?;
        Ok(TrendState {
            config,
            buffer: Vec::new(),
            count: 0,
            eta: None,
            alarmed: false,
        })
    }

    fn push_value(&mut self, value: f64) -> Result<bool> {
        if !value.is_finite() {
            return Err(Error::NonFinite { index: self.count });
        }
        self.count += 1;
        self.buffer.push(value);
        let w = self.config.window;
        if self.buffer.len() > w {
            let excess = self.buffer.len() - w;
            self.buffer.drain(..excess);
        }
        Ok(self.buffer.len() == w && self.count.is_multiple_of(self.config.refit_every))
    }

    fn trend_is_toward_exhaustion(&self, slope: f64) -> bool {
        match self.config.direction {
            ResourceDirection::Depleting => slope < 0.0,
            ResourceDirection::Filling => slope > 0.0,
        }
    }

    /// Converts a predicted crossing time (seconds from the window start)
    /// into an ETA from *now* (the window end) and updates alarm state.
    fn update_eta(&mut self, crossing_from_window_start: Option<f64>) -> bool {
        let window_span = (self.buffer.len() - 1) as f64 * self.config.sample_period_secs;
        self.eta = crossing_from_window_start
            .map(|t| (t - window_span).max(0.0))
            .filter(|t| t.is_finite());
        let fire = match self.eta {
            Some(eta) => eta <= self.config.alarm_horizon_secs,
            None => false,
        };
        if fire && !self.alarmed {
            self.alarmed = true;
            return true;
        }
        false
    }

    fn reset(&mut self) {
        self.buffer.clear();
        self.count = 0;
        self.eta = None;
        self.alarmed = false;
    }
}

/// Mann–Kendall + Sen-slope exhaustion predictor (the classical baseline).
#[derive(Debug, Clone)]
pub struct SenSlopePredictor {
    state: TrendState,
}

impl SenSlopePredictor {
    /// Creates the predictor.
    ///
    /// # Errors
    ///
    /// Propagates [`TrendPredictorConfig::validate`] failures.
    pub fn new(config: TrendPredictorConfig) -> Result<Self> {
        Ok(SenSlopePredictor {
            state: TrendState::new(config)?,
        })
    }
}

impl AgingPredictor for SenSlopePredictor {
    fn name(&self) -> &str {
        "mann-kendall-sen"
    }

    fn push(&mut self, value: f64) -> Result<bool> {
        if !self.state.push_value(value)? {
            return Ok(false);
        }
        let cfg = &self.state.config;
        let mk = match MannKendall::test(&self.state.buffer) {
            Ok(mk) => mk,
            Err(_) => return Ok(false), // degenerate window (constant)
        };
        let significant = match cfg.direction {
            ResourceDirection::Depleting => mk.direction(cfg.alpha) == TrendDirection::Decreasing,
            ResourceDirection::Filling => mk.direction(cfg.alpha) == TrendDirection::Increasing,
        };
        if !significant {
            self.state.eta = None;
            return Ok(false);
        }
        let sen = match SenSlope::estimate(&self.state.buffer, cfg.sample_period_secs) {
            Ok(s) => s,
            Err(_) => return Ok(false),
        };
        if !self.state.trend_is_toward_exhaustion(sen.slope) {
            self.state.eta = None;
            return Ok(false);
        }
        let level = cfg.exhaustion_level;
        let crossing = sen.time_to_level(level);
        Ok(self.state.update_eta(crossing))
    }

    fn is_alarmed(&self) -> bool {
        self.state.alarmed
    }

    fn eta_secs(&self) -> Option<f64> {
        self.state.eta
    }

    fn reset(&mut self) {
        self.state.reset();
    }
}

/// Ordinary least-squares exhaustion predictor.
#[derive(Debug, Clone)]
pub struct OlsPredictor {
    state: TrendState,
}

impl OlsPredictor {
    /// Creates the predictor.
    ///
    /// # Errors
    ///
    /// Propagates [`TrendPredictorConfig::validate`] failures.
    pub fn new(config: TrendPredictorConfig) -> Result<Self> {
        Ok(OlsPredictor {
            state: TrendState::new(config)?,
        })
    }
}

impl AgingPredictor for OlsPredictor {
    fn name(&self) -> &str {
        "ols-extrapolation"
    }

    fn push(&mut self, value: f64) -> Result<bool> {
        if !self.state.push_value(value)? {
            return Ok(false);
        }
        let cfg = &self.state.config;
        let times: Vec<f64> = (0..self.state.buffer.len())
            .map(|i| i as f64 * cfg.sample_period_secs)
            .collect();
        let fit = match ols(&times, &self.state.buffer) {
            Ok(f) => f,
            Err(_) => return Ok(false),
        };
        if !self.state.trend_is_toward_exhaustion(fit.slope) {
            self.state.eta = None;
            return Ok(false);
        }
        let crossing = fit.solve_for(cfg.exhaustion_level).filter(|&t| t >= 0.0);
        Ok(self.state.update_eta(crossing))
    }

    fn is_alarmed(&self) -> bool {
        self.state.alarmed
    }

    fn eta_secs(&self) -> Option<f64> {
        self.state.eta
    }

    fn reset(&mut self) {
        self.state.reset();
    }
}

/// Naive level-crossing predictor: alarms the first time the series
/// crosses the configured level in the exhaustion direction.
#[derive(Debug, Clone)]
pub struct ThresholdPredictor {
    level: f64,
    direction: ResourceDirection,
    count: usize,
    alarmed: bool,
}

impl ThresholdPredictor {
    /// Creates the predictor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a non-finite level.
    pub fn new(level: f64, direction: ResourceDirection) -> Result<Self> {
        if !level.is_finite() {
            return Err(Error::invalid("level", "must be finite"));
        }
        Ok(ThresholdPredictor {
            level,
            direction,
            count: 0,
            alarmed: false,
        })
    }
}

impl AgingPredictor for ThresholdPredictor {
    fn name(&self) -> &str {
        "threshold"
    }

    fn push(&mut self, value: f64) -> Result<bool> {
        if !value.is_finite() {
            return Err(Error::NonFinite { index: self.count });
        }
        self.count += 1;
        if self.alarmed {
            return Ok(false);
        }
        let crossed = match self.direction {
            ResourceDirection::Depleting => value <= self.level,
            ResourceDirection::Filling => value >= self.level,
        };
        if crossed {
            self.alarmed = true;
            return Ok(true);
        }
        Ok(false)
    }

    fn is_alarmed(&self) -> bool {
        self.alarmed
    }

    fn eta_secs(&self) -> Option<f64> {
        None
    }

    fn reset(&mut self) {
        self.count = 0;
        self.alarmed = false;
    }
}

/// CUSUM change-point predictor: alarms on the first mean shift in the
/// exhaustion direction (a classical statistical-process-control baseline,
/// sensitive to level shifts rather than trends).
#[derive(Debug, Clone)]
pub struct CusumPredictor {
    inner: aging_timeseries::changepoint::Cusum,
    direction: ResourceDirection,
    alarmed: bool,
}

impl CusumPredictor {
    /// Creates the predictor.
    ///
    /// # Errors
    ///
    /// Propagates CUSUM configuration failures.
    pub fn new(
        config: aging_timeseries::changepoint::CusumConfig,
        direction: ResourceDirection,
    ) -> Result<Self> {
        Ok(CusumPredictor {
            inner: aging_timeseries::changepoint::Cusum::new(config)?,
            direction,
            alarmed: false,
        })
    }
}

impl AgingPredictor for CusumPredictor {
    fn name(&self) -> &str {
        "cusum"
    }

    fn push(&mut self, value: f64) -> Result<bool> {
        // A constant reference window (e.g. swap pinned at zero) is not an
        // input error at this level — it just means no shift baseline yet.
        let cp = match self.inner.push(value) {
            Ok(cp) => cp,
            Err(Error::Numerical(_)) => None,
            Err(e) => return Err(e),
        };
        if self.alarmed {
            return Ok(false);
        }
        use aging_timeseries::changepoint::ShiftDirection;
        let fire = matches!(
            (cp, self.direction),
            (
                Some(aging_timeseries::changepoint::ChangePoint {
                    direction: ShiftDirection::Down,
                    ..
                }),
                ResourceDirection::Depleting
            ) | (
                Some(aging_timeseries::changepoint::ChangePoint {
                    direction: ShiftDirection::Up,
                    ..
                }),
                ResourceDirection::Filling
            )
        );
        if fire {
            self.alarmed = true;
            return Ok(true);
        }
        Ok(false)
    }

    fn is_alarmed(&self) -> bool {
        self.alarmed
    }

    fn eta_secs(&self) -> Option<f64> {
        None
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.alarmed = false;
    }
}

impl AgingPredictor for HolderDimensionDetector {
    fn name(&self) -> &str {
        "holder-dimension"
    }

    fn push(&mut self, value: f64) -> Result<bool> {
        let alert = HolderDimensionDetector::push(self, value)?;
        Ok(matches!(
            alert,
            Some(a) if a.level == crate::detector::AlertLevel::Alarm
        ))
    }

    fn is_alarmed(&self) -> bool {
        HolderDimensionDetector::is_alarmed(self)
    }

    fn eta_secs(&self) -> Option<f64> {
        None
    }

    fn reset(&mut self) {
        HolderDimensionDetector::reset(self);
    }
}

/// Builds the standard predictor set used by the comparison experiments
/// (E4): Hölder-dimension detector, Mann–Kendall/Sen, OLS, threshold.
///
/// `dt` is the sampling period; `capacity` the resource's full level
/// (e.g. RAM bytes for available-memory monitoring).
///
/// # Errors
///
/// Propagates individual constructor failures.
pub fn standard_predictors(
    dt: f64,
    capacity: f64,
    detector: DetectorConfig,
) -> Result<Vec<Box<dyn AgingPredictor>>> {
    let trend = TrendPredictorConfig {
        sample_period_secs: dt,
        exhaustion_level: 0.02 * capacity,
        ..TrendPredictorConfig::depleting(dt)
    };
    Ok(vec![
        Box::new(HolderDimensionDetector::new(detector)?),
        Box::new(SenSlopePredictor::new(trend.clone())?),
        Box::new(OlsPredictor::new(trend)?),
        Box::new(ThresholdPredictor::new(
            0.05 * capacity,
            ResourceDirection::Depleting,
        )?),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depleting_config() -> TrendPredictorConfig {
        TrendPredictorConfig {
            sample_period_secs: 30.0,
            window: 60,
            refit_every: 4,
            alpha: 0.05,
            exhaustion_level: 0.0,
            direction: ResourceDirection::Depleting,
            alarm_horizon_secs: 3600.0,
        }
    }

    /// Free-memory-like ramp: from `start` falling `rate` per sample with
    /// deterministic wiggle.
    fn falling_ramp(n: usize, start: f64, rate: f64) -> Vec<f64> {
        (0..n)
            .map(|i| start - rate * i as f64 + 50.0 * ((i as f64 * 0.7).sin()))
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(depleting_config().validate().is_ok());
        let bad = |f: fn(&mut TrendPredictorConfig)| {
            let mut c = depleting_config();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.sample_period_secs = 0.0));
        assert!(bad(|c| c.window = 4));
        assert!(bad(|c| c.refit_every = 0));
        assert!(bad(|c| c.alpha = 1.5));
        assert!(bad(|c| c.exhaustion_level = f64::NAN));
        assert!(bad(|c| c.alarm_horizon_secs = 0.0));
    }

    #[test]
    fn sen_predictor_alarms_on_clean_depletion() {
        // 10 000 units, −10/sample at 30 s ⇒ exhaustion after 1000 samples
        // = 30 000 s. Horizon 3600 s: alarm ≈ sample 880.
        let series = falling_ramp(1000, 10_000.0, 10.0);
        let mut p = SenSlopePredictor::new(depleting_config()).unwrap();
        let mut fired_at = None;
        for (i, &v) in series.iter().enumerate() {
            if p.push(v).unwrap() {
                fired_at = Some(i);
                break;
            }
        }
        let fired = fired_at.expect("must alarm");
        assert!((850..=930).contains(&fired), "fired at {fired}");
        assert!(p.is_alarmed());
        let eta = p.eta_secs().expect("eta available");
        assert!(eta <= 3600.0);
    }

    #[test]
    fn ols_predictor_alarms_on_clean_depletion() {
        let series = falling_ramp(1000, 10_000.0, 10.0);
        let mut p = OlsPredictor::new(depleting_config()).unwrap();
        let mut fired_at = None;
        for (i, &v) in series.iter().enumerate() {
            if p.push(v).unwrap() {
                fired_at = Some(i);
                break;
            }
        }
        let fired = fired_at.expect("must alarm");
        assert!((850..=930).contains(&fired), "fired at {fired}");
    }

    #[test]
    fn trend_predictors_silent_on_stationary_series() {
        let series: Vec<f64> = (0..2000)
            .map(|i| 5000.0 + 100.0 * ((i as f64) * 0.37).sin())
            .collect();
        let mut sen = SenSlopePredictor::new(depleting_config()).unwrap();
        let mut lsq = OlsPredictor::new(depleting_config()).unwrap();
        for &v in &series {
            assert!(!sen.push(v).unwrap());
            assert!(!lsq.push(v).unwrap());
        }
        assert!(!sen.is_alarmed());
        assert!(!lsq.is_alarmed());
    }

    #[test]
    fn sen_is_robust_to_spikes_where_ols_is_not() {
        // A strong downward trend with huge upward spikes: Sen's slope
        // still sees depletion; OLS slope is dragged around. We only
        // assert Sen still alarms.
        let mut series = falling_ramp(1000, 10_000.0, 10.0);
        for i in (0..series.len()).step_by(37) {
            series[i] += 20_000.0;
        }
        let mut sen = SenSlopePredictor::new(depleting_config()).unwrap();
        let mut fired = false;
        for &v in &series {
            if sen.push(v).unwrap() {
                fired = true;
            }
        }
        assert!(fired, "Sen must alarm despite spikes");
    }

    #[test]
    fn filling_direction_works() {
        let config = TrendPredictorConfig {
            direction: ResourceDirection::Filling,
            exhaustion_level: 10_000.0,
            ..depleting_config()
        };
        let series: Vec<f64> = (0..1000)
            .map(|i| 10.0 * i as f64 + 30.0 * ((i as f64).cos()))
            .collect();
        let mut p = SenSlopePredictor::new(config).unwrap();
        let mut fired = false;
        for &v in &series {
            if p.push(v).unwrap() {
                fired = true;
                break;
            }
        }
        assert!(fired);
    }

    #[test]
    fn threshold_predictor_crossings() {
        let mut p = ThresholdPredictor::new(100.0, ResourceDirection::Depleting).unwrap();
        assert!(!p.push(500.0).unwrap());
        assert!(p.push(99.0).unwrap());
        assert!(p.is_alarmed());
        // Latched: no second firing.
        assert!(!p.push(5.0).unwrap());
        p.reset();
        assert!(!p.is_alarmed());

        let mut f = ThresholdPredictor::new(100.0, ResourceDirection::Filling).unwrap();
        assert!(!f.push(50.0).unwrap());
        assert!(f.push(150.0).unwrap());
        assert!(ThresholdPredictor::new(f64::NAN, ResourceDirection::Filling).is_err());
    }

    #[test]
    fn predictors_reject_nan() {
        let mut sen = SenSlopePredictor::new(depleting_config()).unwrap();
        assert!(sen.push(f64::NAN).is_err());
        let mut thr = ThresholdPredictor::new(0.0, ResourceDirection::Depleting).unwrap();
        assert!(thr.push(f64::INFINITY).is_err());
    }

    #[test]
    fn reset_clears_state() {
        let series = falling_ramp(1000, 10_000.0, 10.0);
        let mut p = SenSlopePredictor::new(depleting_config()).unwrap();
        for &v in &series {
            let _ = p.push(v).unwrap();
        }
        assert!(p.is_alarmed());
        p.reset();
        assert!(!p.is_alarmed());
        assert_eq!(p.eta_secs(), None);
        // Works again after reset.
        for &v in &series[..100] {
            let _ = p.push(v).unwrap();
        }
    }

    #[test]
    fn cusum_predictor_fires_on_level_shift() {
        let mut p = CusumPredictor::new(
            aging_timeseries::changepoint::CusumConfig::default(),
            ResourceDirection::Depleting,
        )
        .unwrap();
        let mut fired = false;
        for i in 0..400 {
            let level = if i < 250 { 100.0 } else { 80.0 };
            let v = level + ((i * 37 + 11) % 13) as f64 / 13.0;
            fired |= p.push(v).unwrap();
        }
        assert!(fired);
        assert!(p.is_alarmed());
        p.reset();
        assert!(!p.is_alarmed());
    }

    #[test]
    fn cusum_predictor_ignores_wrong_direction_shift() {
        let mut p = CusumPredictor::new(
            aging_timeseries::changepoint::CusumConfig::default(),
            ResourceDirection::Depleting,
        )
        .unwrap();
        for i in 0..400 {
            let level = if i < 250 { 100.0 } else { 130.0 }; // upward
            let v = level + ((i * 37 + 11) % 13) as f64 / 13.0;
            assert!(!p.push(v).unwrap());
        }
        assert!(!p.is_alarmed());
    }

    #[test]
    fn cusum_predictor_tolerates_constant_reference() {
        let mut p = CusumPredictor::new(
            aging_timeseries::changepoint::CusumConfig::default(),
            ResourceDirection::Filling,
        )
        .unwrap();
        // Swap pinned at zero: constant reference must not be an error.
        for _ in 0..300 {
            assert!(!p.push(0.0).unwrap());
        }
    }

    #[test]
    fn standard_predictor_set_builds() {
        let set = standard_predictors(30.0, 2.68e8, DetectorConfig::default()).unwrap();
        assert_eq!(set.len(), 4);
        let names: Vec<&str> = set.iter().map(|p| p.name()).collect();
        assert!(names.contains(&"holder-dimension"));
        assert!(names.contains(&"mann-kendall-sen"));
        assert!(names.contains(&"ols-extrapolation"));
        assert!(names.contains(&"threshold"));
    }

    #[test]
    fn detector_adapts_to_predictor_trait() {
        let mut det = HolderDimensionDetector::new(DetectorConfig::default()).unwrap();
        let p: &mut dyn AgingPredictor = &mut det;
        assert_eq!(p.name(), "holder-dimension");
        assert!(!p.push(1.0).unwrap());
        assert_eq!(p.eta_secs(), None);
        p.reset();
    }
}
