//! Wire-level fault injection for the `aging-serve` binary protocol.
//!
//! The other injectors in this crate damage *samples*; these damage the
//! *byte stream carrying them*: frames cut short mid-write, single bit
//! flips (defeating the CRC), pathological write fragmentation, and
//! abrupt disconnects. A [`WireChaos`] sits between an encoded frame
//! sequence and the socket, rewriting each frame into a list of
//! [`WriteOp`]s the test harness then performs verbatim.
//!
//! Like every injector here, the damage is a pure function of
//! `(plan, seed)` — replaying a plan reproduces the identical byte
//! stream, so a server-side quarantine decision can be asserted exactly.
//!
//! ```
//! use aging_chaos::wire::{WireChaos, WireFault, WirePlan, WriteOp};
//!
//! let plan = WirePlan::new(7).with(WireFault::Truncate { frame: 1, keep_bytes: 3 });
//! let mut chaos = WireChaos::new(&plan);
//! let mut ops = Vec::new();
//! chaos.apply(&[1, 2, 3, 4], &mut ops); // frame 0 passes through
//! chaos.apply(&[5, 6, 7, 8], &mut ops); // frame 1 is cut short
//! assert_eq!(
//!     ops,
//!     vec![
//!         WriteOp::Data(vec![1, 2, 3, 4]),
//!         WriteOp::Data(vec![5, 6, 7]),
//!         WriteOp::Disconnect,
//!     ]
//! );
//! assert!(chaos.disconnected());
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One wire-level fault. Frame indices count the frames offered to
/// [`WireChaos::apply`], starting at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Cut the stream inside frame `frame`: only its first `keep_bytes`
    /// bytes are written, then the connection drops. Exercises the
    /// server's EOF-mid-frame truncation path.
    Truncate {
        /// Index of the frame to cut.
        frame: usize,
        /// Bytes of it that still make it onto the wire.
        keep_bytes: usize,
    },
    /// Flip one seeded-random bit inside frame `frame` (possibly in its
    /// length prefix or CRC trailer). Exercises CRC rejection and
    /// framing-corruption quarantine.
    CorruptBit {
        /// Index of the frame to damage.
        frame: usize,
    },
    /// Fragment every write into chunks of at most `chunk` bytes —
    /// pathological TCP segmentation. Must be semantically invisible to
    /// a correct decoder.
    SplitWrites {
        /// Maximum bytes per write.
        chunk: usize,
    },
    /// Drop the connection abruptly after `frames` complete frames,
    /// without the `Bye` handshake.
    DisconnectAfter {
        /// Frames that still go out intact.
        frames: usize,
    },
}

/// A deterministic wire-fault schedule: a master seed plus a fault list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePlan {
    /// Master seed for byte/bit position choices.
    pub seed: u64,
    /// Faults applied to every frame, in order.
    pub faults: Vec<WireFault>,
}

impl WirePlan {
    /// An empty plan (pass-through) with the given seed.
    pub fn new(seed: u64) -> Self {
        WirePlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds one fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: WireFault) -> Self {
        self.faults.push(fault);
        self
    }
}

/// What the harness should do to the socket next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Write these bytes.
    Data(Vec<u8>),
    /// Drop the connection now (no further ops follow).
    Disconnect,
}

/// Stateful rewriter applying a [`WirePlan`] to a frame sequence.
#[derive(Debug)]
pub struct WireChaos {
    rng: StdRng,
    faults: Vec<WireFault>,
    frame_index: usize,
    disconnected: bool,
    bits_flipped: u64,
}

impl WireChaos {
    /// A rewriter for one connection's outgoing frames.
    pub fn new(plan: &WirePlan) -> Self {
        WireChaos {
            rng: StdRng::seed_from_u64(plan.seed),
            faults: plan.faults.clone(),
            frame_index: 0,
            disconnected: false,
            bits_flipped: 0,
        }
    }

    /// `true` once a fault has dropped the connection; later frames are
    /// swallowed without ops.
    pub fn disconnected(&self) -> bool {
        self.disconnected
    }

    /// Bits flipped so far by `CorruptBit` faults.
    pub fn bits_flipped(&self) -> u64 {
        self.bits_flipped
    }

    /// Rewrites one encoded frame into write operations, advancing the
    /// frame counter. After a disconnect this is a no-op.
    pub fn apply(&mut self, frame: &[u8], out: &mut Vec<WriteOp>) {
        if self.disconnected {
            return;
        }
        let index = self.frame_index;
        self.frame_index += 1;

        // Disconnect faults take precedence: nothing of this frame goes
        // out once the connection is scheduled to die before it.
        for fault in &self.faults {
            if let WireFault::DisconnectAfter { frames } = fault {
                if index >= *frames {
                    self.disconnected = true;
                    out.push(WriteOp::Disconnect);
                    return;
                }
            }
        }

        let mut bytes = frame.to_vec();
        let mut cut: Option<usize> = None;
        for fault in &self.faults {
            match *fault {
                WireFault::Truncate { frame, keep_bytes } if frame == index => {
                    cut = Some(keep_bytes.min(bytes.len()));
                }
                WireFault::CorruptBit { frame } if frame == index && !bytes.is_empty() => {
                    let byte = self.rng.gen_range(0..bytes.len());
                    let bit = self.rng.gen_range(0..8u32);
                    bytes[byte] ^= 1 << bit;
                    self.bits_flipped += 1;
                }
                _ => {}
            }
        }
        if let Some(keep) = cut {
            bytes.truncate(keep);
        }

        let chunk = self
            .faults
            .iter()
            .filter_map(|f| match f {
                WireFault::SplitWrites { chunk } => Some((*chunk).max(1)),
                _ => None,
            })
            .min()
            .unwrap_or(usize::MAX);
        for piece in bytes.chunks(chunk.min(bytes.len().max(1))) {
            out.push(WriteOp::Data(piece.to_vec()));
        }
        if cut.is_some() {
            self.disconnected = true;
            out.push(WriteOp::Disconnect);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<Vec<u8>> {
        (0u8..4).map(|i| vec![i; 8]).collect()
    }

    fn run(plan: WirePlan) -> (Vec<WriteOp>, WireChaos) {
        let mut chaos = WireChaos::new(&plan);
        let mut ops = Vec::new();
        for f in frames() {
            chaos.apply(&f, &mut ops);
        }
        (ops, chaos)
    }

    #[test]
    fn pass_through_preserves_bytes() {
        let (ops, chaos) = run(WirePlan::new(1));
        assert!(!chaos.disconnected());
        let flat: Vec<u8> = ops
            .iter()
            .flat_map(|op| match op {
                WriteOp::Data(d) => d.clone(),
                WriteOp::Disconnect => panic!("no disconnect expected"),
            })
            .collect();
        let expected: Vec<u8> = frames().concat();
        assert_eq!(flat, expected);
    }

    #[test]
    fn truncate_cuts_one_frame_then_disconnects() {
        let (ops, chaos) = run(WirePlan::new(1).with(WireFault::Truncate {
            frame: 2,
            keep_bytes: 3,
        }));
        assert!(chaos.disconnected());
        assert_eq!(
            ops,
            vec![
                WriteOp::Data(vec![0; 8]),
                WriteOp::Data(vec![1; 8]),
                WriteOp::Data(vec![2; 3]),
                WriteOp::Disconnect,
            ]
        );
    }

    #[test]
    fn corrupt_bit_flips_exactly_one_bit_deterministically() {
        let plan = WirePlan::new(99).with(WireFault::CorruptBit { frame: 1 });
        let (ops_a, chaos) = run(plan.clone());
        let (ops_b, _) = run(plan);
        assert_eq!(ops_a, ops_b, "seeded damage must replay bit-identically");
        assert_eq!(chaos.bits_flipped(), 1);
        let WriteOp::Data(damaged) = &ops_a[1] else {
            panic!("expected data op");
        };
        let clean = vec![1u8; 8];
        let differing: u32 = damaged
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing, 1);
    }

    #[test]
    fn split_writes_fragment_without_changing_content() {
        let (ops, _) = run(WirePlan::new(1).with(WireFault::SplitWrites { chunk: 3 }));
        assert!(ops
            .iter()
            .all(|op| matches!(op, WriteOp::Data(d) if d.len() <= 3)));
        let flat: Vec<u8> = ops
            .iter()
            .flat_map(|op| match op {
                WriteOp::Data(d) => d.clone(),
                WriteOp::Disconnect => vec![],
            })
            .collect();
        assert_eq!(flat, frames().concat());
    }

    #[test]
    fn disconnect_after_swallows_the_tail() {
        let (ops, chaos) = run(WirePlan::new(1).with(WireFault::DisconnectAfter { frames: 2 }));
        assert!(chaos.disconnected());
        assert_eq!(
            ops,
            vec![
                WriteOp::Data(vec![0; 8]),
                WriteOp::Data(vec![1; 8]),
                WriteOp::Disconnect,
            ]
        );
    }

    #[test]
    fn faults_compose() {
        let plan = WirePlan::new(5)
            .with(WireFault::SplitWrites { chunk: 2 })
            .with(WireFault::Truncate {
                frame: 1,
                keep_bytes: 5,
            });
        let (ops, _) = run(plan);
        // Frame 0: four 2-byte pieces; frame 1: 5 bytes in 2+2+1, then cut.
        assert_eq!(ops.last(), Some(&WriteOp::Disconnect));
        let flat: Vec<u8> = ops
            .iter()
            .flat_map(|op| match op {
                WriteOp::Data(d) => d.clone(),
                WriteOp::Disconnect => vec![],
            })
            .collect();
        let mut expected = vec![0u8; 8];
        expected.extend_from_slice(&[1; 5]);
        assert_eq!(flat, expected);
    }
}
