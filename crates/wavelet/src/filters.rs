//! Orthogonal wavelet filter banks (Haar and the Daubechies family).
//!
//! Filters are stored as the scaling (low-pass) coefficients `h`; the
//! wavelet (high-pass) coefficients `g` follow from the quadrature-mirror
//! relation `g[k] = (-1)^k h[L-1-k]`. All filters are L²-normalised:
//! `Σ h[k] = √2` and `Σ h[k]² = 1`.

use aging_timeseries::{Error, Result};

/// An orthogonal wavelet family usable by the DWT, MODWT and leader
/// machinery.
///
/// `DaubechiesN` denotes the filter with `N` taps (i.e. `N/2` vanishing
/// moments); `Haar` equals `Daubechies2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Wavelet {
    /// The Haar wavelet (2 taps, 1 vanishing moment).
    Haar,
    /// Daubechies 4-tap filter (2 vanishing moments).
    #[default]
    Daubechies4,
    /// Daubechies 6-tap filter (3 vanishing moments).
    Daubechies6,
    /// Daubechies 8-tap filter (4 vanishing moments).
    Daubechies8,
    /// Daubechies 10-tap filter (5 vanishing moments).
    Daubechies10,
    /// Daubechies 12-tap filter (6 vanishing moments).
    Daubechies12,
}

/// Daubechies 4-tap scaling coefficients, `(1±√3)/(4√2)` pattern.
fn db2() -> [f64; 4] {
    let s3 = 3.0_f64.sqrt();
    let d = 4.0 * 2.0_f64.sqrt();
    [
        (1.0 + s3) / d,
        (3.0 + s3) / d,
        (3.0 - s3) / d,
        (1.0 - s3) / d,
    ]
}

const DB3: [f64; 6] = [
    0.332_670_552_950_082_5,
    0.806_891_509_311_092_4,
    0.459_877_502_118_491_4,
    -0.135_011_020_010_254_6,
    -0.085_441_273_882_026_7,
    0.035_226_291_885_709_5,
];

const DB4: [f64; 8] = [
    0.230_377_813_308_896_4,
    0.714_846_570_552_915_4,
    0.630_880_767_929_858_7,
    -0.027_983_769_416_859_9,
    -0.187_034_811_719_093_1,
    0.030_841_381_835_560_7,
    0.032_883_011_666_885_2,
    -0.010_597_401_785_069_0,
];

const DB5: [f64; 10] = [
    0.160_102_397_974_192_9,
    0.603_829_269_797_189_5,
    0.724_308_528_437_772_6,
    0.138_428_145_901_320_3,
    -0.242_294_887_066_382_3,
    -0.032_244_869_584_638_1,
    0.077_571_493_840_045_9,
    -0.006_241_490_212_798_3,
    -0.012_580_751_999_082_0,
    0.003_335_725_285_473_8,
];

const DB6: [f64; 12] = [
    0.111_540_743_350_109_5,
    0.494_623_890_398_453_3,
    0.751_133_908_021_095_9,
    0.315_250_351_709_198_2,
    -0.226_264_693_965_44,
    -0.129_766_867_567_262_5,
    0.097_501_605_587_322_5,
    0.027_522_865_530_305_3,
    -0.031_582_039_317_486_2,
    0.000_553_842_201_161_4,
    0.004_777_257_510_945_5,
    -0.001_077_301_085_308_5,
];

impl Wavelet {
    /// All supported wavelets, shortest filter first.
    pub const ALL: [Wavelet; 6] = [
        Wavelet::Haar,
        Wavelet::Daubechies4,
        Wavelet::Daubechies6,
        Wavelet::Daubechies8,
        Wavelet::Daubechies10,
        Wavelet::Daubechies12,
    ];

    /// The scaling (low-pass) filter coefficients.
    pub fn scaling_filter(&self) -> Vec<f64> {
        match self {
            Wavelet::Haar => {
                let c = std::f64::consts::FRAC_1_SQRT_2;
                vec![c, c]
            }
            Wavelet::Daubechies4 => db2().to_vec(),
            Wavelet::Daubechies6 => DB3.to_vec(),
            Wavelet::Daubechies8 => DB4.to_vec(),
            Wavelet::Daubechies10 => DB5.to_vec(),
            Wavelet::Daubechies12 => DB6.to_vec(),
        }
    }

    /// The wavelet (high-pass) filter via the quadrature-mirror relation
    /// `g[k] = (-1)^k h[L-1-k]`.
    pub fn wavelet_filter(&self) -> Vec<f64> {
        let h = self.scaling_filter();
        let l = h.len();
        (0..l)
            .map(|k| {
                let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                sign * h[l - 1 - k]
            })
            .collect()
    }

    /// Number of filter taps.
    pub fn filter_len(&self) -> usize {
        match self {
            Wavelet::Haar => 2,
            Wavelet::Daubechies4 => 4,
            Wavelet::Daubechies6 => 6,
            Wavelet::Daubechies8 => 8,
            Wavelet::Daubechies10 => 10,
            Wavelet::Daubechies12 => 12,
        }
    }

    /// Number of vanishing moments of the wavelet function.
    pub fn vanishing_moments(&self) -> usize {
        self.filter_len() / 2
    }

    /// Parses a wavelet name (`"haar"`, `"db2"`, `"db3"`, … or
    /// `"daubechies4"`, …).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown names.
    pub fn from_name(name: &str) -> Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "haar" | "db1" | "daubechies2" => Ok(Wavelet::Haar),
            "db2" | "daubechies4" => Ok(Wavelet::Daubechies4),
            "db3" | "daubechies6" => Ok(Wavelet::Daubechies6),
            "db4" | "daubechies8" => Ok(Wavelet::Daubechies8),
            "db5" | "daubechies10" => Ok(Wavelet::Daubechies10),
            "db6" | "daubechies12" => Ok(Wavelet::Daubechies12),
            other => Err(Error::invalid("name", format!("unknown wavelet `{other}`"))),
        }
    }
}

impl std::fmt::Display for Wavelet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Wavelet::Haar => "haar",
            Wavelet::Daubechies4 => "db2",
            Wavelet::Daubechies6 => "db3",
            Wavelet::Daubechies8 => "db4",
            Wavelet::Daubechies10 => "db5",
            Wavelet::Daubechies12 => "db6",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn scaling_filters_sum_to_sqrt2() {
        for w in Wavelet::ALL {
            let sum: f64 = w.scaling_filter().iter().sum();
            assert!(
                (sum - std::f64::consts::SQRT_2).abs() < 1e-9,
                "{w}: sum {sum}"
            );
        }
    }

    #[test]
    fn scaling_filters_unit_energy() {
        for w in Wavelet::ALL {
            let e: f64 = w.scaling_filter().iter().map(|v| v * v).sum();
            assert!((e - 1.0).abs() < 1e-9, "{w}: energy {e}");
        }
    }

    #[test]
    fn scaling_filters_orthogonal_to_even_shifts() {
        for w in Wavelet::ALL {
            let h = w.scaling_filter();
            let l = h.len();
            for m in 1..l / 2 {
                let dot: f64 = (0..l - 2 * m).map(|k| h[k] * h[k + 2 * m]).sum();
                assert!(dot.abs() < 1e-9, "{w}: shift {m} dot {dot}");
            }
        }
    }

    #[test]
    fn wavelet_filter_sums_to_zero() {
        for w in Wavelet::ALL {
            let sum: f64 = w.wavelet_filter().iter().sum();
            assert!(sum.abs() < TOL, "{w}: sum {sum}");
        }
    }

    #[test]
    fn wavelet_filter_orthogonal_to_scaling() {
        for w in Wavelet::ALL {
            let h = w.scaling_filter();
            let g = w.wavelet_filter();
            let dot: f64 = h.iter().zip(&g).map(|(a, b)| a * b).sum();
            assert!(dot.abs() < TOL, "{w}: dot {dot}");
        }
    }

    #[test]
    fn vanishing_moments_annihilate_polynomials() {
        // Σ g[k] k^p = 0 for p < vanishing moments.
        for w in Wavelet::ALL {
            let g = w.wavelet_filter();
            for p in 0..w.vanishing_moments() {
                let s: f64 = g
                    .iter()
                    .enumerate()
                    .map(|(k, &gv)| gv * (k as f64).powi(p as i32))
                    .sum();
                assert!(s.abs() < 1e-7, "{w}: moment {p} = {s}");
            }
        }
    }

    #[test]
    fn haar_matches_known_values() {
        let h = Wavelet::Haar.scaling_filter();
        assert!((h[0] - std::f64::consts::FRAC_1_SQRT_2).abs() < TOL);
        let g = Wavelet::Haar.wavelet_filter();
        assert!((g[0] - std::f64::consts::FRAC_1_SQRT_2).abs() < TOL);
        assert!((g[1] + std::f64::consts::FRAC_1_SQRT_2).abs() < TOL);
    }

    #[test]
    fn filter_len_matches_table() {
        for w in Wavelet::ALL {
            assert_eq!(w.scaling_filter().len(), w.filter_len());
            assert_eq!(w.wavelet_filter().len(), w.filter_len());
        }
    }

    #[test]
    fn from_name_round_trip() {
        for w in Wavelet::ALL {
            assert_eq!(Wavelet::from_name(&w.to_string()).unwrap(), w);
        }
        assert_eq!(Wavelet::from_name("HAAR").unwrap(), Wavelet::Haar);
        assert!(Wavelet::from_name("db42").is_err());
    }

    #[test]
    fn default_is_db2() {
        assert_eq!(Wavelet::default(), Wavelet::Daubechies4);
    }
}
