//! Quickstart: simulate an aging machine, run the paper's detector online,
//! and report the warning lead time.
//!
//! Run with: `cargo run --example quickstart`

use holder_aging::prelude::*;

fn main() -> Result<()> {
    // A small machine with a brisk (128 MiB/h) heap leak so the demo
    // finishes in seconds — the machine dies in under an hour of simulated
    // time. `Scenario::aging_web_server` is the paper-scale version.
    let scenario = Scenario::tiny_aging(42, 128.0);
    println!("scenario : {}", scenario.name);
    println!(
        "machine  : {} ({} RAM + {} swap)",
        scenario.machine.name, scenario.machine.ram, scenario.machine.swap
    );

    // Online loop: step the machine; feed every monitor sample into the
    // streaming detector, exactly as a production agent would.
    let mut machine = Machine::boot(&scenario)?;
    let mut detector = HolderDimensionDetector::new(
        DetectorConfig::builder()
            .holder_radius(16)
            .holder_max_lag(4)
            .dimension_window(64)
            .dimension_stride(8)
            .baseline_windows(6)
            .build()?,
    )?;

    let mut first_alarm: Option<SimTime> = None;
    let crash = loop {
        if let Some(crash) = machine.step() {
            break crash;
        }
        if machine.now().as_hours() > 12.0 {
            println!("machine survived 12 h — raise the leak rate for a faster demo");
            return Ok(());
        }
        if let Some(sample) = machine.last_sample() {
            if let Some(alert) = detector.push(sample.available.as_f64())? {
                println!(
                    "[{}] {}: dimension {:.3} vs baseline {:.3}, mean h {:.3} (trigger: {:?})",
                    machine.now(),
                    alert.level,
                    alert.dimension,
                    alert.dimension_baseline,
                    alert.mean_holder,
                    alert.trigger,
                );
                if alert.level == AlertLevel::Alarm && first_alarm.is_none() {
                    first_alarm = Some(machine.now());
                }
            }
        }
    };

    println!("[{}] CRASH ({})", crash.time, crash.cause);
    match first_alarm {
        Some(t) => {
            let lead = crash.time - t;
            println!(
                "alarm fired {:.1} minutes before the crash — enough to rejuvenate",
                lead / 60.0
            );
        }
        None => println!("no alarm before the crash (tune the detector config)"),
    }
    Ok(())
}
