//! Golden Δα(t) regression tests: two committed fixture CSVs (one aging,
//! one healthy) with the exact spectrum-width trajectory and alarm
//! sequence the streaming pipeline must produce on them. Any drift in
//! the spectrum kernel or the Δα decision discipline — intentional
//! retuning or an accidental behaviour change — fails CI with a
//! line-level diff instead of silently shifting E17 results.
//!
//! To regenerate the fixtures after an *intentional* change:
//!
//! ```text
//! cargo test -p aging-stream --test golden_spectrum -- --ignored regenerate
//! ```
//!
//! then review the fixture diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use aging_fractal::spectrum::{SpectrumConfig, StreamingSpectrum};
use aging_stream::detector::{
    AlertDetail, DetectorSpec, SpectrumDetectorConfig, StreamingDetector,
};
use aging_stream::gate::{GateAction, SampleGate};
use aging_stream::source::{CsvReplaySource, SampleSource};
use aging_stream::GateConfig;

const ROWS: usize = 1024;
const DT: f64 = 10.0;
/// Sample index where the aging trace's step distribution turns
/// intermittent (the multifractal widening the detector must catch).
const TURN: usize = 500;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn read_fixture(name: &str) -> String {
    std::fs::read_to_string(fixture_path(name)).unwrap_or_else(|e| {
        panic!(
            "missing fixture {name} ({e}); run \
             `cargo test -p aging-stream --test golden_spectrum -- --ignored regenerate`"
        )
    })
}

/// The small spectrum tuning the detector tests use — cheap enough for a
/// 1024-sample trace, sensitive enough to alarm on it.
fn config() -> SpectrumDetectorConfig {
    SpectrumDetectorConfig {
        spectrum: SpectrumConfig {
            window: 128,
            stride: 32,
            ..SpectrumConfig::default()
        },
        skip_windows: 0,
        baseline_windows: 4,
        width_delta: 0.2,
        mad_multiplier: 4.0,
        confirm_windows: 2,
    }
}

/// Deterministic committed-bytes-style trace: a random walk whose steps
/// stay small-and-homogeneous until `turn`, then become an intermittent
/// small/large mixture — the escalating error-path texture E17 ties to
/// aging. `turn >= ROWS` yields the stationary healthy control.
fn walk_values(seed: u64, turn: usize) -> Vec<f64> {
    let mut state = seed;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut acc = 0.0;
    (0..ROWS)
        .map(|i| {
            let u = rand() - 0.5;
            let step = if i > turn && rand() < 0.08 {
                u * 400.0
            } else {
                u * 8.0
            };
            acc += step;
            acc
        })
        .collect()
}

fn aging_values() -> Vec<f64> {
    walk_values(0x51ce_b00c_5eed_f00d, TURN)
}

fn healthy_values() -> Vec<f64> {
    // Distinct seed so the control is an independent draw, not a shared
    // prefix of the aging trace.
    walk_values(0x5afe_ba5e_11fe_c0de, ROWS)
}

fn input_csv(values: &[f64]) -> String {
    let mut csv = String::from("time,committed\n");
    for (i, v) in values.iter().enumerate() {
        writeln!(csv, "{},{v}", i as f64 * DT).unwrap();
    }
    csv
}

/// Replays a source through gate + spectrum kernel + spectrum-width
/// detector and renders one row per emitted window: the exact Δα value
/// plus the alert (if any) that window produced. The kernel and the
/// wrapped detector consume the same accepted samples, so the fixture
/// pins both the Δα(t) trajectory and the alarm outcomes at once.
fn spectrum_trace(mut source: impl SampleSource) -> String {
    let cfg = config();
    let mut gate = SampleGate::new(GateConfig {
        nominal_period_secs: DT,
        max_gap_factor: 4.0,
        ..GateConfig::default()
    })
    .unwrap();
    let mut kernel = StreamingSpectrum::new(&cfg.spectrum).unwrap();
    let mut detector = StreamingDetector::new(&DetectorSpec::Spectrum(cfg)).unwrap();
    let mut out = String::from("input_index,delta_alpha,level,baseline_width\n");
    while let Some(raw) = source.next_sample().unwrap() {
        let accepted = match gate.push(raw) {
            GateAction::Accept(s) => s,
            GateAction::AcceptAfterGap(s) => {
                kernel.reset();
                detector.reset();
                s
            }
            GateAction::DropNonFinite | GateAction::DropOutOfOrder => continue,
        };
        let window = kernel.push(accepted.value).unwrap();
        let alert = detector.push(accepted.value).unwrap();
        match (window, alert) {
            (Some(w), None) => writeln!(out, "{},{},,", w.input_index, w.delta_alpha).unwrap(),
            (Some(w), Some(a)) => {
                let AlertDetail::Spectrum {
                    delta_alpha,
                    baseline_width,
                } = a.detail
                else {
                    panic!("spectrum spec must yield spectrum alerts");
                };
                assert_eq!(a.sample_index, w.input_index, "alert/window index drifted");
                assert_eq!(
                    delta_alpha.to_bits(),
                    w.delta_alpha.to_bits(),
                    "alert Δα must be the window's Δα"
                );
                writeln!(
                    out,
                    "{},{},{:?},{baseline_width}",
                    w.input_index, w.delta_alpha, a.level
                )
                .unwrap();
            }
            (None, None) => {}
            (None, Some(_)) => panic!("alert without a completed spectrum window"),
        }
    }
    out
}

/// Line-level comparison with a readable drift report.
fn assert_trace_matches(name: &str, expected: &str, actual: &str) {
    if expected == actual {
        return;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied().unwrap_or("<missing>");
        let a = act.get(i).copied().unwrap_or("<missing>");
        assert_eq!(
            e,
            a,
            "\nspectrum output drifted from golden trace `{name}` at line {}:\n  \
             expected: {e}\n  actual:   {a}\n({} expected lines, {} actual lines)\n\
             If the change is intentional, regenerate fixtures with\n  \
             cargo test -p aging-stream --test golden_spectrum -- --ignored regenerate",
            i + 1,
            exp.len(),
            act.len(),
        );
    }
    unreachable!("traces differ but all lines matched");
}

#[test]
fn fixture_inputs_are_reproducible() {
    // The committed *input* CSVs must themselves match the generators —
    // otherwise the Δα fixtures test a different trace than intended.
    assert_trace_matches(
        "spectrum_aging.csv",
        &read_fixture("spectrum_aging.csv"),
        &input_csv(&aging_values()),
    );
    assert_trace_matches(
        "spectrum_healthy.csv",
        &read_fixture("spectrum_healthy.csv"),
        &input_csv(&healthy_values()),
    );
}

#[test]
fn aging_trace_spectrum_matches_golden() {
    let source =
        CsvReplaySource::from_csv_str(&read_fixture("spectrum_aging.csv"), "time", "committed")
            .unwrap();
    let actual = spectrum_trace(source);
    assert!(
        actual.lines().any(|l| l.contains("Alarm")),
        "aging trace must reach Alarm"
    );
    assert_trace_matches(
        "spectrum_aging_expected.csv",
        &read_fixture("spectrum_aging_expected.csv"),
        &actual,
    );
}

#[test]
fn healthy_trace_spectrum_matches_golden() {
    let source =
        CsvReplaySource::from_csv_str(&read_fixture("spectrum_healthy.csv"), "time", "committed")
            .unwrap();
    let actual = spectrum_trace(source);
    assert!(
        actual.lines().count() > 1,
        "healthy trace must still emit Δα windows"
    );
    assert!(
        !actual
            .lines()
            .any(|l| l.contains("Warning") || l.contains("Alarm")),
        "healthy trace must stay quiet"
    );
    assert_trace_matches(
        "spectrum_healthy_expected.csv",
        &read_fixture("spectrum_healthy_expected.csv"),
        &actual,
    );
}

/// Writes all four fixtures. Ignored by default: run explicitly after an
/// intentional spectrum change, then review the diff.
#[test]
#[ignore = "regenerates the committed golden fixtures"]
fn regenerate() {
    let dir = fixture_path("");
    std::fs::create_dir_all(&dir).unwrap();
    let aging = input_csv(&aging_values());
    let healthy = input_csv(&healthy_values());
    let aging_trace =
        spectrum_trace(CsvReplaySource::from_csv_str(&aging, "time", "committed").unwrap());
    let healthy_trace =
        spectrum_trace(CsvReplaySource::from_csv_str(&healthy, "time", "committed").unwrap());
    std::fs::write(fixture_path("spectrum_aging.csv"), &aging).unwrap();
    std::fs::write(fixture_path("spectrum_healthy.csv"), &healthy).unwrap();
    std::fs::write(fixture_path("spectrum_aging_expected.csv"), &aging_trace).unwrap();
    std::fs::write(
        fixture_path("spectrum_healthy_expected.csv"),
        &healthy_trace,
    )
    .unwrap();
    println!(
        "regenerated fixtures in {} ({} aging windows, {} healthy windows)",
        dir.display(),
        aging_trace.lines().count() - 1,
        healthy_trace.lines().count() - 1,
    );
}
