//! Surrogate data for significance testing (Theiler et al.).
//!
//! A **phase-randomised surrogate** keeps a signal's amplitude spectrum
//! (hence its linear autocorrelation and its Hurst exponent) but scrambles
//! all phase relationships — destroying the nonlinear structure that
//! multifractality lives in. Comparing a multifractality statistic
//! (spectrum width, leader `c₂`) between a signal and its surrogates tests
//! whether the measured multifractality is real or a linear artefact:
//! exactly the control an aging analysis needs before trusting a widening
//! spectrum.

use crate::fft::{fft, ifft, Complex};
use aging_par::Pool;
use aging_timeseries::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Produces a phase-randomised surrogate of `data`.
///
/// The input is zero-padded to the next power of two internally and the
/// surrogate is truncated back, which slightly blurs the spectrum for
/// non-dyadic lengths; for exact spectral preservation use dyadic input.
///
/// # Errors
///
/// Returns [`Error::TooShort`] below 8 samples and [`Error::NonFinite`]
/// for NaN input.
///
/// # Examples
///
/// ```
/// use aging_fractal::{generate, surrogate};
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let x = generate::fgn(1024, 0.7, 1)?;
/// let s = surrogate::phase_surrogate(&x, 2)?;
/// assert_eq!(s.len(), x.len());
/// # Ok(())
/// # }
/// ```
pub fn phase_surrogate(data: &[f64], seed: u64) -> Result<Vec<f64>> {
    Error::require_len(data, 8)?;
    Error::require_finite(data)?;
    let n = data.len();
    let np = n.next_power_of_two();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut buf: Vec<Complex> = data
        .iter()
        .map(|&v| Complex::new(v, 0.0))
        .chain(std::iter::repeat(Complex::default()))
        .take(np)
        .collect();
    fft(&mut buf)?;

    // Randomise phases, preserving Hermitian symmetry so the inverse is
    // real. DC and Nyquist keep their (real) values.
    for k in 1..np / 2 {
        let amp = buf[k].norm_sqr().sqrt();
        let phi: f64 = rng.gen_range(0.0..(2.0 * std::f64::consts::PI));
        buf[k] = Complex::new(amp * phi.cos(), amp * phi.sin());
        buf[np - k] = buf[k].conj();
    }
    ifft(&mut buf)?;
    Ok(buf.into_iter().take(n).map(|c| c.re).collect())
}

/// Result of a surrogate significance test on a scalar statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateTest {
    /// Statistic on the original signal.
    pub observed: f64,
    /// Statistic on each surrogate.
    pub surrogate_values: Vec<f64>,
    /// Rank-based two-sided significance: fraction of surrogates at least
    /// as extreme as the observation (relative to the surrogate median).
    pub p_value: f64,
}

/// Runs `statistic` on `data` and on `count` phase surrogates, returning a
/// rank significance estimate. A `p_value` near 0 means the observed
/// statistic is not explained by the signal's linear structure.
///
/// # Errors
///
/// Propagates surrogate construction failures and the first statistic
/// failure; `count` must be ≥ 4.
pub fn surrogate_test(
    data: &[f64],
    count: usize,
    seed: u64,
    statistic: impl Fn(&[f64]) -> Result<f64> + Sync,
) -> Result<SurrogateTest> {
    surrogate_test_in(data, count, seed, statistic, Pool::global())
}

/// [`surrogate_test`] on an explicit pool: each surrogate replica is
/// generated and scored independently (replica `i` always uses seed
/// `seed + i`), so the ensemble is bit-identical to the sequential run for
/// any pool size.
///
/// # Errors
///
/// Same failure modes as [`surrogate_test`].
pub fn surrogate_test_in(
    data: &[f64],
    count: usize,
    seed: u64,
    statistic: impl Fn(&[f64]) -> Result<f64> + Sync,
    pool: &Pool,
) -> Result<SurrogateTest> {
    if count < 4 {
        return Err(Error::invalid("count", "must be at least 4"));
    }
    let observed = statistic(data)?;
    let surrogate_values = pool.try_map_indexed(count, |i| {
        let s = phase_surrogate(data, seed.wrapping_add(i as u64))?;
        statistic(&s)
    })?;
    let median = aging_timeseries::stats::median(&surrogate_values)?;
    let dev_obs = (observed - median).abs();
    let extreme = surrogate_values
        .iter()
        .filter(|&&v| (v - median).abs() >= dev_obs)
        .count();
    let p_value = extreme as f64 / count as f64;
    Ok(SurrogateTest {
        observed,
        surrogate_values,
        p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::spectrum::{mfdfa, MfdfaConfig};
    use aging_timeseries::stats;

    #[test]
    fn surrogate_preserves_mean_and_variance() {
        let x = generate::fgn(2048, 0.7, 1).unwrap();
        let s = phase_surrogate(&x, 2).unwrap();
        assert_eq!(s.len(), x.len());
        assert!(
            (stats::mean(&x).unwrap() - stats::mean(&s).unwrap()).abs() < 0.05,
            "means differ"
        );
        let vx = stats::variance(&x).unwrap();
        let vs = stats::variance(&s).unwrap();
        assert!(
            (vx - vs).abs() < 0.15 * vx,
            "variances differ: {vx} vs {vs}"
        );
    }

    #[test]
    fn surrogate_preserves_autocorrelation() {
        let x = generate::ar1(4096, 0.8, 3).unwrap();
        let s = phase_surrogate(&x, 4).unwrap();
        let rx = stats::autocorrelation(&x, 1).unwrap();
        let rs = stats::autocorrelation(&s, 1).unwrap();
        assert!((rx - rs).abs() < 0.1, "lag-1: {rx} vs {rs}");
    }

    #[test]
    fn surrogate_differs_from_original() {
        let x = generate::fgn(512, 0.5, 5).unwrap();
        let s = phase_surrogate(&x, 6).unwrap();
        let same = x
            .iter()
            .zip(&s)
            .filter(|(a, b)| (*a - *b).abs() < 1e-12)
            .count();
        assert!(same < x.len() / 4);
    }

    #[test]
    fn surrogates_are_seeded() {
        let x = generate::fgn(256, 0.5, 7).unwrap();
        assert_eq!(
            phase_surrogate(&x, 1).unwrap(),
            phase_surrogate(&x, 1).unwrap()
        );
        assert_ne!(
            phase_surrogate(&x, 1).unwrap(),
            phase_surrogate(&x, 2).unwrap()
        );
    }

    #[test]
    fn multifractality_of_cascade_is_significant() {
        // The cascade's spectrum width collapses under phase
        // randomisation; a monofractal's does not change much.
        let cascade = generate::binomial_cascade(12, 0.25, true, 8).unwrap();
        let width = |d: &[f64]| mfdfa(d, &MfdfaConfig::default()).map(|r| r.width());
        let test = surrogate_test(&cascade, 8, 99, width).unwrap();
        let median_surrogate = stats::median(&test.surrogate_values).unwrap();
        assert!(
            test.observed > median_surrogate + 0.3,
            "observed {} vs surrogate median {median_surrogate}",
            test.observed
        );
        assert!(test.p_value <= 0.25, "p {}", test.p_value);
    }

    #[test]
    fn guards() {
        assert!(phase_surrogate(&[1.0; 4], 0).is_err());
        let x = generate::fgn(64, 0.5, 9).unwrap();
        let mut bad = x.clone();
        bad[3] = f64::NAN;
        assert!(phase_surrogate(&bad, 0).is_err());
        assert!(surrogate_test(&x, 2, 0, |d| Ok(d[0])).is_err());
    }
}
