//! Cluster face of the `QueryRejuv` advisory: every shard of a
//! rejuv-configured cluster must answer a machine's advisory exactly as
//! a local [`RejuvController`] replay of that shard's released alarm
//! history does — routing never changes the answer, and machines that
//! never alarmed draw zero shadow restarts.

use aging_cluster::{drive_fleet, HashRing, LocalCluster};
use aging_core::baseline::TrendPredictorConfig;
use aging_memsim::{Counter, Scenario};
use aging_rejuv::{RejuvConfig, RejuvController, RejuvPolicy, RestartReason, RestartRequest};
use aging_serve::loadgen::{BatchMode, LoadgenConfig};
use aging_serve::{ServeClient, ServeConfig};
use aging_stream::detector::DetectorSpec;
use aging_stream::supervisor::{AlarmKind, CounterDetector, FleetConfig};
use aging_stream::GateConfig;

const RING_SEED: u64 = 0x5eed_0001;
const RING_VNODES: u32 = 32;

fn fleet_config() -> FleetConfig {
    let detectors = vec![CounterDetector {
        counter: Counter::AvailableBytes,
        spec: DetectorSpec::Trend(TrendPredictorConfig {
            window: 120,
            refit_every: 8,
            alarm_horizon_secs: 900.0,
            ..TrendPredictorConfig::depleting(5.0)
        }),
    }];
    let mut cfg = FleetConfig::new(detectors, 8.0 * 3600.0);
    cfg.gate = GateConfig {
        nominal_period_secs: 5.0,
        ..GateConfig::default()
    };
    cfg
}

fn rejuv_config() -> RejuvConfig {
    // Zero cooldown: a machine's single fused alarm must always grant,
    // so the per-machine grant count doubles as "did it ever alarm".
    RejuvConfig {
        policy: RejuvPolicy::AlarmTriggered,
        cooldown_secs: 0.0,
        restart_downtime_secs: 30.0,
        crash_repair_secs: 900.0,
        max_concurrent_restarts: 1,
    }
}

#[test]
fn shard_advisories_match_local_replay_of_their_histories() {
    let cfg = fleet_config();
    let rejuv = rejuv_config();
    let fleet: Vec<Scenario> = {
        let mut out: Vec<Scenario> = (0..3)
            .map(|i| Scenario::tiny_aging(0xbeef + i, 192.0))
            .collect();
        out.push(Scenario::tiny_aging(0xbeef + 3, 0.0)); // healthy control
        out
    };
    let ids: Vec<u64> = (0..fleet.len() as u64).collect();
    let ring = HashRing::new(2, RING_VNODES, RING_SEED).expect("ring");
    let mut template = ServeConfig::from_fleet(&cfg);
    template.rejuv = Some(rejuv);
    let cluster = LocalCluster::launch(&ring, &template, &ids, None).expect("launch cluster");

    let drive = drive_fleet(
        &ring,
        cluster.directory(),
        &fleet,
        &ids,
        cfg.horizon_secs,
        &LoadgenConfig {
            connections: 2,
            batch_records: 32,
            rate_records_per_sec: 0.0,
            poll_alarms_ms: 0,
            counters: vec![Counter::AvailableBytes],
            mode: BatchMode::Record,
        },
    )
    .expect("fleet drive");
    assert!(drive.records_sent() > 0);

    let mut alarmed_machines = 0usize;
    for (shard, shard_report) in drive.shards.iter().enumerate() {
        let Some(shard_report) = shard_report else {
            continue;
        };
        let mut client =
            ServeClient::connect(cluster.addr(shard), "rejuv-prober").expect("connect shard");
        for &machine_id in ids.iter().filter(|&&m| ring.shard_of(m) == shard as u64) {
            // The one true answer: the shard's own released history,
            // replayed through a local controller.
            let mut controller = RejuvController::new(rejuv, 1).expect("valid config");
            for event in shard_report
                .alarms
                .iter()
                .filter(|e| e.machine_id == machine_id)
            {
                if matches!(event.kind, AlarmKind::MachineAlarm { .. }) {
                    let _ = controller.decide(&RestartRequest {
                        machine_index: 0,
                        time_secs: event.time_secs,
                        reason: RestartReason::Alarm,
                    });
                }
            }
            let advice = client
                .query_rejuv(machine_id)
                .expect("rejuv query")
                .unwrap_or_else(|| panic!("shard {shard} does not know machine {machine_id}"));
            assert_eq!(advice.policy, RejuvPolicy::AlarmTriggered.code());
            assert_eq!(
                advice.restarts,
                controller.granted(),
                "machine {machine_id} on shard {shard}"
            );
            assert_eq!(
                advice.denied,
                controller.denied_cooldown() + controller.denied_budget(),
                "machine {machine_id} on shard {shard}"
            );
            assert_eq!(advice.last_restart_secs, controller.last_restart_secs(0));
            if advice.restarts > 0 {
                alarmed_machines += 1;
            }
        }
        client.bye().expect("bye");
    }
    assert!(
        alarmed_machines >= 3,
        "every leaky machine must draw a shadow restart (got {alarmed_machines})"
    );

    for (shard, outcome) in cluster.shutdown().into_iter().enumerate() {
        let outcome = outcome.expect("all shards live");
        assert_eq!(outcome.wire.session_panics, 0, "shard {shard}");
        assert_eq!(outcome.wire.quarantined, 0, "shard {shard}");
        assert_eq!(outcome.wire.malformed_frames, 0, "shard {shard}");
    }
}
