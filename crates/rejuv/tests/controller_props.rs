//! Property tests for the restart arbiter's safety invariants:
//!
//! 1. **Cooldown** — no planned restart is granted within
//!    `cooldown_secs` of the same machine's previous granted restart
//!    (crash reboots reset the epoch but are themselves exempt);
//! 2. **Budget** — at every grant instant, the number of still-running
//!    restarts/repairs never exceeds `max_concurrent_restarts`;
//! 3. **Determinism** — replaying the identical request sequence yields
//!    a bit-identical decision log;
//! 4. **Accounting** — the granted/denied counters reconcile exactly
//!    with the decision log.

use aging_rejuv::{RejuvConfig, RejuvController, RejuvPolicy, RestartReason, RestartRequest};
use proptest::prelude::*;

/// Decodes parallel scalar vectors into a time-ordered request sequence
/// (the vendored proptest has no tuple or enum strategies).
fn build_requests(
    machines: usize,
    picks: &[usize],
    steps: &[f64],
    reasons: &[usize],
) -> Vec<RestartRequest> {
    let mut t = 0.0f64;
    picks
        .iter()
        .zip(steps)
        .zip(reasons)
        .map(|((&pick, &step), &reason)| {
            t += step;
            RestartRequest {
                machine_index: pick % machines,
                time_secs: t,
                reason: match reason % 4 {
                    0 | 1 => RestartReason::Alarm, // keep alarms dominant
                    2 => RestartReason::Periodic,
                    _ => RestartReason::CrashReboot,
                },
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn cooldown_budget_and_determinism_hold(
        machines in 1usize..6,
        budget in 1usize..4,
        cooldown in 10.0f64..500.0,
        picks in prop::collection::vec(0usize..6, 1..=120),
        steps in prop::collection::vec(0.5f64..200.0, 120..=120),
        reasons in prop::collection::vec(0usize..4, 120..=120),
    ) {
        let config = RejuvConfig {
            policy: RejuvPolicy::AlarmTriggered,
            cooldown_secs: cooldown,
            restart_downtime_secs: 15.0,
            crash_repair_secs: 120.0,
            max_concurrent_restarts: budget,
        };
        let requests = build_requests(machines, &picks, &steps, &reasons);

        let run = || {
            let mut c = RejuvController::new(config, machines).unwrap();
            for r in &requests {
                c.decide(r);
            }
            c
        };
        let c = run();
        let decisions = c.decisions();

        // 1. Cooldown: planned grants sit outside the cooldown window of
        //    the machine's previous grant (boot epoch included).
        let mut last_grant = vec![0.0f64; machines];
        // 2. Budget: independently replay the inflight ledger.
        let mut inflight: Vec<f64> = Vec::new();
        for d in decisions {
            if d.granted {
                inflight.retain(|&end| end > d.time_secs);
                if d.reason != RestartReason::CrashReboot {
                    prop_assert!(
                        d.time_secs - last_grant[d.machine_index] >= config.cooldown_secs,
                        "granted {:?} within cooldown of last grant at {}",
                        d,
                        last_grant[d.machine_index],
                    );
                    prop_assert!(
                        inflight.len() < budget,
                        "granted {d:?} with a full budget ({} in flight)",
                        inflight.len(),
                    );
                }
                last_grant[d.machine_index] = d.time_secs;
                inflight.push(d.time_secs + d.downtime_secs);
            }
        }

        // 3. Determinism: decisions are a pure function of the requests.
        let again = run();
        prop_assert_eq!(decisions, again.decisions());

        // 4. Accounting reconciles exactly.
        let granted = decisions.iter().filter(|d| d.granted).count() as u64;
        prop_assert_eq!(c.granted(), granted);
        prop_assert_eq!(
            c.granted() + c.denied_cooldown() + c.denied_budget(),
            decisions.len() as u64
        );
        // Crash reboots are never denied.
        prop_assert!(decisions
            .iter()
            .filter(|d| d.reason == RestartReason::CrashReboot)
            .all(|d| d.granted));
    }
}
