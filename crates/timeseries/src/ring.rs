//! Fixed-capacity ring buffer with O(1) windowed running statistics.
//!
//! [`RingBuffer`] is the sample store underlying the streaming subsystem:
//! every incremental kernel (`aging-fractal`'s streaming estimators, the
//! streaming Mann–Kendall baseline, `aging-stream`'s detectors) keeps its
//! trailing window in one of these instead of an unbounded `Vec`, which is
//! what bounds the whole online pipeline's memory.
//!
//! Running first/second moments are maintained incrementally and rebuilt
//! exactly once per buffer generation (every `capacity` pushes once full),
//! so `mean`/`variance` stay within a few ULPs of the batch formulas in
//! [`crate::stats`] no matter how long the stream runs. Min/max are tracked
//! with monotonic deques, giving O(1) amortised pushes.
//!
//! # Examples
//!
//! ```
//! use aging_timeseries::ring::RingBuffer;
//!
//! # fn main() -> Result<(), aging_timeseries::Error> {
//! let mut ring = RingBuffer::new(3)?;
//! for v in [1.0, 2.0, 3.0, 4.0] {
//!     ring.push(v);
//! }
//! assert_eq!(ring.to_vec(), vec![2.0, 3.0, 4.0]); // 1.0 evicted
//! assert_eq!(ring.mean()?, 3.0);
//! assert_eq!(ring.min()?, 2.0);
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;

use crate::error::{Error, Result};

/// A fixed-capacity FIFO of `f64` samples with windowed running statistics.
///
/// Pushing beyond capacity evicts the oldest sample. All statistics are
/// over the samples currently held (the trailing window of the stream).
#[derive(Debug, Clone)]
pub struct RingBuffer {
    buf: Vec<f64>,
    capacity: usize,
    /// Index of the logically-oldest element once the buffer has wrapped.
    head: usize,
    /// Total samples pushed over the buffer's lifetime.
    pushed: u64,
    /// Running sum of the held samples.
    sum: f64,
    /// Running sum of squares of the held samples.
    sum_sq: f64,
    /// Pushes since the running sums were last rebuilt exactly.
    since_rebuild: usize,
    /// Monotonically decreasing (value) deque of (push-id, value): front is
    /// the current maximum.
    max_deque: VecDeque<(u64, f64)>,
    /// Monotonically increasing deque: front is the current minimum.
    min_deque: VecDeque<(u64, f64)>,
}

impl RingBuffer {
    /// Creates an empty ring holding at most `capacity` samples.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(Error::invalid("capacity", "must be positive"));
        }
        Ok(RingBuffer {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
            sum: 0.0,
            sum_sq: 0.0,
            since_rebuild: 0,
            // Each live push id appears in a deque at most once, so
            // `capacity` entries is a hard bound — reserving it up front
            // keeps every steady-state push allocation-free.
            max_deque: VecDeque::with_capacity(capacity),
            min_deque: VecDeque::with_capacity(capacity),
        })
    }

    /// Maximum number of samples held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no samples.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the ring has reached capacity (pushes now evict).
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Total samples pushed over the ring's lifetime (≥ `len`).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Appends a sample, evicting the oldest if full. Returns the evicted
    /// sample, if any.
    pub fn push(&mut self, value: f64) -> Option<f64> {
        let evicted = if self.buf.len() < self.capacity {
            self.buf.push(value);
            None
        } else {
            let old = std::mem::replace(&mut self.buf[self.head], value);
            self.head = (self.head + 1) % self.capacity;
            Some(old)
        };
        self.account(value, evicted);
        evicted
    }

    /// Appends a column of samples, evicting as needed; state after the
    /// call is bit-identical to pushing each element with
    /// [`RingBuffer::push`] (same float accumulation order, same rebuild
    /// cadence, same deque contents).
    ///
    /// The loop is split into a fill phase and a steady-state phase so the
    /// hot (full-ring) path runs without the capacity branch per element.
    pub fn push_slice(&mut self, values: &[f64]) {
        let mut rest = values;
        if self.buf.len() < self.capacity {
            let take = rest.len().min(self.capacity - self.buf.len());
            for &value in &rest[..take] {
                self.buf.push(value);
                self.account(value, None);
            }
            rest = &rest[take..];
        }
        for &value in rest {
            let old = std::mem::replace(&mut self.buf[self.head], value);
            self.head = (self.head + 1) % self.capacity;
            self.account(value, Some(old));
        }
    }

    /// Per-sample bookkeeping shared by [`RingBuffer::push`] and
    /// [`RingBuffer::push_slice`]: runs after the buffer insert, in the
    /// exact order the bit-identity contract pins down.
    #[inline]
    fn account(&mut self, value: f64, evicted: Option<f64>) {
        let id = self.pushed;
        self.pushed += 1;

        // Running moments: subtract the evicted term, add the new one, and
        // rebuild exactly once per generation to stop drift accumulating.
        self.sum += value;
        self.sum_sq += value * value;
        if let Some(old) = evicted {
            self.sum -= old;
            self.sum_sq -= old * old;
        }
        self.since_rebuild += 1;
        if self.since_rebuild >= self.capacity {
            self.rebuild_sums();
        }

        // Monotonic deques keyed by push id; ids ≤ `pushed - len - 1` have
        // been evicted from the window.
        let oldest_live = self.pushed - self.buf.len() as u64;
        while self
            .max_deque
            .front()
            .is_some_and(|&(i, _)| i < oldest_live)
        {
            self.max_deque.pop_front();
        }
        while self
            .min_deque
            .front()
            .is_some_and(|&(i, _)| i < oldest_live)
        {
            self.min_deque.pop_front();
        }
        while self.max_deque.back().is_some_and(|&(_, v)| v <= value) {
            self.max_deque.pop_back();
        }
        self.max_deque.push_back((id, value));
        while self.min_deque.back().is_some_and(|&(_, v)| v >= value) {
            self.min_deque.pop_back();
        }
        self.min_deque.push_back((id, value));
    }

    fn rebuild_sums(&mut self) {
        self.sum = self.buf.iter().sum();
        self.sum_sq = self.buf.iter().map(|v| v * v).sum();
        self.since_rebuild = 0;
    }

    /// The two contiguous slices of the window in logical (oldest-first)
    /// order. The second slice is empty until the ring wraps.
    pub fn as_slices(&self) -> (&[f64], &[f64]) {
        let (tail, front) = self.buf.split_at(self.head);
        (front, tail)
    }

    /// Copies the window, oldest first, into `out` (cleared first).
    ///
    /// This is the zero-allocation path the streaming kernels use to hand
    /// a contiguous window to batch estimators.
    pub fn copy_to(&self, out: &mut Vec<f64>) {
        out.clear();
        let (a, b) = self.as_slices();
        out.extend_from_slice(a);
        out.extend_from_slice(b);
    }

    /// The window as a freshly-allocated `Vec`, oldest first.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.buf.len());
        self.copy_to(&mut out);
        out
    }

    /// Iterates the held samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        let (a, b) = self.as_slices();
        a.iter().chain(b.iter()).copied()
    }

    /// The most recently pushed sample.
    pub fn last(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else if self.head == 0 {
            self.buf.last().copied()
        } else {
            Some(self.buf[self.head - 1])
        }
    }

    /// The logically `i`-th sample (0 = oldest).
    pub fn get(&self, i: usize) -> Option<f64> {
        if i >= self.buf.len() {
            return None;
        }
        Some(self.buf[(self.head + i) % self.buf.len().max(1)])
    }

    /// Mean of the held samples (matches [`crate::stats::mean`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] on an empty ring.
    pub fn mean(&self) -> Result<f64> {
        if self.buf.is_empty() {
            return Err(Error::Empty);
        }
        Ok(self.sum / self.buf.len() as f64)
    }

    /// Unbiased sample variance (matches [`crate::stats::variance`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooShort`] with fewer than two samples.
    pub fn variance(&self) -> Result<f64> {
        let n = self.buf.len();
        if n < 2 {
            return Err(Error::TooShort {
                required: 2,
                actual: n,
            });
        }
        let mean = self.sum / n as f64;
        // sum_sq − n·mean² in one pass; clamp tiny negative round-off.
        let var = (self.sum_sq - self.sum * mean) / (n - 1) as f64;
        Ok(var.max(0.0))
    }

    /// Sample standard deviation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RingBuffer::variance`].
    pub fn std_dev(&self) -> Result<f64> {
        Ok(self.variance()?.sqrt())
    }

    /// Minimum of the held samples, O(1).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] on an empty ring.
    pub fn min(&self) -> Result<f64> {
        self.min_deque.front().map(|&(_, v)| v).ok_or(Error::Empty)
    }

    /// Maximum of the held samples, O(1).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] on an empty ring.
    pub fn max(&self) -> Result<f64> {
        self.max_deque.front().map(|&(_, v)| v).ok_or(Error::Empty)
    }

    /// Serializes the complete dynamic state (window contents, head
    /// position, lifetime push count, running moments, rebuild phase and
    /// both extremum deques) with [`crate::persist`].
    ///
    /// Capacity is written too, but only as a restore-time cross-check —
    /// configuration is re-supplied by the caller, never recovered from
    /// the blob. Together with [`RingBuffer::restore_state`] this makes a
    /// restored ring *bit-identical*: the rebuild cadence and incremental
    /// `sum`/`sum_sq` round-off resume exactly where the snapshot left
    /// off.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use crate::persist::{put_f64, put_u64, put_usize};
        put_usize(out, self.capacity);
        put_usize(out, self.head);
        put_u64(out, self.pushed);
        put_f64(out, self.sum);
        put_f64(out, self.sum_sq);
        put_usize(out, self.since_rebuild);
        put_usize(out, self.buf.len());
        for &v in &self.buf {
            put_f64(out, v);
        }
        for dq in [&self.max_deque, &self.min_deque] {
            put_usize(out, dq.len());
            for &(id, v) in dq {
                put_u64(out, id);
                put_f64(out, v);
            }
        }
    }

    /// Restores state written by [`RingBuffer::encode_state`] into a
    /// freshly-constructed ring of the same capacity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the blob is truncated, the
    /// recorded capacity disagrees with this ring's, or any structural
    /// invariant (head/window/deque bounds) is violated.
    pub fn restore_state(&mut self, r: &mut crate::persist::Reader<'_>) -> Result<()> {
        let capacity = r.usize_()?;
        if capacity != self.capacity {
            return Err(Error::invalid(
                "persist",
                format!("ring capacity {} != snapshot {capacity}", self.capacity),
            ));
        }
        let head = r.usize_()?;
        let pushed = r.u64()?;
        let sum = r.f64()?;
        let sum_sq = r.f64()?;
        let since_rebuild = r.usize_()?;
        let len = r.usize_()?;
        if len > capacity || head >= capacity.max(1) || (len < capacity && head != 0) {
            return Err(Error::invalid("persist", "ring geometry corrupt"));
        }
        if (pushed as u128) < len as u128 {
            return Err(Error::invalid("persist", "ring pushed < len"));
        }
        let mut buf = Vec::with_capacity(capacity);
        for _ in 0..len {
            buf.push(r.f64()?);
        }
        // Mirror `new`: full-capacity reservation keeps the restored
        // ring's steady-state pushes allocation-free as well.
        let mut deques: [VecDeque<(u64, f64)>; 2] = [
            VecDeque::with_capacity(capacity),
            VecDeque::with_capacity(capacity),
        ];
        for dq in &mut deques {
            let n = r.usize_()?;
            if n > len {
                return Err(Error::invalid("persist", "ring deque longer than window"));
            }
            for _ in 0..n {
                let id = r.u64()?;
                let v = r.f64()?;
                dq.push_back((id, v));
            }
        }
        let [max_deque, min_deque] = deques;
        self.buf = buf;
        self.head = head;
        self.pushed = pushed;
        self.sum = sum;
        self.sum_sq = sum_sq;
        self.since_rebuild = since_rebuild;
        self.max_deque = max_deque;
        self.min_deque = min_deque;
        Ok(())
    }

    /// Removes all samples; capacity and lifetime counters are retained.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.sum = 0.0;
        self.sum_sq = 0.0;
        self.since_rebuild = 0;
        self.max_deque.clear();
        self.min_deque.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn rejects_zero_capacity() {
        assert!(RingBuffer::new(0).is_err());
    }

    #[test]
    fn fifo_eviction_order() {
        let mut ring = RingBuffer::new(3).unwrap();
        assert_eq!(ring.push(1.0), None);
        assert_eq!(ring.push(2.0), None);
        assert_eq!(ring.push(3.0), None);
        assert!(ring.is_full());
        assert_eq!(ring.push(4.0), Some(1.0));
        assert_eq!(ring.push(5.0), Some(2.0));
        assert_eq!(ring.to_vec(), vec![3.0, 4.0, 5.0]);
        assert_eq!(ring.last(), Some(5.0));
        assert_eq!(ring.get(0), Some(3.0));
        assert_eq!(ring.get(2), Some(5.0));
        assert_eq!(ring.get(3), None);
        assert_eq!(ring.pushed(), 5);
    }

    #[test]
    fn slices_concatenate_to_window() {
        let mut ring = RingBuffer::new(4).unwrap();
        for v in 0..7 {
            ring.push(v as f64);
        }
        let (a, b) = ring.as_slices();
        let joined: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(joined, vec![3.0, 4.0, 5.0, 6.0]);
        assert_eq!(ring.iter().collect::<Vec<_>>(), joined);
    }

    #[test]
    fn push_slice_matches_push_bitwise() {
        // Irregular values (including repeats) across several rebuild
        // generations; encode_state covers buf/head/pushed/sums/
        // since_rebuild/deques, so byte equality is full-state equality.
        let values: Vec<f64> = (0..157u64)
            .map(|i| ((i.wrapping_mul(2654435761) % 997) as f64) * 0.3125 - 150.0)
            .collect();
        for chunk in [1usize, 2, 7, 64] {
            let mut looped = RingBuffer::new(5).unwrap();
            let mut sliced = RingBuffer::new(5).unwrap();
            for block in values.chunks(chunk) {
                for &v in block {
                    looped.push(v);
                }
                sliced.push_slice(block);
                let mut a = Vec::new();
                let mut b = Vec::new();
                looped.encode_state(&mut a);
                sliced.encode_state(&mut b);
                assert_eq!(a, b, "chunk={chunk}");
            }
        }
    }

    #[test]
    fn stats_match_batch_formulas_after_wrapping() {
        let mut ring = RingBuffer::new(16).unwrap();
        // Push far past capacity so sums are rebuilt several times.
        for i in 0..1000 {
            ring.push(((i * 37) % 101) as f64 - 50.0);
        }
        let window = ring.to_vec();
        assert!((ring.mean().unwrap() - stats::mean(&window).unwrap()).abs() < 1e-9);
        assert!((ring.variance().unwrap() - stats::variance(&window).unwrap()).abs() < 1e-6);
        assert_eq!(ring.min().unwrap(), stats::min(&window).unwrap());
        assert_eq!(ring.max().unwrap(), stats::max(&window).unwrap());
    }

    #[test]
    fn extremes_track_evictions() {
        let mut ring = RingBuffer::new(3).unwrap();
        ring.push(9.0);
        ring.push(1.0);
        ring.push(2.0);
        assert_eq!(ring.max().unwrap(), 9.0);
        ring.push(3.0); // evicts 9.0
        assert_eq!(ring.max().unwrap(), 3.0);
        assert_eq!(ring.min().unwrap(), 1.0);
        ring.push(0.5); // evicts 1.0
        ring.push(0.7); // evicts 2.0
        assert_eq!(ring.min().unwrap(), 0.5);
        assert_eq!(ring.max().unwrap(), 3.0);
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        let mut ring = RingBuffer::new(7).unwrap();
        for i in 0..23 {
            ring.push(((i * 31) % 17) as f64 * 0.1 - 0.5);
        }
        let mut blob = Vec::new();
        ring.encode_state(&mut blob);
        let mut restored = RingBuffer::new(7).unwrap();
        let mut r = crate::persist::Reader::new(&blob);
        restored.restore_state(&mut r).unwrap();
        r.finish().unwrap();

        // Continue both with the same suffix: every statistic must agree
        // to the bit, including incremental round-off in the sums.
        for i in 0..40 {
            let v = ((i * 13) % 29) as f64 * 0.07;
            ring.push(v);
            restored.push(v);
            assert_eq!(
                ring.mean().unwrap().to_bits(),
                restored.mean().unwrap().to_bits()
            );
            assert_eq!(
                ring.variance().unwrap().to_bits(),
                restored.variance().unwrap().to_bits()
            );
            assert_eq!(ring.min().unwrap(), restored.min().unwrap());
            assert_eq!(ring.max().unwrap(), restored.max().unwrap());
            assert_eq!(ring.to_vec(), restored.to_vec());
            assert_eq!(ring.pushed(), restored.pushed());
        }
    }

    #[test]
    fn restore_rejects_capacity_mismatch_and_corruption() {
        let mut ring = RingBuffer::new(4).unwrap();
        for v in 0..9 {
            ring.push(v as f64);
        }
        let mut blob = Vec::new();
        ring.encode_state(&mut blob);

        let mut wrong = RingBuffer::new(5).unwrap();
        let mut r = crate::persist::Reader::new(&blob);
        assert!(wrong.restore_state(&mut r).is_err());

        let mut same = RingBuffer::new(4).unwrap();
        let mut r = crate::persist::Reader::new(&blob[..blob.len() - 3]);
        assert!(same.restore_state(&mut r).is_err(), "truncated blob");
        // The failed restore must not have corrupted the target.
        same.push(1.0);
        assert_eq!(same.len(), 1);
    }

    #[test]
    fn clear_resets_window_not_lifetime() {
        let mut ring = RingBuffer::new(2).unwrap();
        ring.push(1.0);
        ring.push(2.0);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.pushed(), 2);
        assert!(ring.mean().is_err());
        ring.push(7.0);
        assert_eq!(ring.mean().unwrap(), 7.0);
    }
}
