//! Offline vendored mini property-testing harness exposing the subset of
//! the [`proptest`](https://docs.rs/proptest) surface this workspace uses:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! - [`Strategy`] implemented for numeric ranges,
//!   `prop::collection::vec` and `prop::sample::select`,
//! - [`ProptestConfig::with_cases`].
//!
//! Unlike upstream proptest there is **no shrinking**: each test runs a
//! deterministic, seeded sequence of cases (seeded from the test's module
//! path and name), so failures reproduce exactly across runs.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps offline CI fast while still
        // exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from a test identifier (module path + name),
    /// so every test gets a distinct but reproducible stream.
    pub fn for_test(id: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in id.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform choice from a fixed set.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Builds a strategy that picks uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.0.gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

/// The `proptest::prelude` equivalent.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};

    /// The `prop` namespace (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __run = move || {
                        let _ = __case;
                        $body
                    };
                    __run();
                }
            }
        )*
    };
}

/// Asserts a property-test condition (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_test() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let s = 0.0f64..1.0;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    proptest! {
        #[test]
        fn vec_lengths_respect_bounds(xs in prop::collection::vec(-1.0f64..1.0, 3..10)) {
            prop_assert!(xs.len() >= 3 && xs.len() < 10);
            for x in &xs {
                prop_assert!((-1.0..1.0).contains(x), "{x}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn select_draws_members(w in prop::sample::select(vec![2u64, 4, 8])) {
            prop_assert!(w == 2 || w == 4 || w == 8);
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n < 100); // always holds
            prop_assert_eq!(n, n);
        }
    }
}
