//! Wavelet leaders.
//!
//! The wavelet leader `ℓ(j, k)` is the supremum of the (L¹-normalised)
//! wavelet coefficient magnitudes over the dyadic interval `λ(j,k)` **and
//! its two neighbours**, taken across all finer-or-equal scales. Leaders
//! are the modern basis for local-regularity and multifractal estimation
//! (Jaffard; Wendt, Abry & Jaffard): for a signal with Hölder exponent `h`
//! at `t`, leaders decay as `ℓ_j(t) ≍ 2^{j h}` when the scale `2^j → 0`.

use crate::dwt::{dwt, Decomposition};
use crate::filters::Wavelet;
use aging_timeseries::{Error, Result};

/// Wavelet leaders of a signal, one band per analysed level.
///
/// Level `j` (1-based, 1 = finest) holds `n / 2^j` leaders; the leader for
/// an arbitrary time index `t` at level `j` lives at position `t >> j`.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletLeaders {
    levels: Vec<Vec<f64>>,
}

impl WaveletLeaders {
    /// Computes leaders from a DWT decomposition.
    ///
    /// Coefficients are first L¹-normalised (`c(j,k) = 2^{−j/2} d(j,k)`),
    /// then the within-tree supremum `L(j,k) = max(|c(j,k)|, L(j−1,2k),
    /// L(j−1,2k+1))` is propagated from fine to coarse, and finally each
    /// leader takes the maximum over its 3-neighbourhood (periodic wrap).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when the decomposition has no levels.
    pub fn from_decomposition(dec: &Decomposition) -> Result<Self> {
        if dec.levels() == 0 {
            return Err(Error::Empty);
        }
        // Within-tree suprema, fine → coarse.
        let mut tree: Vec<Vec<f64>> = Vec::with_capacity(dec.levels());
        for j in 1..=dec.levels() {
            let norm = 2.0_f64.powf(-(j as f64) / 2.0);
            let band: Vec<f64> = dec
                .detail(j)
                .iter()
                .enumerate()
                .map(|(k, &d)| {
                    let own = (norm * d).abs();
                    if j == 1 {
                        own
                    } else {
                        let prev = &tree[j - 2];
                        // Children of (j,k) at level j-1 are 2k and 2k+1.
                        let c0 = prev.get(2 * k).copied().unwrap_or(0.0);
                        let c1 = prev.get(2 * k + 1).copied().unwrap_or(0.0);
                        own.max(c0).max(c1)
                    }
                })
                .collect();
            tree.push(band);
        }
        // 3-neighbourhood maxima with periodic wrap.
        let levels = tree
            .iter()
            .map(|band| {
                let m = band.len();
                (0..m)
                    .map(|k| {
                        let left = band[(k + m - 1) % m];
                        let right = band[(k + 1) % m];
                        band[k].max(left).max(right)
                    })
                    .collect()
            })
            .collect();
        Ok(WaveletLeaders { levels })
    }

    /// Convenience: DWT + leaders in one call. The signal is truncated to
    /// the largest dyadic-compatible prefix for `levels`.
    ///
    /// # Errors
    ///
    /// Propagates DWT failures (short signal, NaN input, bad level count).
    pub fn compute(signal: &[f64], wavelet: Wavelet, levels: usize) -> Result<Self> {
        let prefix = crate::dwt::dyadic_prefix(signal, levels)?;
        let dec = dwt(prefix, wavelet, levels)?;
        Self::from_decomposition(&dec)
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The leader band at `level` (1-based).
    ///
    /// # Panics
    ///
    /// Panics when `level` is 0 or exceeds [`WaveletLeaders::levels`].
    pub fn band(&self, level: usize) -> &[f64] {
        assert!(
            level >= 1 && level <= self.levels.len(),
            "level {level} out of range 1..={}",
            self.levels.len()
        );
        &self.levels[level - 1]
    }

    /// Leader at `level` covering time index `t` of the analysed signal.
    ///
    /// # Panics
    ///
    /// Panics when `level` is out of range; `t` beyond the analysed prefix
    /// clamps to the final leader.
    pub fn at_time(&self, level: usize, t: usize) -> f64 {
        let band = self.band(level);
        let k = (t >> level).min(band.len().saturating_sub(1));
        band[k]
    }

    /// The per-level leaders above time index `t`: `(level, leader)` pairs
    /// for levels `1..=levels`, suitable for a log–log regression of
    /// `log2 ℓ` against level.
    pub fn column_at_time(&self, t: usize) -> Vec<(usize, f64)> {
        (1..=self.levels())
            .map(|j| (j, self.at_time(j, t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cusp_signal(n: usize, h: f64, t0: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 - t0 as f64).abs() / n as f64).powf(h))
            .collect()
    }

    #[test]
    fn leaders_nonnegative() {
        let signal: Vec<f64> = (0..128).map(|i| (i as f64 * 0.37).sin()).collect();
        let lead = WaveletLeaders::compute(&signal, Wavelet::Daubechies4, 4).unwrap();
        for j in 1..=lead.levels() {
            assert!(lead.band(j).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn leaders_monotone_in_scale_at_fixed_time() {
        // The coarse 3-neighbourhood covers the fine one, so leaders can
        // only grow with the level at a fixed time position.
        let signal: Vec<f64> = (0..256)
            .map(|i| ((i * 37 + 11) % 101) as f64 / 101.0)
            .collect();
        let lead = WaveletLeaders::compute(&signal, Wavelet::Haar, 5).unwrap();
        for t in (0..256).step_by(13) {
            for j in 1..lead.levels() {
                assert!(
                    lead.at_time(j + 1, t) >= lead.at_time(j, t) - 1e-12,
                    "t={t} j={j}"
                );
            }
        }
    }

    #[test]
    fn band_sizes_halve() {
        let signal = vec![1.0; 64];
        let lead = WaveletLeaders::compute(&signal, Wavelet::Haar, 3).unwrap();
        assert_eq!(lead.band(1).len(), 32);
        assert_eq!(lead.band(2).len(), 16);
        assert_eq!(lead.band(3).len(), 8);
    }

    #[test]
    fn smooth_region_has_smaller_leaders_than_cusp() {
        // |t - t0|^0.4 cusp at the centre: leaders near the cusp dominate
        // leaders far away at fine scales.
        let n = 512;
        let signal = cusp_signal(n, 0.4, n / 2);
        let lead = WaveletLeaders::compute(&signal, Wavelet::Daubechies6, 5).unwrap();
        let near = lead.at_time(1, n / 2);
        let far = lead.at_time(1, n / 8);
        assert!(near > far, "near {near} far {far}");
    }

    /// Weierstrass-type series: uniform Hölder exponent `h` at every point
    /// and every scale — the clean ground truth for decay-rate tests
    /// (a discretised pure cusp is pathological: the finest scales only see
    /// the sample-resolution kink).
    fn weierstrass(n: usize, h: f64) -> Vec<f64> {
        let octaves = (n as f64).log2() as usize;
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (1..=octaves)
                    .map(|k| {
                        let freq = (1u64 << k) as f64;
                        let phase = 0.7 * k as f64; // deterministic de-phasing
                        freq.powf(-h) * (2.0 * std::f64::consts::PI * freq * t + phase).sin()
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn leader_decay_tracks_holder_exponent() {
        // For a Weierstrass series of exponent h, log2 ℓ_j grows ≈ h per
        // level at every position.
        let n = 16384;
        for &h in &[0.3, 0.6] {
            let signal = weierstrass(n, h);
            let lead = WaveletLeaders::compute(&signal, Wavelet::Daubechies6, 10).unwrap();
            let col = lead.column_at_time(n / 2);
            // Regress log2 leader on level over interior scales.
            let pts: Vec<(f64, f64)> = col
                .iter()
                .filter(|&&(j, l)| (2..=9).contains(&j) && l > 0.0)
                .map(|&(j, l)| (j as f64, l.log2()))
                .collect();
            assert!(pts.len() >= 4);
            let nf = pts.len() as f64;
            let mx = pts.iter().map(|p| p.0).sum::<f64>() / nf;
            let my = pts.iter().map(|p| p.1).sum::<f64>() / nf;
            let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
            let sxx: f64 = pts.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
            let slope = sxy / sxx;
            assert!((slope - h).abs() < 0.25, "h={h}: estimated slope {slope}");
        }
    }

    #[test]
    fn column_at_time_spans_levels() {
        let signal: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let lead = WaveletLeaders::compute(&signal, Wavelet::Haar, 3).unwrap();
        let col = lead.column_at_time(10);
        assert_eq!(col.len(), 3);
        assert_eq!(col[0].0, 1);
        assert_eq!(col[2].0, 3);
    }

    #[test]
    fn at_time_clamps_beyond_prefix() {
        let signal: Vec<f64> = (0..70).map(|i| i as f64).collect(); // prefix 64
        let lead = WaveletLeaders::compute(&signal, Wavelet::Haar, 3).unwrap();
        // t = 69 is beyond the 64-sample prefix; should clamp, not panic.
        let _ = lead.at_time(1, 69);
    }

    #[test]
    fn empty_decomposition_rejected() {
        // dwt() cannot produce zero levels, so exercise the error path via
        // compute on a too-short signal.
        assert!(WaveletLeaders::compute(&[1.0], Wavelet::Haar, 1).is_err());
    }
}
