//! Fleet monitoring under fire: the same supervisor as the
//! `streaming_fleet` example, but every sample stream passes through the
//! `aging-chaos` fault injectors first — NaN bursts, stale replays, clock
//! steps and skew, value spikes, counter wraps and feed stalls. The run
//! then repeats clean, and the differential harness checks the robustness
//! contract: no panic, exact sample reconciliation, watermark-ordered
//! alarms, and bounded loss of crash-warning lead time.
//!
//! Run with: `cargo run --release --example chaos_fleet`

use holder_aging::prelude::*;

fn main() -> Result<()> {
    // A small mixed fleet: aggressively-leaking tiny boxes (they crash
    // inside the horizon) plus healthy controls that must stay silent
    // even under injection.
    let mut fleet = Vec::new();
    for i in 0..6u64 {
        fleet.push(Scenario::tiny_aging(1000 + i, 192.0 + 32.0 * i as f64));
    }
    for i in 0..4u64 {
        fleet.push(Scenario::tiny_aging(2000 + i, 0.0));
    }

    let dt = 5.0;
    let detectors = vec![CounterDetector {
        counter: Counter::AvailableBytes,
        spec: DetectorSpec::Trend(TrendPredictorConfig {
            window: 120,
            refit_every: 8,
            alarm_horizon_secs: 900.0,
            ..TrendPredictorConfig::depleting(dt)
        }),
    }];

    let mut config = FleetConfig::new(detectors, 8.0 * 3600.0);
    config.gate.nominal_period_secs = dt;
    // Quarantine: a burst of 8+ consecutive bad samples degrades the
    // stream and forces a detector reset on recovery, instead of the
    // detector silently bridging the hole.
    config.gate.quarantine_after = 8;
    config.status_every_secs = 3600.0;
    config.shards = 2;

    // The kitchen-sink plan: every injector armed at once, seeded so the
    // whole hostile run replays bit-identically. Pass a different seed as
    // the first argument to replay a different attack.
    let seed = std::env::args()
        .nth(1)
        .map_or(Ok(42), |s| s.parse::<u64>())
        .map_err(|e| Error::invalid("seed", format!("not a u64: {e}")))?;
    let plan = ChaosPlan::nasty(seed);
    println!(
        "fleet: {} machines | chaos plan: {} injectors, seed {:#x}\n",
        fleet.len(),
        plan.injectors.len(),
        plan.seed
    );

    let report = run_differential(&fleet, &config, &plan, &Tolerance::default())?;

    println!(
        "injected {} faults ({} non-finite, {} duplicated, {} replayed, {} spiked, \
         {} stalled, {} clock-stepped, {} clock-skewed, {} wrapped)",
        report.injected.injected(),
        report.injected.non_finite,
        report.injected.duplicated,
        report.injected.replayed,
        report.injected.spiked,
        report.injected.stalled,
        report.injected.clock_stepped,
        report.injected.clock_skewed,
        report.injected.wrapped,
    );
    println!(
        "gate: {} ingested, {} dropped, {} quarantines\n",
        report.chaos.status.ingestion.ingested,
        report.chaos.status.ingestion.dropped(),
        report.chaos.status.ingestion.quarantines,
    );
    println!("{}", report.table());
    println!("robustness contract held — clean and chaos runs reconciled exactly.");
    println!("clean status: {}", report.clean.status.status_line());
    println!("chaos status: {}", report.chaos.status.status_line());
    Ok(())
}
