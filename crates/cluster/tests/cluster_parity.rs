//! The E16 hard gate, test-sized: the merged alarm history of a sharded
//! cluster — per-shard `aging-serve` nodes pulled by the watermark-
//! merging [`Aggregator`] — must be **byte-identical** (under the
//! canonical event codec) to an offline
//! [`FleetSupervisor`](aging_stream::supervisor::FleetSupervisor) run of
//! the same fleet, across shard counts {1, 2, 4} and at every
//! `AGING_THREADS` setting; and that must survive killing and
//! recovering a store-backed shard mid-stream.
//!
//! ci.sh runs this file under `AGING_THREADS=1` and `=4`.

use std::collections::HashMap;
use std::path::PathBuf;

use aging_cluster::{drive_fleet, Aggregator, AggregatorConfig, HashRing, LocalCluster};
use aging_core::baseline::TrendPredictorConfig;
use aging_fractal::spectrum::{spectrum_trace, SpectrumConfig};
use aging_memsim::{Counter, Scenario};
use aging_serve::loadgen::{drive_with_ids, BatchMode, LoadgenConfig};
use aging_serve::protocol::{counter_code, encode_events, Record, ServeEvent};
use aging_serve::{ServeClient, ServeConfig};
use aging_store::StoreConfig;
use aging_stream::detector::{DetectorSpec, SpectrumDetectorConfig};
use aging_stream::source::{MachineSource, SampleSource};
use aging_stream::supervisor::{CounterDetector, FleetConfig, FleetSupervisor};
use aging_stream::GateConfig;

const RING_SEED: u64 = 0x5eed_0001;
const RING_VNODES: u32 = 32;
const BATCH_RECORDS: usize = 16;

fn fleet_config() -> FleetConfig {
    let detectors = vec![CounterDetector {
        counter: Counter::AvailableBytes,
        spec: DetectorSpec::Trend(TrendPredictorConfig {
            window: 120,
            refit_every: 8,
            alarm_horizon_secs: 900.0,
            ..TrendPredictorConfig::depleting(5.0)
        }),
    }];
    let mut cfg = FleetConfig::new(detectors, 8.0 * 3600.0);
    cfg.gate = GateConfig {
        nominal_period_secs: 5.0,
        ..GateConfig::default()
    };
    cfg
}

fn scenarios(seed: u64) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = (0..3)
        .map(|i| Scenario::tiny_aging(seed + i, 192.0))
        .collect();
    out.push(Scenario::tiny_aging(seed + 3, 0.0)); // healthy control
    out
}

/// Offline events in the cluster's address space (machine id = scenario
/// index — exactly the global ids the fleet drive publishes under).
fn offline_events(cfg: &FleetConfig, fleet: &[Scenario]) -> Vec<ServeEvent> {
    let report = FleetSupervisor::new(cfg.clone())
        .expect("offline supervisor")
        .run(fleet)
        .expect("offline run");
    report
        .events
        .iter()
        .map(|e| ServeEvent {
            machine_id: e.machine_index as u64,
            time_secs: e.time_secs,
            level: e.level,
            kind: e.kind,
        })
        .collect()
}

fn loadgen_config() -> LoadgenConfig {
    loadgen_config_mode(BatchMode::Record)
}

fn loadgen_config_mode(mode: BatchMode) -> LoadgenConfig {
    LoadgenConfig {
        connections: 2,
        batch_records: 32,
        rate_records_per_sec: 0.0,
        poll_alarms_ms: 0,
        counters: vec![Counter::AvailableBytes],
        mode,
    }
}

/// Drives the fleet through a `shards`-node cluster and returns the
/// aggregator's merged history.
fn cluster_events(
    cfg: &FleetConfig,
    fleet: &[Scenario],
    shards: u64,
    mode: BatchMode,
) -> Vec<ServeEvent> {
    let ring = HashRing::new(shards, RING_VNODES, RING_SEED).expect("ring");
    let ids: Vec<u64> = (0..fleet.len() as u64).collect();
    let template = ServeConfig::from_fleet(cfg);
    let cluster = LocalCluster::launch(&ring, &template, &ids, None).expect("launch cluster");
    let aggregator = Aggregator::new(AggregatorConfig::default()).expect("aggregator");

    let (drive_result, agg_result) = std::thread::scope(|scope| {
        let agg = scope.spawn(|| aggregator.run(cluster.directory()));
        let drive = drive_fleet(
            &ring,
            cluster.directory(),
            fleet,
            &ids,
            cfg.horizon_secs,
            &loadgen_config_mode(mode),
        );
        (drive, agg.join().expect("aggregator thread"))
    });
    let drive = drive_result.expect("fleet drive");
    assert!(drive.records_sent() > 0, "fleet drive fed nothing");
    let report = agg_result.expect("aggregator run");
    assert_eq!(
        report.per_shard.iter().sum::<u64>(),
        report.events.len() as u64,
        "per-shard attribution must cover every merged event"
    );

    // Each shard's own released history must be the merged history
    // filtered to that shard's machines — the aggregator reorders
    // nothing within a shard.
    for (shard, shard_report) in drive.shards.iter().enumerate() {
        let Some(shard_report) = shard_report else {
            continue;
        };
        let owned: Vec<ServeEvent> = report
            .events
            .iter()
            .filter(|e| ring.shard_of(e.machine_id) == shard as u64)
            .cloned()
            .collect();
        assert_eq!(
            encode_events(&shard_report.alarms),
            encode_events(&owned),
            "shard {shard}: merged history does not embed the shard stream"
        );
    }

    for (shard, outcome) in cluster.shutdown().into_iter().enumerate() {
        let outcome = outcome.expect("no shard was killed in this run");
        assert_eq!(
            outcome.wire.session_panics, 0,
            "shard {shard}: server must not panic"
        );
        assert_eq!(
            outcome.wire.quarantined, 0,
            "shard {shard}: clean clients must not be quarantined"
        );
    }
    report.events
}

#[test]
fn merged_cluster_history_is_byte_identical_to_offline_supervisor() {
    for seed in [0x00c0_ffee_u64, 42] {
        let cfg = fleet_config();
        let fleet = scenarios(seed);
        let offline = offline_events(&cfg, &fleet);
        assert!(
            !offline.is_empty(),
            "seed {seed:#x}: expected alarms from leaky machines"
        );
        for shards in [1u64, 2, 4] {
            let merged = cluster_events(&cfg, &fleet, shards, BatchMode::Record);
            assert_eq!(
                encode_events(&offline),
                encode_events(&merged),
                "seed {seed:#x}, {shards} shard(s): merged cluster history diverged from \
                 the offline supervisor (offline {} events, merged {})",
                offline.len(),
                merged.len()
            );
        }
    }
}

#[test]
fn merged_cluster_history_columnar_mode_matches_offline_supervisor() {
    let seed = 0x00c0_ffee_u64;
    let cfg = fleet_config();
    let fleet = scenarios(seed);
    let offline = offline_events(&cfg, &fleet);
    assert!(!offline.is_empty(), "expected alarms from leaky machines");
    let merged = cluster_events(&cfg, &fleet, 2, BatchMode::Columnar);
    assert_eq!(
        encode_events(&offline),
        encode_events(&merged),
        "columnar-mode merged cluster history diverged from the offline supervisor \
         (offline {} events, merged {})",
        offline.len(),
        merged.len()
    );
}

/// E17's serve-tier face at cluster scale: every machine's Δα, queried
/// from whichever of the two shards owns it, must be bit-equal to the
/// offline batch estimator run on that machine's raw counter trace —
/// the sharded spectrum view is the offline spectrum view, just routed.
#[test]
fn per_shard_spectrum_queries_match_offline_estimator() {
    let spectrum = SpectrumConfig {
        window: 128,
        stride: 32,
        ..SpectrumConfig::default()
    };
    let detectors = vec![CounterDetector {
        counter: Counter::AvailableBytes,
        spec: DetectorSpec::Spectrum(SpectrumDetectorConfig {
            spectrum: spectrum.clone(),
            skip_windows: 0,
            baseline_windows: 4,
            width_delta: 0.2,
            mad_multiplier: 4.0,
            confirm_windows: 2,
        }),
    }];
    let horizon_secs = 3600.0; // 720 samples at 5 s: many filled windows
    let mut cfg = FleetConfig::new(detectors, horizon_secs);
    cfg.gate = GateConfig {
        nominal_period_secs: 5.0,
        ..GateConfig::default()
    };

    let fleet = scenarios(0x00c0_ffee_u64);
    let ids: Vec<u64> = (0..fleet.len() as u64).collect();
    let ring = HashRing::new(2, RING_VNODES, RING_SEED).expect("ring");
    let parts = ring.partition_indices(&ids);
    assert!(
        parts.iter().all(|p| !p.is_empty()),
        "both shards must own machines for the routing to be exercised"
    );
    let template = ServeConfig::from_fleet(&cfg);
    let cluster = LocalCluster::launch(&ring, &template, &ids, None).expect("launch cluster");

    for (shard, positions) in parts.iter().enumerate() {
        let mut client =
            ServeClient::connect(cluster.addr(shard), "spectrum-prober").expect("connect shard");
        let mut traces: Vec<(u64, Vec<f64>)> = Vec::new();
        for &p in positions {
            let mut source = MachineSource::new(&fleet[p], Counter::AvailableBytes, horizon_secs)
                .expect("source");
            let mut records = Vec::new();
            let mut values = Vec::new();
            while let Some(s) = source.next_sample().expect("infallible source") {
                records.push(Record {
                    machine_id: ids[p],
                    counter: counter_code(Counter::AvailableBytes),
                    time_secs: s.time_secs,
                    value: s.value,
                });
                values.push(s.value);
            }
            for chunk in records.chunks(BATCH_RECORDS) {
                client.send_batch(chunk).expect("send batch");
            }
            traces.push((ids[p], values));
        }
        client.flush().expect("flush");

        for (machine_id, values) in traces {
            let offline = spectrum_trace(&values, &spectrum).expect("offline spectrum");
            let expected = offline
                .last()
                .expect("the horizon fills many windows")
                .delta_alpha;
            let widths = client
                .query_spectrum(machine_id)
                .expect("spectrum query")
                .unwrap_or_else(|| panic!("shard {shard} does not know machine {machine_id}"));
            assert_eq!(
                widths.len(),
                1,
                "machine {machine_id}: one spectrum stream, got {widths:?}"
            );
            assert_eq!(widths[0].0, Counter::AvailableBytes);
            assert_eq!(
                widths[0].1.to_bits(),
                expected.to_bits(),
                "machine {machine_id} on shard {shard}: served Δα {} != offline Δα {expected}",
                widths[0].1,
            );
        }
        client.bye().expect("bye");
    }

    for (shard, outcome) in cluster.shutdown().into_iter().enumerate() {
        let outcome = outcome.expect("all shards live");
        assert_eq!(
            outcome.wire.session_panics, 0,
            "shard {shard}: server must not panic"
        );
        assert_eq!(
            outcome.wire.quarantined, 0,
            "shard {shard}: clean clients must not be quarantined"
        );
        assert_eq!(outcome.wire.malformed_frames, 0, "shard {shard}");
    }
}

// ---------------------------------------------------------------------------
// Kill-and-recover: one shard dies mid-stream and is re-bound from its
// store; global parity and the aggregator's journal must both hold.
// ---------------------------------------------------------------------------

/// A store directory wiped on create and drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("aging-cluster-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The victim shard's record sequence under its machines' *global* ids,
/// round-robin by sample index, chunked into batches.
fn build_batches(fleet: &[Scenario], ids: &[u64], horizon_secs: f64) -> Vec<Vec<Record>> {
    let code = counter_code(Counter::AvailableBytes);
    let traces: Vec<Vec<Record>> = fleet
        .iter()
        .zip(ids)
        .map(|(scenario, &id)| {
            let mut source = MachineSource::new(scenario, Counter::AvailableBytes, horizon_secs)
                .expect("source");
            let mut out = Vec::new();
            while let Some(s) = source.next_sample().expect("infallible source") {
                out.push(Record {
                    machine_id: id,
                    counter: code,
                    time_secs: s.time_secs,
                    value: s.value,
                });
            }
            out
        })
        .collect();
    let longest = traces.iter().map(Vec::len).max().unwrap_or(0);
    let mut records = Vec::new();
    for i in 0..longest {
        for trace in &traces {
            if let Some(rec) = trace.get(i) {
                records.push(*rec);
            }
        }
    }
    records
        .chunks(BATCH_RECORDS)
        .map(<[Record]>::to_vec)
        .collect()
}

/// Feeds the victim shard with an at-least-once client, killing the
/// shard once mid-stream and re-binding it from its store.
fn feed_victim_with_crash(
    cluster: &LocalCluster,
    victim: usize,
    batches: &[Vec<Record>],
    ids: &[u64],
) {
    let kill_at = batches.len() / 2;
    assert!(kill_at > 0, "victim feed too short to kill mid-stream");
    let mut cursor = 0usize;
    let mut carry: Vec<Vec<Record>> = Vec::new();
    let mut killed = false;

    loop {
        let mut client =
            ServeClient::connect(cluster.addr(victim), "victim-feeder").expect("connect victim");
        let mut sent: HashMap<u64, Vec<Record>> = HashMap::new();
        for batch in carry.drain(..) {
            let seq = client.send_batch(&batch).expect("resend batch");
            sent.insert(seq, batch);
        }
        while cursor < batches.len() {
            if !killed && cursor == kill_at {
                break;
            }
            let batch = batches[cursor].clone();
            let seq = client.send_batch(&batch).expect("send batch");
            sent.insert(seq, batch);
            cursor += 1;
        }
        if !killed && cursor == kill_at {
            cluster.abort_shard(victim).expect("abort victim");
            killed = true;
            carry = client
                .unacked_seqs()
                .into_iter()
                .filter_map(|seq| sent.remove(&seq))
                .collect();
            cluster.rebind_shard(victim).expect("rebind victim");
            continue;
        }
        for &id in ids {
            client.machine_done(id).expect("machine done");
        }
        let _ = client.bye().expect("bye");
        assert!(killed, "the kill point must have fired");
        return;
    }
}

#[test]
fn killed_and_recovered_shard_preserves_global_parity() {
    let seed = 0x00c0_ffee_u64;
    let cfg = fleet_config();
    let fleet = scenarios(seed);
    let offline = offline_events(&cfg, &fleet);
    assert!(!offline.is_empty(), "expected alarms from leaky machines");

    let ring = HashRing::new(2, RING_VNODES, RING_SEED).expect("ring");
    let ids: Vec<u64> = (0..fleet.len() as u64).collect();
    let parts = ring.partition_indices(&ids);
    // Kill the shard owning the most machines — the worst case for the
    // aggregator's watermark hold.
    let victim = (0..parts.len())
        .max_by_key(|&s| parts[s].len())
        .expect("two shards");
    assert!(
        !parts[victim].is_empty(),
        "victim shard must own machines for the kill to matter"
    );

    let shard_root = TempDir::new("shards");
    let agg_root = TempDir::new("agg");
    let template = ServeConfig::from_fleet(&cfg);
    let cluster =
        LocalCluster::launch(&ring, &template, &ids, Some(&shard_root.0)).expect("launch cluster");
    let agg_store = StoreConfig {
        snapshot_every_entries: 4,
        ..StoreConfig::new(&agg_root.0)
    };
    let aggregator = Aggregator::new(AggregatorConfig {
        store: Some(agg_store.clone()),
        ..AggregatorConfig::default()
    })
    .expect("aggregator");

    let victim_scenarios: Vec<Scenario> = parts[victim].iter().map(|&p| fleet[p].clone()).collect();
    let victim_ids: Vec<u64> = parts[victim].iter().map(|&p| ids[p]).collect();
    let victim_batches = build_batches(&victim_scenarios, &victim_ids, cfg.horizon_secs);

    let agg_result = std::thread::scope(|scope| {
        let agg = scope.spawn(|| aggregator.run(cluster.directory()));
        let mut healthy = Vec::new();
        for (shard, positions) in parts.iter().enumerate() {
            if shard == victim || positions.is_empty() {
                continue;
            }
            let shard_scenarios: Vec<Scenario> =
                positions.iter().map(|&p| fleet[p].clone()).collect();
            let shard_ids: Vec<u64> = positions.iter().map(|&p| ids[p]).collect();
            let addr = cluster.addr(shard);
            let horizon = cfg.horizon_secs;
            healthy.push(scope.spawn(move || {
                drive_with_ids(
                    addr,
                    &shard_scenarios,
                    &shard_ids,
                    horizon,
                    &loadgen_config(),
                )
                .expect("healthy shard drive")
            }));
        }
        feed_victim_with_crash(&cluster, victim, &victim_batches, &victim_ids);
        for handle in healthy {
            handle.join().expect("healthy driver thread");
        }
        agg.join().expect("aggregator thread")
    });
    let report = agg_result.expect("aggregator run");
    assert!(
        report.reconnects > 0,
        "the aggregator must have survived at least one reconnect"
    );

    assert_eq!(
        encode_events(&offline),
        encode_events(&report.events),
        "kill-and-recover cluster history diverged from the offline supervisor \
         (offline {} events, merged {})",
        offline.len(),
        report.events.len()
    );

    // The aggregator's journal replays to the same merged history —
    // cluster-wide kill-and-recover of the aggregator itself.
    let recovered = Aggregator::recover_events(&agg_store).expect("recover journal");
    assert_eq!(
        encode_events(&report.events),
        encode_events(&recovered),
        "aggregator journal replay diverged from the live merged history"
    );

    for (shard, outcome) in cluster.shutdown().into_iter().enumerate() {
        let outcome = outcome.expect("all shards live at the end");
        assert_eq!(
            outcome.wire.session_panics, 0,
            "shard {shard}: server must not panic"
        );
    }
}
