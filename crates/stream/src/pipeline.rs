//! Per-machine detection pipeline: the gate → detector → fusion core of
//! the fleet supervisor, factored out so *any* transport can feed it one
//! sample at a time.
//!
//! A [`MachinePipeline`] owns one machine's counter streams — one
//! [`SampleGate`] and one [`StreamingDetector`] per monitored counter —
//! plus the machine-level [`FusionRule`] vote. It is the single shared
//! implementation behind two callers:
//!
//! - the in-process [`crate::supervisor::FleetSupervisor`], which steps
//!   simulated machines itself and knows exactly when a monitor *tick*
//!   (one sample of every counter at one timestamp) is complete, and
//! - the networked ingestion server (`aging-serve`), which receives
//!   `(machine, counter, time, value)` records one at a time over TCP
//!   and cannot see tick boundaries directly.
//!
//! Because both paths run the identical pipeline code on the identical
//! sample sequences, the network layer is alarm-for-alarm equivalent to
//! the offline supervisor *by construction* — the E14 parity experiment
//! turns that equivalence into a hard byte-identity gate.
//!
//! # Tick semantics
//!
//! Fusion votes are evaluated once per tick, after every counter's sample
//! of that tick has been consumed. The supervisor calls [`end_tick`]
//! explicitly. The record-at-a-time path uses [`ingest`], which infers
//! tick boundaries from the sample clock: a record with a strictly later
//! timestamp completes the previous tick (running its deferred fusion
//! vote first, so emission order matches the supervisor's), and
//! [`finish`] completes the final tick when the feed ends. The deferred
//! vote is why [`completed_time_secs`] — the watermark up to which this
//! machine's event stream is final — trails the newest sample by one
//! tick on the incremental path.
//!
//! [`end_tick`]: MachinePipeline::end_tick
//! [`ingest`]: MachinePipeline::ingest
//! [`finish`]: MachinePipeline::finish
//! [`completed_time_secs`]: MachinePipeline::completed_time_secs

use std::time::Instant;

use aging_core::fusion::FusionRule;
use aging_memsim::Counter;
use aging_timeseries::Result;

use crate::detector::{AlertDetail, DetectorSpec, StreamingDetector};
use crate::gate::{GateAction, GateConfig, GateHealth, SampleGate};
use crate::source::StreamSample;
use crate::telemetry::{CounterStreamSnapshot, LatencyHistogram, MachineSnapshot, StageCounters};

pub use aging_core::detector::AlertLevel;

/// One counter to monitor on a machine, and the detector to run on it.
#[derive(Debug, Clone)]
pub struct CounterDetector {
    /// The monitored counter.
    pub counter: Counter,
    /// The detector family and tuning for this counter.
    pub spec: DetectorSpec,
}

/// What fired: a single detector, or the machine-level fused vote.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlarmKind {
    /// One counter's detector emitted an alert.
    Detector {
        /// The counter that triggered.
        counter: Counter,
        /// Stable detector-family name (see [`DetectorSpec::name`]).
        detector: &'static str,
        /// The detector's measurements.
        detail: AlertDetail,
    },
    /// The fusion rule's vote threshold was reached for a machine.
    MachineAlarm {
        /// Counters whose detectors had latched alarms.
        votes: usize,
        /// Counters voting in total.
        members: usize,
    },
    /// A rejuvenation restart was granted and applied to the machine —
    /// emitted by the supervisor's arbitration loop, not by the
    /// pipeline itself, but part of the same ordered alarm stream.
    Restart {
        /// Why the restart fired.
        reason: aging_rejuv::RestartReason,
        /// Seconds the machine was held down by this restart.
        downtime_secs: f64,
    },
}

/// One event produced by a machine pipeline.
///
/// `time_secs` is the *true* stream time of the tick that produced the
/// event — for the supervisor path that is the machine's monitor clock
/// even when a perturber rewrote the sample's own timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineEvent {
    /// Stream time of the sample/tick that produced the event, seconds.
    pub time_secs: f64,
    /// Severity.
    pub level: AlertLevel,
    /// What fired.
    pub kind: AlarmKind,
}

/// One counter stream: gate, detector and its poisoned flag.
#[derive(Debug)]
struct CounterStream {
    counter: Counter,
    detector_name: &'static str,
    gate: SampleGate,
    detector: StreamingDetector,
    /// Poisoned by an estimator error; keeps its latched vote but stops
    /// consuming samples.
    disabled: bool,
}

/// Scratch buffers for [`MachinePipeline::ingest_column`], reused across
/// columns so the hot path stays allocation-free. Transient by contract:
/// cleared-and-refilled per column and deliberately absent from
/// [`MachinePipeline::encode_state`].
#[derive(Debug, Default)]
struct ColumnScratch {
    /// `(offset of the sample opening the next tick, completed tick time)`.
    boundaries: Vec<(usize, f64)>,
    /// Indices of streams monitoring the column's counter.
    matching: Vec<usize>,
    /// Alarm latch per matching stream at the current replay point.
    flags: Vec<bool>,
    /// Gate-accepted values for the stream currently being processed.
    accepted: Vec<f64>,
    /// Column offset of each accepted value (parallel to `accepted`).
    offsets: Vec<u32>,
    /// `(start, len, reset_before)` runs into `accepted`, split where the
    /// gate demanded a detector reset.
    runs: Vec<(usize, usize, bool)>,
    /// Per-run alert staging for [`StreamingDetector::push_slice`].
    alerts: Vec<(usize, crate::detector::StreamAlert)>,
    /// Alarm-latch transitions: `(offset, matching position, new state)`.
    latch: Vec<(usize, usize, bool)>,
    /// Events staged for ordered emission:
    /// `(offset, phase 0=fusion 1=detector, stream index, event)`.
    staged: Vec<(usize, u8, usize, PipelineEvent)>,
}

/// The gate → detector → fusion pipeline for one machine.
#[derive(Debug)]
pub struct MachinePipeline {
    streams: Vec<CounterStream>,
    fusion: FusionRule,
    fused: bool,
    latency: LatencyHistogram,
    detector_errors: u64,
    /// Tick currently being filled on the incremental ([`ingest`]) path.
    ///
    /// [`ingest`]: MachinePipeline::ingest
    tick_time: Option<f64>,
    /// Newest tick whose events are final (watermark), `-inf` initially.
    completed_time: f64,
    finished: bool,
    column_scratch: ColumnScratch,
}

impl MachinePipeline {
    /// Builds the pipeline: one gate + detector per entry of `detectors`.
    ///
    /// # Errors
    ///
    /// Propagates [`GateConfig::validate`] and detector-constructor
    /// failures; rejects an empty detector list.
    pub fn new(
        detectors: &[CounterDetector],
        fusion: FusionRule,
        gate: GateConfig,
    ) -> Result<Self> {
        if detectors.is_empty() {
            return Err(aging_timeseries::Error::invalid(
                "detectors",
                "need at least one counter",
            ));
        }
        let streams = detectors
            .iter()
            .map(|d| {
                Ok(CounterStream {
                    counter: d.counter,
                    detector_name: d.spec.name(),
                    gate: SampleGate::new(gate)?,
                    detector: StreamingDetector::new(&d.spec)?,
                    disabled: false,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(MachinePipeline {
            streams,
            fusion,
            fused: false,
            latency: LatencyHistogram::default(),
            detector_errors: 0,
            tick_time: None,
            completed_time: f64::NEG_INFINITY,
            finished: false,
            column_scratch: ColumnScratch::default(),
        })
    }

    /// Feeds one sample to the counter stream at `stream` (an index into
    /// the `detectors` slice the pipeline was built from), appending any
    /// detector events to `out`.
    ///
    /// `true_time_secs` is the stream time stamped onto events — pass the
    /// machine's real monitor clock, which may differ from
    /// `sample.time_secs` when a perturber corrupted the sample.
    ///
    /// **Deprecated in favor of the unified ingestion surface** — new
    /// code should go through [`MachinePipeline::ingest`] (which infers
    /// tick boundaries) or [`MachinePipeline::ingest_column`] for whole
    /// columns; this low-level single-stream entry stays (not removed)
    /// for callers that manage tick boundaries themselves, like the
    /// supervisor's shard loop.
    pub fn push_record(
        &mut self,
        stream: usize,
        sample: StreamSample,
        true_time_secs: f64,
        out: &mut Vec<PipelineEvent>,
    ) {
        let cs = &mut self.streams[stream];
        if cs.disabled {
            return;
        }
        let accepted = match cs.gate.push(sample) {
            GateAction::Accept(s) => s,
            GateAction::AcceptAfterGap(s) => {
                cs.detector.reset();
                s
            }
            GateAction::DropNonFinite | GateAction::DropOutOfOrder => return,
        };
        let started = Instant::now();
        let alert = cs.detector.push(accepted.value);
        self.latency.record(started.elapsed());
        match alert {
            Ok(Some(alert)) => out.push(PipelineEvent {
                time_secs: true_time_secs,
                level: alert.level,
                kind: AlarmKind::Detector {
                    counter: cs.counter,
                    detector: cs.detector_name,
                    detail: alert.detail,
                },
            }),
            Ok(None) => {}
            Err(_) => {
                self.detector_errors += 1;
                cs.disabled = true;
            }
        }
    }

    /// Completes one tick: evaluates the fusion vote over the latched
    /// per-counter alarms, appending the machine-level alarm to `out`
    /// the first time the rule fires.
    pub fn end_tick(&mut self, time_secs: f64, out: &mut Vec<PipelineEvent>) {
        self.completed_time = self.completed_time.max(time_secs);
        if self.fused {
            return;
        }
        let members = self.streams.len();
        let votes = self
            .streams
            .iter()
            .filter(|cs| cs.detector.is_alarmed())
            .count();
        if self.fusion.fires(votes, members) {
            self.fused = true;
            out.push(PipelineEvent {
                time_secs,
                level: AlertLevel::Alarm,
                kind: AlarmKind::MachineAlarm { votes, members },
            });
        }
    }

    /// Feeds one `(counter, sample)` record on the incremental path,
    /// routing it to every stream monitoring `counter` and inferring tick
    /// boundaries from the sample clock (see the module docs).
    ///
    /// Records whose counter matches no stream are ignored; records with
    /// a non-finite timestamp never advance the tick clock (the gates
    /// drop them).
    ///
    /// For whole per-counter columns prefer
    /// [`MachinePipeline::ingest_column`], which produces bit-identical
    /// events without the per-record dispatch overhead.
    pub fn ingest(&mut self, counter: Counter, sample: StreamSample, out: &mut Vec<PipelineEvent>) {
        if sample.time_secs.is_finite() {
            match self.tick_time {
                Some(t) if sample.time_secs > t => {
                    self.end_tick(t, out);
                    self.tick_time = Some(sample.time_secs);
                }
                None => self.tick_time = Some(sample.time_secs),
                _ => {}
            }
            // A fresh sample resurrects a feed that was marked ended.
            self.finished = false;
        }
        for i in 0..self.streams.len() {
            if self.streams[i].counter == counter {
                self.push_record(i, sample, sample.time_secs, out);
            }
        }
    }

    /// Feeds one column — `counter` with parallel `times`/`values` — on
    /// the incremental path. State and emitted events are bit-identical
    /// to calling [`ingest`](MachinePipeline::ingest) once per
    /// `(times[k], values[k])` pair, in order; only telemetry differs
    /// (detector latency is recorded once per gate-accepted run instead
    /// of once per sample).
    ///
    /// When every enabled stream monitoring `counter` runs a trend-family
    /// detector, the column takes a slice-driven fast path: tick
    /// boundaries are precomputed, each stream's gate splits the column
    /// into accepted runs, runs go to the detector through
    /// [`StreamingDetector::push_slice`], and the deferred per-tick
    /// fusion votes are replayed afterwards from the recorded alarm-latch
    /// transitions (a trend alarm latches exactly when its Alarm alert is
    /// emitted, and only a gate-triggered reset clears it, so the vote
    /// count at every boundary is reconstructible). Other detector
    /// families fall back to the per-sample loop.
    ///
    /// Extra `times` or `values` beyond the shorter slice are ignored.
    pub fn ingest_column(
        &mut self,
        counter: Counter,
        times: &[f64],
        values: &[f64],
        out: &mut Vec<PipelineEvent>,
    ) {
        let n = times.len().min(values.len());
        let mut scratch = std::mem::take(&mut self.column_scratch);
        scratch.matching.clear();
        let mut fast = true;
        for (i, cs) in self.streams.iter().enumerate() {
            if cs.counter == counter {
                scratch.matching.push(i);
                if !cs.disabled && !cs.detector.is_trend_family() {
                    fast = false;
                }
            }
        }
        if !fast {
            self.column_scratch = scratch;
            for k in 0..n {
                let sample = StreamSample {
                    time_secs: times[k],
                    value: values[k],
                };
                self.ingest(counter, sample, out);
            }
            return;
        }

        // Tick clock pre-pass: identical decisions to the scalar path —
        // `push_record` never reads the clock, and the deferred fusion
        // votes are replayed below.
        scratch.boundaries.clear();
        for (k, &t) in times.iter().enumerate().take(n) {
            if t.is_finite() {
                match self.tick_time {
                    Some(prev) if t > prev => {
                        scratch.boundaries.push((k, prev));
                        self.tick_time = Some(t);
                    }
                    None => self.tick_time = Some(t),
                    _ => {}
                }
                self.finished = false;
            }
        }

        // Alarm state at column start: matching streams get tracked
        // flags; every other stream's vote is constant for this column.
        let mut base_votes = 0usize;
        for (i, cs) in self.streams.iter().enumerate() {
            if !scratch.matching.contains(&i) && cs.detector.is_alarmed() {
                base_votes += 1;
            }
        }
        scratch.flags.clear();
        for &si in &scratch.matching {
            scratch.flags.push(self.streams[si].detector.is_alarmed());
        }

        // Gate + detector pass, one matching stream at a time. Streams
        // are independent state machines, so per-stream processing leaves
        // the same state as the scalar sample-major order; the staged
        // sort below restores sample-major emission order.
        scratch.staged.clear();
        scratch.latch.clear();
        for (pos, &si) in scratch.matching.iter().enumerate() {
            let cs = &mut self.streams[si];
            if cs.disabled {
                continue;
            }
            scratch.accepted.clear();
            scratch.offsets.clear();
            scratch.runs.clear();
            let mut run_start = 0usize;
            let mut run_reset = false;
            for k in 0..n {
                let sample = StreamSample {
                    time_secs: times[k],
                    value: values[k],
                };
                match cs.gate.push(sample) {
                    GateAction::Accept(s) => {
                        scratch.accepted.push(s.value);
                        scratch.offsets.push(k as u32);
                    }
                    GateAction::AcceptAfterGap(s) => {
                        let len = scratch.accepted.len() - run_start;
                        if len > 0 {
                            scratch.runs.push((run_start, len, run_reset));
                        }
                        run_start = scratch.accepted.len();
                        run_reset = true;
                        scratch.accepted.push(s.value);
                        scratch.offsets.push(k as u32);
                    }
                    GateAction::DropNonFinite | GateAction::DropOutOfOrder => {}
                }
            }
            let len = scratch.accepted.len() - run_start;
            if len > 0 {
                scratch.runs.push((run_start, len, run_reset));
            }

            for &(start, len, reset) in &scratch.runs {
                if cs.disabled {
                    break;
                }
                if reset {
                    cs.detector.reset();
                    scratch
                        .latch
                        .push((scratch.offsets[start] as usize, pos, false));
                }
                let started = Instant::now();
                let res = cs
                    .detector
                    .push_slice(&scratch.accepted[start..start + len], &mut scratch.alerts);
                self.latency.record(started.elapsed());
                match res {
                    Ok(()) => {
                        for (off_in_run, alert) in scratch.alerts.drain(..) {
                            let off = scratch.offsets[start + off_in_run] as usize;
                            if alert.level == AlertLevel::Alarm {
                                scratch.latch.push((off, pos, true));
                            }
                            scratch.staged.push((
                                off,
                                1,
                                si,
                                PipelineEvent {
                                    time_secs: times[off],
                                    level: alert.level,
                                    kind: AlarmKind::Detector {
                                        counter: cs.counter,
                                        detector: cs.detector_name,
                                        detail: alert.detail,
                                    },
                                },
                            ));
                        }
                    }
                    Err(_) => {
                        // Unreachable for trend detectors on gate-accepted
                        // samples; handled like the scalar path anyway.
                        self.detector_errors += 1;
                        cs.disabled = true;
                    }
                }
            }
        }

        // Deferred fusion replay: walk the tick boundaries applying latch
        // transitions strictly before each boundary's sample, exactly the
        // state `end_tick` would have read in the scalar interleaving.
        scratch.latch.sort_by_key(|&(off, pos, _)| (off, pos));
        let mut votes = base_votes + scratch.flags.iter().filter(|&&f| f).count();
        let members = self.streams.len();
        let mut li = 0usize;
        for &(b, t) in &scratch.boundaries {
            while li < scratch.latch.len() && scratch.latch[li].0 < b {
                let (_, pos, state) = scratch.latch[li];
                if scratch.flags[pos] != state {
                    scratch.flags[pos] = state;
                    votes = if state { votes + 1 } else { votes - 1 };
                }
                li += 1;
            }
            self.completed_time = self.completed_time.max(t);
            if !self.fused && self.fusion.fires(votes, members) {
                self.fused = true;
                scratch.staged.push((
                    b,
                    0,
                    0,
                    PipelineEvent {
                        time_secs: t,
                        level: AlertLevel::Alarm,
                        kind: AlarmKind::MachineAlarm { votes, members },
                    },
                ));
            }
        }

        // Emit in scalar order: the boundary vote before sample `b`
        // (phase 0) precedes sample `b`'s detector events (phase 1);
        // same-sample detector events keep stream order.
        scratch
            .staged
            .sort_by_key(|&(off, phase, si, _)| (off, phase, si));
        out.extend(scratch.staged.drain(..).map(|(_, _, _, ev)| ev));
        self.column_scratch = scratch;
    }

    /// Ends the incremental feed: completes the final pending tick (its
    /// deferred fusion vote runs now) and marks the feed finished.
    /// Idempotent; a later [`ingest`](MachinePipeline::ingest) resumes
    /// the feed.
    pub fn finish(&mut self, out: &mut Vec<PipelineEvent>) {
        if self.finished {
            return;
        }
        if let Some(t) = self.tick_time.take() {
            self.end_tick(t, out);
        }
        self.finished = true;
    }

    /// Re-arms the pipeline after a machine restart: every enabled
    /// detector is reset (dropping its window and latched alarm) and the
    /// fused latch cleared, so the machine can alarm again in a later
    /// aging episode. Gates keep their clocks — the post-restart sample
    /// gap goes through the ordinary gap policy like any other outage.
    pub fn rearm(&mut self) {
        for cs in &mut self.streams {
            if !cs.disabled {
                cs.detector.reset();
            }
        }
        self.fused = false;
    }

    /// Whether the machine-level fused alarm has fired.
    pub fn is_fused(&self) -> bool {
        self.fused
    }

    /// Whether the incremental feed has been [`finish`]ed (and not
    /// resumed since).
    ///
    /// [`finish`]: MachinePipeline::finish
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Newest tick whose event stream is final — the machine's watermark
    /// on the incremental path. `-inf` before the first completed tick.
    pub fn completed_time_secs(&self) -> f64 {
        self.completed_time
    }

    /// Timestamp of the tick currently being filled on the incremental
    /// path, if any.
    pub fn tick_time_secs(&self) -> Option<f64> {
        self.tick_time
    }

    /// Gate counters aggregated over all counter streams.
    pub fn counters(&self) -> StageCounters {
        let mut total = StageCounters::default();
        for cs in &self.streams {
            total.merge(cs.gate.counters());
        }
        total
    }

    /// Per-sample detector latency accumulated so far.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Detector streams poisoned by an estimator error and disabled.
    pub fn detector_errors(&self) -> u64 {
        self.detector_errors
    }

    /// Whether the counter stream at `stream` has been disabled by an
    /// estimator error. Lets callers skip producing work (e.g. running a
    /// perturber) for a stream that would discard it anyway.
    pub fn stream_disabled(&self, stream: usize) -> bool {
        self.streams[stream].disabled
    }

    /// Number of counter streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Serializes the pipeline's complete dynamic state — every stream's
    /// gate, detector and poisoned flag, the fused latch, telemetry, and
    /// the incremental-path tick/watermark clocks — via
    /// [`aging_timeseries::persist`].
    ///
    /// Configuration (detector specs, fusion rule, gate knobs) is *not*
    /// written: recovery constructs a fresh pipeline from the same config
    /// and then calls [`MachinePipeline::restore_state`], which makes the
    /// restored pipeline bit-identical to the snapshotted one — feeding
    /// both the same subsequent records produces the same events with the
    /// same floating-point state down to the last ULP (the
    /// `pipeline_persistence` test drives this exact differential).
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use aging_timeseries::persist::{put_bool, put_f64, put_opt_f64, put_u64, put_usize};
        put_usize(out, self.streams.len());
        for cs in &self.streams {
            cs.gate.encode_state(out);
            cs.detector.encode_state(out);
            put_bool(out, cs.disabled);
        }
        put_bool(out, self.fused);
        self.latency.encode_state(out);
        put_u64(out, self.detector_errors);
        put_opt_f64(out, self.tick_time);
        put_f64(out, self.completed_time);
        put_bool(out, self.finished);
    }

    /// Restores state written by [`MachinePipeline::encode_state`] into a
    /// pipeline freshly constructed from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`aging_timeseries::Error::InvalidParameter`] on
    /// truncation, a stream-count or detector-family mismatch, or corrupt
    /// inner state.
    pub fn restore_state(&mut self, r: &mut aging_timeseries::persist::Reader<'_>) -> Result<()> {
        let n = r.usize_()?;
        if n != self.streams.len() {
            return Err(aging_timeseries::Error::invalid(
                "persist",
                format!("pipeline has {} streams, snapshot {n}", self.streams.len()),
            ));
        }
        for cs in &mut self.streams {
            cs.gate.restore_state(r)?;
            cs.detector.restore_state(r)?;
            cs.disabled = r.bool()?;
        }
        self.fused = r.bool()?;
        self.latency.restore_state(r)?;
        self.detector_errors = r.u64()?;
        self.tick_time = r.opt_f64()?;
        self.completed_time = r.f64()?;
        self.finished = r.bool()?;
        Ok(())
    }

    /// Serialisable point-in-time state of this machine's pipeline.
    pub fn snapshot(&self, machine_id: u64, name: &str) -> MachineSnapshot {
        MachineSnapshot {
            machine_id,
            name: name.to_string(),
            last_time_secs: self.tick_time.or_else(|| {
                self.completed_time
                    .is_finite()
                    .then_some(self.completed_time)
            }),
            finished: self.finished,
            fused: self.fused,
            detector_errors: self.detector_errors,
            ingestion: self.counters(),
            streams: self
                .streams
                .iter()
                .map(|cs| CounterStreamSnapshot {
                    counter: cs.counter.to_string(),
                    detector: cs.detector_name.to_string(),
                    alarmed: cs.detector.is_alarmed(),
                    disabled: cs.disabled,
                    degraded: cs.gate.health() == GateHealth::Degraded,
                    delta_alpha: cs.detector.last_delta_alpha(),
                    ingestion: *cs.gate.counters(),
                })
                .collect(),
        }
    }

    /// Latest spectrum width per counter: one `(counter, Δα)` entry for
    /// every enabled stream whose spectrum-width detector has emitted at
    /// least one window. Empty when no spectrum detectors are configured
    /// (or none has filled its first window yet).
    pub fn spectrum_widths(&self) -> Vec<(Counter, f64)> {
        self.streams
            .iter()
            .filter(|cs| !cs.disabled)
            .filter_map(|cs| cs.detector.last_delta_alpha().map(|da| (cs.counter, da)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_core::baseline::TrendPredictorConfig;

    fn trend_detectors() -> Vec<CounterDetector> {
        vec![CounterDetector {
            counter: Counter::AvailableBytes,
            spec: DetectorSpec::Trend(TrendPredictorConfig {
                window: 64,
                refit_every: 4,
                alarm_horizon_secs: 1e6,
                ..TrendPredictorConfig::depleting(5.0)
            }),
        }]
    }

    fn gate() -> GateConfig {
        GateConfig {
            nominal_period_secs: 5.0,
            ..GateConfig::default()
        }
    }

    #[test]
    fn rejects_empty_detector_list() {
        assert!(MachinePipeline::new(&[], FusionRule::Any, gate()).is_err());
    }

    #[test]
    fn incremental_feed_alarms_and_fuses_once() {
        let mut p = MachinePipeline::new(&trend_detectors(), FusionRule::Any, gate()).unwrap();
        let mut out = Vec::new();
        for i in 0..400 {
            let s = StreamSample {
                time_secs: i as f64 * 5.0,
                value: 1e6 - 400.0 * i as f64,
            };
            p.ingest(Counter::AvailableBytes, s, &mut out);
        }
        p.finish(&mut out);
        assert!(p.is_fused());
        assert!(p.is_finished());
        let fused: Vec<_> = out
            .iter()
            .filter(|e| matches!(e.kind, AlarmKind::MachineAlarm { .. }))
            .collect();
        assert_eq!(fused.len(), 1);
        let det: Vec<_> = out
            .iter()
            .filter(|e| {
                e.level == AlertLevel::Alarm && matches!(e.kind, AlarmKind::Detector { .. })
            })
            .collect();
        assert_eq!(det.len(), 1);
        // The deferred fusion vote lands on the same tick as the
        // detector alarm, and emission order preserves that tick order.
        assert_eq!(fused[0].time_secs, det[0].time_secs);
        assert!(p.completed_time_secs() >= fused[0].time_secs);
        // Idempotent finish.
        let before = out.len();
        p.finish(&mut out);
        assert_eq!(out.len(), before);
    }

    #[test]
    fn watermark_trails_by_one_tick_then_catches_up() {
        let mut p = MachinePipeline::new(&trend_detectors(), FusionRule::Any, gate()).unwrap();
        let mut out = Vec::new();
        assert_eq!(p.completed_time_secs(), f64::NEG_INFINITY);
        let s = |t: f64| StreamSample {
            time_secs: t,
            value: 1e6,
        };
        p.ingest(Counter::AvailableBytes, s(0.0), &mut out);
        assert_eq!(p.completed_time_secs(), f64::NEG_INFINITY);
        p.ingest(Counter::AvailableBytes, s(5.0), &mut out);
        assert_eq!(p.completed_time_secs(), 0.0);
        // Stale and non-finite records never advance the tick clock.
        p.ingest(Counter::AvailableBytes, s(5.0), &mut out);
        p.ingest(Counter::AvailableBytes, s(f64::NAN), &mut out);
        assert_eq!(p.completed_time_secs(), 0.0);
        p.finish(&mut out);
        assert_eq!(p.completed_time_secs(), 5.0);
    }

    #[test]
    fn unknown_counter_records_are_ignored() {
        let mut p = MachinePipeline::new(&trend_detectors(), FusionRule::Any, gate()).unwrap();
        let mut out = Vec::new();
        p.ingest(
            Counter::HandleCount,
            StreamSample {
                time_secs: 0.0,
                value: 1.0,
            },
            &mut out,
        );
        assert_eq!(p.counters().ingested, 0);
        assert!(out.is_empty());
    }

    /// Column ingestion must be a pure restructuring of the scalar loop:
    /// same events (order included), same persisted pipeline state, for
    /// any chunking of the same feed — including gate gaps (detector
    /// resets), out-of-order drops, NaN values, and duplicate timestamps.
    #[test]
    fn ingest_column_matches_scalar_ingest_bitwise() {
        let mut feed: Vec<(f64, f64)> = Vec::new();
        let mut t = 0.0f64;
        for i in 0..600u32 {
            if i == 150 {
                t += 5000.0; // hard gap: AcceptAfterGap resets the detector
            }
            let noise = ((i.wrapping_mul(2654435761) % 97) as f64 - 48.0) * 10.0;
            feed.push((t, 1e6 - 350.0 * f64::from(i) + noise));
            if i == 80 {
                feed.push((t - 25.0, 5.0)); // out-of-order: dropped
            }
            if i == 90 {
                feed.push((t, f64::NAN)); // non-finite value: dropped
            }
            if i == 100 {
                feed.push((t, feed.last().unwrap().1)); // duplicate tick
            }
            t += 5.0;
        }
        for chunk in [1usize, 2, 7, 64, 600] {
            let mut scalar =
                MachinePipeline::new(&trend_detectors(), FusionRule::Any, gate()).unwrap();
            let mut columnar =
                MachinePipeline::new(&trend_detectors(), FusionRule::Any, gate()).unwrap();
            let mut scalar_out = Vec::new();
            let mut columnar_out = Vec::new();
            let mut times = Vec::new();
            let mut values = Vec::new();
            for block in feed.chunks(chunk) {
                for &(bt, bv) in block {
                    scalar.ingest(
                        Counter::AvailableBytes,
                        StreamSample {
                            time_secs: bt,
                            value: bv,
                        },
                        &mut scalar_out,
                    );
                }
                times.clear();
                values.clear();
                times.extend(block.iter().map(|&(bt, _)| bt));
                values.extend(block.iter().map(|&(_, bv)| bv));
                columnar.ingest_column(Counter::AvailableBytes, &times, &values, &mut columnar_out);
            }
            scalar.finish(&mut scalar_out);
            columnar.finish(&mut columnar_out);
            assert_eq!(scalar_out, columnar_out, "events diverged at chunk={chunk}");
            assert!(scalar.is_fused(), "scenario must alarm");
            let mut a = Vec::new();
            let mut b = Vec::new();
            // Latency telemetry legitimately differs (per-run vs
            // per-sample stamps); compare everything else via snapshots
            // plus the full gate/detector state.
            for (p, bytes) in [(&scalar, &mut a), (&columnar, &mut b)] {
                for si in 0..p.stream_count() {
                    p.streams[si].gate.encode_state(bytes);
                    p.streams[si].detector.encode_state(bytes);
                    bytes.push(u8::from(p.streams[si].disabled));
                }
                bytes.push(u8::from(p.fused));
                bytes.extend_from_slice(&p.detector_errors.to_le_bytes());
                bytes.extend_from_slice(&p.completed_time.to_le_bytes());
                bytes.push(u8::from(p.finished));
            }
            assert_eq!(a, b, "state diverged at chunk={chunk}");
        }
    }

    #[test]
    fn rearm_clears_the_fused_latch_and_detector_windows() {
        let mut p = MachinePipeline::new(&trend_detectors(), FusionRule::Any, gate()).unwrap();
        let mut out = Vec::new();
        let feed = |p: &mut MachinePipeline, out: &mut Vec<PipelineEvent>, t0: f64| {
            for i in 0..400 {
                let s = StreamSample {
                    time_secs: t0 + i as f64 * 5.0,
                    value: 1e6 - 400.0 * i as f64,
                };
                p.ingest(Counter::AvailableBytes, s, out);
            }
        };
        feed(&mut p, &mut out, 0.0);
        assert!(p.is_fused());
        p.rearm();
        assert!(!p.is_fused());
        let before = out
            .iter()
            .filter(|e| matches!(e.kind, AlarmKind::MachineAlarm { .. }))
            .count();
        // A second depletion episode alarms again after re-arming.
        feed(&mut p, &mut out, 10_000.0);
        p.finish(&mut out);
        assert!(p.is_fused());
        let after = out
            .iter()
            .filter(|e| matches!(e.kind, AlarmKind::MachineAlarm { .. }))
            .count();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn snapshot_reflects_stream_state() {
        let mut p = MachinePipeline::new(&trend_detectors(), FusionRule::Any, gate()).unwrap();
        let mut out = Vec::new();
        for i in 0..10 {
            p.ingest(
                Counter::AvailableBytes,
                StreamSample {
                    time_secs: i as f64 * 5.0,
                    value: 1e6,
                },
                &mut out,
            );
        }
        let snap = p.snapshot(7, "m007:test");
        assert_eq!(snap.machine_id, 7);
        assert_eq!(snap.name, "m007:test");
        assert_eq!(snap.last_time_secs, Some(45.0));
        assert!(!snap.fused);
        assert_eq!(snap.streams.len(), 1);
        assert_eq!(snap.streams[0].counter, "available_bytes");
        assert_eq!(snap.streams[0].detector, "mann-kendall-sen");
        assert_eq!(snap.ingestion.ingested, 10);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("available_bytes"), "{json}");
    }
}
