//! Decision-parity property suite for the closed rejuvenation loop.
//!
//! Two independence claims, each tested on generated inputs:
//!
//! 1. **Pool-size independence** — the supervisor's restart decision log,
//!    event stream and machine outcomes are bit-identical across worker
//!    pools of {1, 2, 7} shards. The park-and-arbitrate protocol promises
//!    that sharding adds *throughput, never judgement*: every verdict is
//!    issued in global `(time, machine)` order once the merge frontier
//!    has passed the request, so thread scheduling cannot leak in.
//! 2. **Chunking independence** — a [`MachinePipeline`] fed one sample
//!    at a time ([`MachinePipeline::ingest`]) and a twin fed the same
//!    column in arbitrary cuts ([`MachinePipeline::ingest_column`])
//!    emit bit-identical events; feeding each twin's fused machine
//!    alarms to its own shadow [`RejuvController`] therefore produces
//!    bit-identical restart decisions. This pins the whole
//!    alarm → request → verdict chain against the batched ingest path,
//!    not just the detector kernels (`push_slice_props` covers those).
//!
//! Both runs re-check the controller safety envelope on the winning log:
//! no planned restart is granted within `cooldown_secs` of the same
//! machine's previous grant (boot counts as restart epoch zero), and
//! every granted decision lands exactly one journaled restart event.

use aging_core::baseline::TrendPredictorConfig;
use aging_core::fusion::FusionRule;
use aging_memsim::{Counter, Scenario};
use aging_rejuv::{RejuvConfig, RejuvController, RejuvPolicy, RestartReason, RestartRequest};
use aging_stream::detector::DetectorSpec;
use aging_stream::supervisor::{
    AlarmKind, CounterDetector, FleetConfig, FleetReport, FleetSupervisor,
};
use aging_stream::{GateConfig, MachinePipeline, StreamSample};
use proptest::prelude::*;

const DT: f64 = 5.0;

fn detectors() -> Vec<CounterDetector> {
    vec![CounterDetector {
        counter: Counter::AvailableBytes,
        spec: DetectorSpec::Trend(TrendPredictorConfig {
            window: 64,
            refit_every: 8,
            alarm_horizon_secs: 900.0,
            ..TrendPredictorConfig::depleting(DT)
        }),
    }]
}

fn fleet_config(horizon_secs: f64, shards: usize, rejuv: RejuvConfig) -> FleetConfig {
    let mut cfg = FleetConfig::new(detectors(), horizon_secs);
    cfg.gate.nominal_period_secs = DT;
    cfg.shards = shards;
    cfg.rejuv = Some(rejuv);
    cfg
}

/// Decodes scalar picks into a policy (the vendored proptest has no enum
/// strategies). Periodic uses a short period so it actually fires inside
/// the one-hour property horizon.
fn pick_policy(pick: usize) -> RejuvPolicy {
    match pick % 3 {
        0 => RejuvPolicy::None,
        1 => RejuvPolicy::Periodic {
            period_secs: 1200.0,
        },
        _ => RejuvPolicy::AlarmTriggered,
    }
}

/// Safety envelope shared by both properties: per-machine cooldown on
/// planned grants (boot epoch included, crash reboots exempt) and exact
/// grant/event reconciliation.
fn assert_safety_envelope(report: &FleetReport, machines: usize, cooldown_secs: f64) {
    let mut last_grant = vec![0.0f64; machines];
    for d in &report.decisions {
        if d.granted {
            if d.reason != RestartReason::CrashReboot {
                prop_assert!(
                    d.time_secs - last_grant[d.machine_index] >= cooldown_secs,
                    "granted {:?} within cooldown of the machine's previous grant at {}",
                    d,
                    last_grant[d.machine_index],
                );
            }
            last_grant[d.machine_index] = d.time_secs;
        }
    }
    prop_assert_eq!(
        report.decisions.iter().filter(|d| d.granted).count(),
        report.restart_events().count(),
        "every granted decision lands exactly one journaled restart event"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random small fleets through worker pools of {1, 2, 7} shards:
    /// the decision log, the ordered event stream and the per-machine
    /// outcomes must not depend on the pool size.
    #[test]
    fn closed_loop_is_bit_identical_across_shard_pools(
        machines in 2usize..5,
        leaks in prop::collection::vec(0.0f64..256.0, 4..=4),
        seed in 0u64..1_000,
        cooldown in 120.0f64..900.0,
        budget in 1usize..3,
        policy_pick in 0usize..3,
    ) {
        let fleet: Vec<Scenario> = (0..machines)
            .map(|i| Scenario::tiny_aging(seed + i as u64, leaks[i]))
            .collect();
        let rejuv = RejuvConfig {
            policy: pick_policy(policy_pick),
            cooldown_secs: cooldown,
            restart_downtime_secs: 30.0,
            crash_repair_secs: 600.0,
            max_concurrent_restarts: budget,
        };

        let run = |shards: usize| {
            FleetSupervisor::new(fleet_config(3600.0, shards, rejuv))
                .expect("valid config")
                .run(&fleet)
                .expect("fleet run")
        };
        let baseline = run(1);
        for shards in [2usize, 7] {
            let report = run(shards);
            prop_assert_eq!(
                &baseline.decisions, &report.decisions,
                "decision log diverged at {} shards", shards
            );
            prop_assert_eq!(
                &baseline.events, &report.events,
                "event stream diverged at {} shards", shards
            );
            prop_assert_eq!(
                &baseline.outcomes, &report.outcomes,
                "machine outcomes diverged at {} shards", shards
            );
        }
        assert_safety_envelope(&baseline, machines, cooldown);
    }

    /// Scalar vs columnar ingestion with a controller shadow: the same
    /// depleting trace fed sample-by-sample and in arbitrary column cuts
    /// must emit identical pipeline events, and replaying each side's
    /// fused machine alarms through its own controller must produce a
    /// bit-identical restart decision sequence.
    #[test]
    fn chunked_and_scalar_ingestion_drive_identical_decisions(
        len in 80usize..300,
        slope in 50.0f64..200.0,
        jitter in 0.0f64..10.0,
        chunks in prop::collection::vec(1usize..33, 1..=6),
        cooldown in 60.0f64..600.0,
    ) {
        // A leak-like trace with deterministic jitter, mirroring
        // `push_slice_props::build_trace`.
        let times: Vec<f64> = (0..len).map(|i| i as f64 * DT).collect();
        let values: Vec<f64> = (0..len)
            .map(|i| {
                let wobble = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
                1e6 - slope * i as f64 + jitter * wobble
            })
            .collect();

        let gate = GateConfig {
            nominal_period_secs: DT,
            ..GateConfig::default()
        };
        let mut scalar =
            MachinePipeline::new(&detectors(), FusionRule::Any, gate).expect("scalar pipeline");
        let mut columnar =
            MachinePipeline::new(&detectors(), FusionRule::Any, gate).expect("columnar pipeline");

        let mut scalar_events = Vec::new();
        for k in 0..len {
            scalar.ingest(
                Counter::AvailableBytes,
                StreamSample { time_secs: times[k], value: values[k] },
                &mut scalar_events,
            );
        }
        scalar.end_tick(times[len - 1], &mut scalar_events);

        let mut columnar_events = Vec::new();
        let mut pos = 0usize;
        let mut c = 0usize;
        while pos < len {
            let step = chunks[c % chunks.len()].min(len - pos);
            columnar.ingest_column(
                Counter::AvailableBytes,
                &times[pos..pos + step],
                &values[pos..pos + step],
                &mut columnar_events,
            );
            pos += step;
            c += 1;
        }
        columnar.end_tick(times[len - 1], &mut columnar_events);

        prop_assert_eq!(&scalar_events, &columnar_events, "pipeline events diverged");

        // Shadow controllers: identical configs, fed each side's fused
        // alarms. With identical events this must be a tautology — the
        // assert is on the *decision* bits, catching any divergence a
        // config-sensitive controller could amplify.
        let rejuv = RejuvConfig {
            policy: RejuvPolicy::AlarmTriggered,
            cooldown_secs: cooldown,
            restart_downtime_secs: 30.0,
            crash_repair_secs: 600.0,
            max_concurrent_restarts: 1,
        };
        let decide_all = |events: &[aging_stream::PipelineEvent]| {
            let mut controller = RejuvController::new(rejuv, 1).expect("valid config");
            for e in events {
                if matches!(e.kind, AlarmKind::MachineAlarm { .. }) {
                    controller.decide(&RestartRequest {
                        machine_index: 0,
                        time_secs: e.time_secs,
                        reason: RestartReason::Alarm,
                    });
                }
            }
            controller.decisions().to_vec()
        };
        prop_assert_eq!(
            decide_all(&scalar_events),
            decide_all(&columnar_events),
            "shadow controller decisions diverged"
        );
    }
}
