//! Maximal-overlap discrete wavelet transform (MODWT) and its inverse.
//!
//! Unlike the decimated DWT, the MODWT is defined for **any** signal length,
//! is shift-invariant, and produces one coefficient per sample at every
//! level — exactly what a sliding-window analysis of an arbitrary-length
//! monitor log needs. Conventions follow Percival & Walden (2000), with
//! periodic boundary handling.

use crate::filters::Wavelet;
use aging_timeseries::{Error, Result};

/// A multi-level MODWT decomposition: `levels` detail bands plus the final
/// smooth, each of the same length as the input.
#[derive(Debug, Clone, PartialEq)]
pub struct ModwtDecomposition {
    wavelet: Wavelet,
    details: Vec<Vec<f64>>,
    smooth: Vec<f64>,
}

impl ModwtDecomposition {
    /// Wavelet family used.
    pub fn wavelet(&self) -> Wavelet {
        self.wavelet
    }

    /// Number of analysed levels.
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Signal length (every band has this length).
    pub fn len(&self) -> usize {
        self.smooth.len()
    }

    /// Whether the decomposition is empty.
    pub fn is_empty(&self) -> bool {
        self.smooth.is_empty()
    }

    /// Detail (wavelet) coefficients at `level` (1-based, 1 = finest).
    ///
    /// # Panics
    ///
    /// Panics when `level` is 0 or exceeds [`ModwtDecomposition::levels`].
    pub fn detail(&self, level: usize) -> &[f64] {
        assert!(
            level >= 1 && level <= self.details.len(),
            "level {level} out of range 1..={}",
            self.details.len()
        );
        &self.details[level - 1]
    }

    /// The smooth (scaling) coefficients at the coarsest level.
    pub fn smooth(&self) -> &[f64] {
        &self.smooth
    }

    /// Total energy across all bands; equals the signal energy (the MODWT
    /// is an energy-preserving, if redundant, transform).
    pub fn energy(&self) -> f64 {
        let d: f64 = self
            .details
            .iter()
            .flat_map(|b| b.iter())
            .map(|v| v * v)
            .sum();
        let s: f64 = self.smooth.iter().map(|v| v * v).sum();
        d + s
    }

    /// Inverts the transform, returning the original signal.
    pub fn reconstruct(&self) -> Vec<f64> {
        let mut current = self.smooth.clone();
        for (j, detail) in self.details.iter().enumerate().rev() {
            current = inverse_level(&current, detail, self.wavelet, j + 1);
        }
        current
    }
}

/// Multi-level MODWT of `signal` (any length ≥ 1).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `levels == 0` or when the
/// implied filter span `(2^levels - 1)(L - 1) + 1` exceeds the signal
/// length (coefficients would wrap more than once), [`Error::Empty`] for an
/// empty signal, and [`Error::NonFinite`] for NaN input.
///
/// # Examples
///
/// ```
/// use aging_wavelet::{modwt, Wavelet};
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let signal: Vec<f64> = (0..100).map(|i| (i as f64 * 0.2).cos()).collect();
/// let dec = modwt(&signal, Wavelet::Haar, 3)?;
/// assert_eq!(dec.detail(2).len(), 100); // undecimated
/// let back = dec.reconstruct();
/// assert!(signal.iter().zip(&back).all(|(a, b)| (a - b).abs() < 1e-9));
/// # Ok(())
/// # }
/// ```
pub fn modwt(signal: &[f64], wavelet: Wavelet, levels: usize) -> Result<ModwtDecomposition> {
    Error::require_len(signal, 1)?;
    Error::require_finite(signal)?;
    if levels == 0 {
        return Err(Error::invalid("levels", "must be at least 1"));
    }
    let l = wavelet.filter_len();
    let span = (1usize << levels)
        .saturating_sub(1)
        .saturating_mul(l - 1)
        .saturating_add(1);
    if span > signal.len() {
        return Err(Error::invalid(
            "levels",
            format!(
                "level-{levels} filter span {span} exceeds signal length {}",
                signal.len()
            ),
        ));
    }

    let mut details = Vec::with_capacity(levels);
    let mut current = signal.to_vec();
    for j in 1..=levels {
        let (smooth, detail) = forward_level(&current, wavelet, j);
        details.push(detail);
        current = smooth;
    }
    Ok(ModwtDecomposition {
        wavelet,
        details,
        smooth: current,
    })
}

/// One forward MODWT step at level `j` (1-based).
fn forward_level(v_prev: &[f64], wavelet: Wavelet, j: usize) -> (Vec<f64>, Vec<f64>) {
    let n = v_prev.len();
    let h: Vec<f64> = wavelet
        .scaling_filter()
        .iter()
        .map(|c| c / std::f64::consts::SQRT_2)
        .collect();
    let g: Vec<f64> = wavelet
        .wavelet_filter()
        .iter()
        .map(|c| c / std::f64::consts::SQRT_2)
        .collect();
    let step = 1usize << (j - 1);
    let mut smooth = vec![0.0; n];
    let mut detail = vec![0.0; n];
    for t in 0..n {
        let mut s = 0.0;
        let mut d = 0.0;
        for (l, (&hl, &gl)) in h.iter().zip(&g).enumerate() {
            // (t - step*l) mod n, computed without going negative.
            let offset = (step * l) % n;
            let idx = (t + n - offset) % n;
            s += hl * v_prev[idx];
            d += gl * v_prev[idx];
        }
        smooth[t] = s;
        detail[t] = d;
    }
    (smooth, detail)
}

/// One inverse MODWT step at level `j` (1-based).
fn inverse_level(smooth: &[f64], detail: &[f64], wavelet: Wavelet, j: usize) -> Vec<f64> {
    let n = smooth.len();
    let h: Vec<f64> = wavelet
        .scaling_filter()
        .iter()
        .map(|c| c / std::f64::consts::SQRT_2)
        .collect();
    let g: Vec<f64> = wavelet
        .wavelet_filter()
        .iter()
        .map(|c| c / std::f64::consts::SQRT_2)
        .collect();
    let step = 1usize << (j - 1);
    let mut out = vec![0.0; n];
    for t in 0..n {
        let mut acc = 0.0;
        for (l, (&hl, &gl)) in h.iter().zip(&g).enumerate() {
            let offset = (step * l) % n;
            let idx = (t + offset) % n;
            acc += hl * smooth[idx] + gl * detail[idx];
        }
        out[t] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn round_trip_non_dyadic_lengths() {
        for n in [7usize, 33, 100, 101] {
            let signal: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64).collect();
            let dec = modwt(&signal, Wavelet::Haar, 2).unwrap();
            assert_close(&signal, &dec.reconstruct(), 1e-10);
        }
    }

    #[test]
    fn round_trip_all_wavelets() {
        let signal: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.11).sin() + 0.3 * ((i * i) % 7) as f64)
            .collect();
        for w in Wavelet::ALL {
            let dec = modwt(&signal, w, 3).unwrap();
            assert_close(&signal, &dec.reconstruct(), 1e-9);
        }
    }

    #[test]
    fn energy_preserved() {
        let signal: Vec<f64> = (0..150).map(|i| (i as f64 * 0.4).sin() * 2.0).collect();
        let e0: f64 = signal.iter().map(|v| v * v).sum();
        for w in [Wavelet::Haar, Wavelet::Daubechies8] {
            let dec = modwt(&signal, w, 3).unwrap();
            assert!((dec.energy() - e0).abs() < 1e-8 * e0, "{w}");
        }
    }

    #[test]
    fn shift_invariance() {
        // Circularly shifting the input circularly shifts every band.
        let n = 64;
        let signal: Vec<f64> = (0..n).map(|i| ((i * 5) % 11) as f64).collect();
        let mut shifted = signal.clone();
        shifted.rotate_right(3);
        let a = modwt(&signal, Wavelet::Daubechies4, 2).unwrap();
        let b = modwt(&shifted, Wavelet::Daubechies4, 2).unwrap();
        let mut d1 = a.detail(2).to_vec();
        d1.rotate_right(3);
        assert_close(&d1, b.detail(2), 1e-10);
    }

    #[test]
    fn bands_have_signal_length() {
        let signal = vec![1.0; 37];
        let dec = modwt(&signal, Wavelet::Haar, 4).unwrap();
        assert_eq!(dec.levels(), 4);
        assert_eq!(dec.len(), 37);
        for j in 1..=4 {
            assert_eq!(dec.detail(j).len(), 37);
        }
        assert_eq!(dec.smooth().len(), 37);
        assert!(!dec.is_empty());
    }

    #[test]
    fn constant_signal_zero_details() {
        let signal = vec![3.0; 50];
        let dec = modwt(&signal, Wavelet::Daubechies6, 2).unwrap();
        for j in 1..=2 {
            for &d in dec.detail(j) {
                assert!(d.abs() < 1e-10);
            }
        }
        // Smooth carries the level: V_J ≈ mean level (scaled).
        assert!(dec.smooth().iter().all(|&s| (s - 3.0).abs() < 1e-9));
    }

    #[test]
    fn guards() {
        assert!(modwt(&[], Wavelet::Haar, 1).is_err());
        assert!(modwt(&[1.0, 2.0], Wavelet::Haar, 0).is_err());
        // Span too large: levels that exceed signal support.
        assert!(modwt(&[1.0, 2.0, 3.0], Wavelet::Daubechies12, 3).is_err());
        assert!(modwt(&[1.0, f64::NAN, 2.0], Wavelet::Haar, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn detail_bounds() {
        let dec = modwt(&[1.0, 2.0, 3.0, 4.0], Wavelet::Haar, 1).unwrap();
        let _ = dec.detail(2);
    }
}
