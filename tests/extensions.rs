//! Integration tests for the extension modules: assessment reports,
//! multi-resource fusion, multi-process machines, seasonal trend tests,
//! surrogate significance and denoising — all driven end-to-end from the
//! simulator.

use aging_core::fusion::{evaluate_fusion, FusionRule};
use aging_core::report::{assess, AssessmentConfig, Verdict};
use aging_fractal::spectrum::{mfdfa, MfdfaConfig};
use aging_fractal::surrogate::phase_surrogate;
use aging_memsim::{MultiMachine, MultiScenario};
use aging_timeseries::trend::seasonal_mann_kendall;
use holder_aging::prelude::*;

fn tiny_detector() -> DetectorConfig {
    DetectorConfig {
        holder_radius: 16,
        holder_max_lag: 4,
        dimension_window: 64,
        dimension_stride: 16,
        baseline_windows: 8,
        ..DetectorConfig::default()
    }
}

#[test]
fn assessment_matches_detector_and_crash_ground_truth() {
    let report = simulate(&Scenario::tiny_aging(41, 192.0), 6.0 * 3600.0).unwrap();
    let crash = report.first_crash().expect("must crash");
    let series = report.log.series(Counter::AvailableBytes).unwrap();
    let config = AssessmentConfig {
        detector: tiny_detector(),
        ..AssessmentConfig::default()
    };
    let a = assess(&series, &config).unwrap();
    assert_eq!(a.verdict, Verdict::Critical);
    let alarm = a.alarm_secs().expect("critical implies alarm");
    assert!(alarm < crash.time.as_secs());
    // The report text mentions everything an operator needs.
    let text = a.to_string();
    for needle in ["trend", "holder exponent", "detector", "verdict"] {
        assert!(text.contains(needle), "missing `{needle}` in report");
    }
}

#[test]
fn fusion_over_both_paper_resources() {
    let report = simulate(&Scenario::tiny_aging(42, 192.0), 6.0 * 3600.0).unwrap();
    let members = vec![
        (
            Counter::AvailableBytes,
            PredictorSpec::HolderDimension(tiny_detector()),
        ),
        (
            Counter::UsedSwapBytes,
            PredictorSpec::Threshold {
                level: 8.0 * 1024.0 * 1024.0,
                direction: ResourceDirection::Filling,
            },
        ),
    ];
    let outcomes = evaluate_fusion(&members, FusionRule::Any, &report).unwrap();
    assert!(outcomes[0].detected());

    // The healthy control stays quiet under the strict rule.
    let healthy = simulate(&Scenario::tiny_aging(43, 0.0), 4.0 * 3600.0).unwrap();
    let quiet = evaluate_fusion(&members, FusionRule::All, &healthy).unwrap();
    assert!(!quiet[0].false_alarm());
}

#[test]
fn multi_process_machine_with_detector_driven_restarts() {
    let mut scenario = MultiScenario::leaky_app_with_neighbours(44, 96.0);
    scenario.machine = aging_memsim::MachineConfig::tiny_test();
    for p in &mut scenario.processes {
        p.workload = WorkloadConfig::tiny_test();
        p.workload.base_rate = 6.0;
        p.workload.batch_bytes = Bytes::ZERO;
    }
    let mut machine = MultiMachine::boot(&scenario).unwrap();
    let mut detector = HolderDimensionDetector::new(tiny_detector()).unwrap();
    let mut last_len = 0;
    let mut restarts = 0;
    while machine.now().as_hours() < 5.0 {
        if machine.step().is_some() {
            break;
        }
        let len = machine.log().len();
        if len > last_len {
            last_len = len;
            let v = machine.log().values(Counter::AvailableBytes)[len - 1];
            if let Some(alert) = detector.push(v).unwrap() {
                if alert.level == AlertLevel::Alarm {
                    let suspect = machine.leak_suspect().unwrap().to_string();
                    assert_eq!(suspect, "app", "attribution must find the leaker");
                    machine.restart_process(&suspect).unwrap();
                    detector.reset();
                    restarts += 1;
                }
            }
        }
    }
    assert!(
        !machine.is_crashed(),
        "selective restarts must prevent the crash"
    );
    assert!(restarts >= 2, "detector must have driven restarts");
}

#[test]
fn seasonal_trend_test_on_diurnal_simulation() {
    // Seasonal MK must separate a leaking diurnal machine from a healthy
    // one. Committed bytes wander like a random walk even when healthy, so
    // the iid-calibrated p-value is not trustworthy on its own; the robust
    // discriminator is the rank correlation tau, which saturates near 1
    // under a genuine leak and stays well below that under healthy wander.
    let run = |faults: FaultPlan| {
        let mut workload = WorkloadConfig::web_server_diurnal();
        workload.base_rate = 12.0;
        // Short day so several cycles fit in a fast test.
        workload.diurnal_period_secs = 3600.0;
        let scenario = Scenario {
            name: "diurnal-int".into(),
            machine: MachineConfig::workstation_nt4(),
            workload,
            faults,
            seed: 45,
        };
        let report = simulate(&scenario, 10.0 * 3600.0).unwrap();
        let series = report.log.series(Counter::CommittedBytes).unwrap();
        // Samples per "day": 3600 s / 30 s = 120.
        // Skip the boot warmup (first simulated hour) which is a real trend.
        seasonal_mann_kendall(&series.values()[120..], 120).unwrap()
    };
    let healthy = run(FaultPlan::healthy());
    let aging = run(FaultPlan::aging(24.0));
    assert!(
        aging.tau > 0.9,
        "24 MiB/h leak must trend monotonically, tau = {}",
        aging.tau
    );
    assert!(
        healthy.tau < 0.8,
        "healthy wander must not saturate tau, tau = {}",
        healthy.tau
    );
    assert!(
        aging.tau > healthy.tau + 0.25,
        "leak must dominate healthy wander: aging {} vs healthy {}",
        aging.tau,
        healthy.tau
    );
}

#[test]
fn surrogate_controls_on_simulated_counters() {
    // Phase surrogates of a monitor log keep variance but need not keep
    // the aging structure; both must be analyzable without error.
    let report = simulate(&Scenario::tiny_aging(46, 64.0), 3.0 * 3600.0).unwrap();
    let series = report.log.series(Counter::AvailableBytes).unwrap();
    let surrogate = phase_surrogate(series.values(), 1).unwrap();
    let w_orig = mfdfa(series.values(), &MfdfaConfig::default())
        .unwrap()
        .width();
    let w_surr = mfdfa(&surrogate, &MfdfaConfig::default()).unwrap().width();
    assert!(w_orig.is_finite() && w_surr.is_finite());
}

#[test]
fn denoised_counter_still_carries_the_trend() {
    let report = simulate(&Scenario::tiny_aging(47, 128.0), 2.0 * 3600.0).unwrap();
    let series = report.log.series(Counter::AvailableBytes).unwrap();
    let out = aging_wavelet::denoise::denoise(
        series.values(),
        Wavelet::Daubechies8,
        4,
        aging_wavelet::denoise::Shrinkage::Soft,
    )
    .unwrap();
    let mk_raw = MannKendall::test(series.values()).unwrap();
    let mk_den = MannKendall::test(&out.signal).unwrap();
    assert_eq!(
        mk_raw.direction(0.05),
        mk_den.direction(0.05),
        "denoising must not destroy the depletion trend"
    );
}
