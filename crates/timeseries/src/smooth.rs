//! Smoothing filters: centred moving average/median and exponential
//! weighting.
//!
//! Monitor counters carry sampling jitter; these filters produce the
//! smoothed companions used for display and for trend pre-processing
//! (never feed smoothed data to the fractal estimators — smoothing
//! destroys exactly the fine-scale structure they measure).

use crate::error::{Error, Result};
use crate::stats;

/// Centred moving average of half-width `radius` (window `2·radius + 1`,
/// clamped at the edges).
///
/// # Errors
///
/// Returns [`Error::Empty`] for empty input, [`Error::InvalidParameter`]
/// for `radius == 0`, and [`Error::NonFinite`] for NaN input.
pub fn moving_average(data: &[f64], radius: usize) -> Result<Vec<f64>> {
    Error::require_len(data, 1)?;
    Error::require_finite(data)?;
    if radius == 0 {
        return Err(Error::invalid("radius", "must be positive"));
    }
    let n = data.len();
    let mut out = Vec::with_capacity(n);
    // Prefix sums for O(n) windows.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &v in data {
        prefix.push(prefix.last().unwrap() + v);
    }
    for t in 0..n {
        let lo = t.saturating_sub(radius);
        let hi = (t + radius).min(n - 1);
        let sum = prefix[hi + 1] - prefix[lo];
        out.push(sum / (hi - lo + 1) as f64);
    }
    Ok(out)
}

/// Centred moving median of half-width `radius` — robust to spikes.
///
/// # Errors
///
/// Same conditions as [`moving_average`].
pub fn moving_median(data: &[f64], radius: usize) -> Result<Vec<f64>> {
    Error::require_len(data, 1)?;
    Error::require_finite(data)?;
    if radius == 0 {
        return Err(Error::invalid("radius", "must be positive"));
    }
    let n = data.len();
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        let lo = t.saturating_sub(radius);
        let hi = (t + radius).min(n - 1);
        out.push(stats::median(&data[lo..=hi])?);
    }
    Ok(out)
}

/// Exponentially weighted moving average with smoothing factor
/// `alpha ∈ (0, 1]` (1 = no smoothing).
///
/// # Errors
///
/// Returns [`Error::Empty`] for empty input, [`Error::InvalidParameter`]
/// for `alpha` outside `(0, 1]`, and [`Error::NonFinite`] for NaN input.
pub fn ewma(data: &[f64], alpha: f64) -> Result<Vec<f64>> {
    Error::require_len(data, 1)?;
    Error::require_finite(data)?;
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(Error::invalid("alpha", "must lie in (0, 1]"));
    }
    let mut out = Vec::with_capacity(data.len());
    let mut level = data[0];
    out.push(level);
    for &v in &data[1..] {
        level = alpha * v + (1.0 - alpha) * level;
        out.push(level);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_flattens_alternation() {
        let d = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0];
        let s = moving_average(&d, 1).unwrap();
        // Interior: mean of {−1, 1, −1} style windows.
        for &v in &s[1..6] {
            assert!(v.abs() < 0.4, "{v}");
        }
        assert_eq!(s.len(), d.len());
    }

    #[test]
    fn moving_average_preserves_constants() {
        let d = [4.0; 10];
        assert_eq!(moving_average(&d, 3).unwrap(), vec![4.0; 10]);
    }

    #[test]
    fn moving_average_matches_naive() {
        let d: Vec<f64> = (0..50).map(|i| ((i * 13 + 7) % 17) as f64).collect();
        let fast = moving_average(&d, 4).unwrap();
        for t in 0..d.len() {
            let lo = t.saturating_sub(4);
            let hi = (t + 4).min(d.len() - 1);
            let naive = d[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64;
            assert!((fast[t] - naive).abs() < 1e-12);
        }
    }

    #[test]
    fn moving_median_rejects_spikes() {
        let mut d = vec![10.0; 21];
        d[10] = 1e6;
        let s = moving_median(&d, 2).unwrap();
        assert!(s.iter().all(|&v| v == 10.0));
    }

    #[test]
    fn ewma_converges_to_level() {
        let d = vec![5.0; 100];
        let s = ewma(&d, 0.2).unwrap();
        assert!((s.last().unwrap() - 5.0).abs() < 1e-12);
        // Step response: approaches the new level monotonically.
        let mut step = vec![0.0; 50];
        step.extend(vec![1.0; 100]);
        let s = ewma(&step, 0.1).unwrap();
        assert!(s[60] < s[100]);
        assert!((s.last().unwrap() - 1.0).abs() < 0.01);
    }

    #[test]
    fn ewma_alpha_one_is_identity() {
        let d = [3.0, 1.0, 4.0, 1.0];
        assert_eq!(ewma(&d, 1.0).unwrap(), d.to_vec());
    }

    #[test]
    fn guards() {
        assert!(moving_average(&[], 1).is_err());
        assert!(moving_average(&[1.0], 0).is_err());
        assert!(moving_median(&[1.0, f64::NAN], 1).is_err());
        assert!(ewma(&[1.0], 0.0).is_err());
        assert!(ewma(&[1.0], 1.5).is_err());
    }
}
