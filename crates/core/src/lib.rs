//! # aging-core
//!
//! The primary contribution of the `holder-aging` workspace: the
//! Hölder-dimension software-aging detector of *"Software Aging and
//! Multifractality of Memory Resources"* (Shereshevsky, Cukic, Crowell,
//! Gandikota, Liu — DSN 2003), together with the classical trend-based
//! baselines, a scoring harness, multifractality-progression analysis and
//! rejuvenation policy simulation.
//!
//! - [`detector`] — the streaming Hölder-dimension detector (the paper's
//!   method: Hölder trace → windowed fractal dimension → two-jump alarm);
//! - [`baseline`] — Mann–Kendall/Sen-slope, OLS and threshold predictors
//!   behind the common [`baseline::AgingPredictor`] trait;
//! - [`eval`] — segment-based alarm scoring (lead time, misses, false
//!   alarms) across simulated fleets;
//! - [`mod@progression`] — early-vs-late-life multifractality measurements;
//! - [`rejuvenation`] — availability comparison of restart policies.
//!
//! # Examples
//!
//! ```
//! use aging_core::detector::{analyze, DetectorConfig};
//! use aging_memsim::{simulate, Counter, Scenario};
//!
//! # fn main() -> Result<(), aging_timeseries::Error> {
//! // Simulate an aggressively aging machine and analyse its free memory.
//! let report = simulate(&Scenario::tiny_aging(42, 512.0), 4.0 * 3600.0)?;
//! let series = report.log.series(Counter::AvailableBytes)?;
//! let analysis = analyze(series.values(), &DetectorConfig {
//!     holder_radius: 16,
//!     holder_max_lag: 4,
//!     dimension_window: 64,
//!     dimension_stride: 8,
//!     baseline_windows: 4,
//!     ..DetectorConfig::default()
//! })?;
//! // The Hölder and dimension traces are available for inspection.
//! assert!(!analysis.dimension_trace.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod detector;
pub mod eval;
pub mod fusion;
pub mod progression;
pub mod rejuvenation;
pub mod report;
pub mod roc;

pub use baseline::{AgingPredictor, ResourceDirection, TrendPredictorConfig};
pub use detector::{Alert, AlertLevel, DetectorConfig, HolderDimensionDetector};
pub use eval::{compare, evaluate, ComparisonRow, PredictorSpec, SegmentOutcome};
pub use fusion::{evaluate_fusion, FusionPredictor, FusionRule};
pub use progression::{progression, ProgressionConfig, SegmentMultifractality};
pub use rejuvenation::{run_policy, OutageCosts, Policy, PolicyOutcome};
pub use report::{assess, Assessment, AssessmentConfig, Verdict};
pub use roc::{sweep_detector, RocPoint, SweepParameter};
