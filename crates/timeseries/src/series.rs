//! The [`TimeSeries`] container: a uniformly sampled sequence of `f64`
//! observations with an origin timestamp and a fixed sampling period.
//!
//! All analyses in the workspace operate either on raw `&[f64]` slices or on
//! this container; the container exists so that timestamps survive slicing,
//! resampling and windowing without manual bookkeeping.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// A uniformly sampled time series.
///
/// Samples are `f64` values observed at instants `t0 + i * dt` for
/// `i = 0..len`. The sampling period `dt` is strictly positive and the
/// origin `t0` is expressed in the same (arbitrary) unit, typically seconds.
///
/// # Examples
///
/// ```
/// use aging_timeseries::TimeSeries;
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let ts = TimeSeries::from_values(0.0, 30.0, vec![1.0, 2.0, 3.0])?;
/// assert_eq!(ts.len(), 3);
/// assert_eq!(ts.time_at(2), 60.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    t0: f64,
    dt: f64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with origin `t0` and sampling period `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `dt` is not a finite positive
    /// number or `t0` is not finite.
    pub fn new(t0: f64, dt: f64) -> Result<Self> {
        Self::from_values(t0, dt, Vec::new())
    }

    /// Creates a series from existing samples.
    ///
    /// Non-finite samples are allowed at construction (they may denote
    /// missing data and can be repaired with [`crate::interp`]); analyses
    /// that require finite data validate separately.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `dt` is not a finite positive
    /// number or `t0` is not finite.
    pub fn from_values(t0: f64, dt: f64, values: Vec<f64>) -> Result<Self> {
        if !dt.is_finite() || dt <= 0.0 {
            return Err(Error::invalid("dt", "must be finite and positive"));
        }
        if !t0.is_finite() {
            return Err(Error::invalid("t0", "must be finite"));
        }
        Ok(TimeSeries { t0, dt, values })
    }

    /// Builds a series by evaluating `f` at each sample instant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TimeSeries::from_values`].
    pub fn from_fn(t0: f64, dt: f64, len: usize, mut f: impl FnMut(f64) -> f64) -> Result<Self> {
        let mut values = Vec::with_capacity(len);
        for i in 0..len {
            values.push(f(t0 + i as f64 * dt));
        }
        Self::from_values(t0, dt, values)
    }

    /// Origin timestamp of the first sample.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Sampling period.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Timestamp of sample `i` (which need not be in range).
    pub fn time_at(&self, i: usize) -> f64 {
        self.t0 + i as f64 * self.dt
    }

    /// Timestamp of the last sample, or `None` when empty.
    pub fn end_time(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.time_at(self.len() - 1))
        }
    }

    /// Index of the sample closest to time `t`, clamped to the valid range.
    ///
    /// Returns `None` when the series is empty.
    pub fn index_of_time(&self, t: f64) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        let raw = ((t - self.t0) / self.dt).round();
        let clamped = raw.clamp(0.0, (self.len() - 1) as f64);
        Some(clamped as usize)
    }

    /// Immutable view of the samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of the samples.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series and returns the underlying sample vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Appends one sample (streaming ingestion).
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Appends many samples.
    pub fn extend_from_slice(&mut self, values: &[f64]) {
        self.values.extend_from_slice(values);
    }

    /// Iterates over `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.time_at(i), v))
    }

    /// Returns the sub-series covering sample indices `start..end`
    /// (end exclusive), with timestamps preserved.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the range is out of bounds or
    /// reversed.
    pub fn slice(&self, start: usize, end: usize) -> Result<TimeSeries> {
        if start > end || end > self.len() {
            return Err(Error::invalid(
                "range",
                format!("{start}..{end} out of bounds for length {}", self.len()),
            ));
        }
        Ok(TimeSeries {
            t0: self.time_at(start),
            dt: self.dt,
            values: self.values[start..end].to_vec(),
        })
    }

    /// Returns the sub-series of samples with timestamps in `[from, to)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `from > to`.
    pub fn slice_time(&self, from: f64, to: f64) -> Result<TimeSeries> {
        if from > to {
            return Err(Error::invalid("range", "from must not exceed to"));
        }
        let start = ((from - self.t0) / self.dt).ceil().max(0.0) as usize;
        let end = (((to - self.t0) / self.dt).ceil().max(0.0) as usize).min(self.len());
        let start = start.min(end);
        self.slice(start, end)
    }

    /// Applies `f` to every sample, producing a new series on the same grid.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> TimeSeries {
        TimeSeries {
            t0: self.t0,
            dt: self.dt,
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// First differences `x[i+1] - x[i]`, on the same grid shifted by one
    /// sample (length shrinks by one).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooShort`] when fewer than two samples are present.
    pub fn increments(&self) -> Result<TimeSeries> {
        Error::require_len(&self.values, 2)?;
        let values = self.values.windows(2).map(|w| w[1] - w[0]).collect();
        Ok(TimeSeries {
            t0: self.t0 + self.dt,
            dt: self.dt,
            values,
        })
    }

    /// Cumulative sum of the samples (the "profile" used by DFA-style
    /// analyses), mean-centred first so the profile has no linear drift from
    /// the mean level.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] on an empty series.
    pub fn profile(&self) -> Result<TimeSeries> {
        Error::require_len(&self.values, 1)?;
        let mean = self.values.iter().sum::<f64>() / self.len() as f64;
        let mut acc = 0.0;
        let values = self
            .values
            .iter()
            .map(|&v| {
                acc += v - mean;
                acc
            })
            .collect();
        Ok(TimeSeries {
            t0: self.t0,
            dt: self.dt,
            values,
        })
    }

    /// Downsamples by an integer factor, averaging each block of `factor`
    /// consecutive samples. A trailing partial block is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `factor == 0`, and
    /// [`Error::TooShort`] when no complete block fits.
    pub fn decimate_mean(&self, factor: usize) -> Result<TimeSeries> {
        if factor == 0 {
            return Err(Error::invalid("factor", "must be positive"));
        }
        let blocks = self.len() / factor;
        if blocks == 0 {
            return Err(Error::TooShort {
                required: factor,
                actual: self.len(),
            });
        }
        let values = (0..blocks)
            .map(|b| {
                let chunk = &self.values[b * factor..(b + 1) * factor];
                chunk.iter().sum::<f64>() / factor as f64
            })
            .collect();
        Ok(TimeSeries {
            // Block value is attributed to the centre of the block.
            t0: self.t0 + (factor as f64 - 1.0) / 2.0 * self.dt,
            dt: self.dt * factor as f64,
            values,
        })
    }

    /// Checks that every sample is finite.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] at the first offending index.
    pub fn require_finite(&self) -> Result<()> {
        Error::require_finite(&self.values)
    }
}

impl std::ops::Index<usize> for TimeSeries {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.values[index]
    }
}

impl AsRef<[f64]> for TimeSeries {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: &[f64]) -> TimeSeries {
        TimeSeries::from_values(0.0, 1.0, values.to_vec()).unwrap()
    }

    #[test]
    fn construction_rejects_bad_dt() {
        assert!(TimeSeries::new(0.0, 0.0).is_err());
        assert!(TimeSeries::new(0.0, -1.0).is_err());
        assert!(TimeSeries::new(0.0, f64::NAN).is_err());
        assert!(TimeSeries::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn timestamps_follow_grid() {
        let s = TimeSeries::from_values(100.0, 30.0, vec![0.0; 4]).unwrap();
        assert_eq!(s.time_at(0), 100.0);
        assert_eq!(s.time_at(3), 190.0);
        assert_eq!(s.end_time(), Some(190.0));
    }

    #[test]
    fn index_of_time_clamps() {
        let s = TimeSeries::from_values(0.0, 10.0, vec![0.0; 5]).unwrap();
        assert_eq!(s.index_of_time(-100.0), Some(0));
        assert_eq!(s.index_of_time(21.0), Some(2));
        assert_eq!(s.index_of_time(25.0), Some(3)); // rounds to nearest
        assert_eq!(s.index_of_time(1e9), Some(4));
        assert_eq!(TimeSeries::new(0.0, 1.0).unwrap().index_of_time(0.0), None);
    }

    #[test]
    fn from_fn_evaluates_on_grid() {
        let s = TimeSeries::from_fn(1.0, 0.5, 3, |t| 2.0 * t).unwrap();
        assert_eq!(s.values(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn slice_preserves_timestamps() {
        let s = TimeSeries::from_values(10.0, 2.0, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let sub = s.slice(1, 3).unwrap();
        assert_eq!(sub.t0(), 12.0);
        assert_eq!(sub.values(), &[2.0, 3.0]);
        assert!(s.slice(3, 1).is_err());
        assert!(s.slice(0, 5).is_err());
    }

    #[test]
    fn slice_time_selects_half_open_interval() {
        let s = TimeSeries::from_values(0.0, 1.0, vec![0.0, 1.0, 2.0, 3.0, 4.0]).unwrap();
        let sub = s.slice_time(1.0, 4.0).unwrap();
        assert_eq!(sub.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(sub.t0(), 1.0);
        // Out-of-range windows clip gracefully.
        assert_eq!(s.slice_time(-5.0, 100.0).unwrap().len(), 5);
        assert_eq!(s.slice_time(100.0, 200.0).unwrap().len(), 0);
    }

    #[test]
    fn increments_shrink_by_one() {
        let s = ts(&[1.0, 4.0, 9.0]);
        let d = s.increments().unwrap();
        assert_eq!(d.values(), &[3.0, 5.0]);
        assert_eq!(d.t0(), 1.0);
        assert!(ts(&[1.0]).increments().is_err());
    }

    #[test]
    fn profile_is_centred_cumsum() {
        let s = ts(&[1.0, 2.0, 3.0]);
        let p = s.profile().unwrap();
        // mean = 2: centred = [-1, 0, 1], cumsum = [-1, -1, 0]
        assert_eq!(p.values(), &[-1.0, -1.0, 0.0]);
    }

    #[test]
    fn decimate_mean_averages_blocks() {
        let s = ts(&[1.0, 3.0, 5.0, 7.0, 100.0]);
        let d = s.decimate_mean(2).unwrap();
        assert_eq!(d.values(), &[2.0, 6.0]);
        assert_eq!(d.dt(), 2.0);
        assert_eq!(d.t0(), 0.5);
        assert!(s.decimate_mean(0).is_err());
        assert!(ts(&[1.0]).decimate_mean(2).is_err());
    }

    #[test]
    fn iter_yields_time_value_pairs() {
        let s = TimeSeries::from_values(5.0, 2.0, vec![10.0, 20.0]).unwrap();
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![(5.0, 10.0), (7.0, 20.0)]);
    }

    #[test]
    fn map_preserves_grid() {
        let s = TimeSeries::from_values(5.0, 2.0, vec![1.0, 2.0]).unwrap();
        let m = s.map(|v| v * 10.0);
        assert_eq!(m.t0(), 5.0);
        assert_eq!(m.dt(), 2.0);
        assert_eq!(m.values(), &[10.0, 20.0]);
    }

    #[test]
    fn push_and_extend() {
        let mut s = TimeSeries::new(0.0, 1.0).unwrap();
        s.push(1.0);
        s.extend_from_slice(&[2.0, 3.0]);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn implements_serde_traits() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<TimeSeries>();
    }
}
