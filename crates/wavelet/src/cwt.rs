//! Continuous wavelet transform (CWT) on a discrete scale grid.
//!
//! The CWT `W(s, t) = (1/√s) Σ_u x[u] ψ((u − t)/s)` probes the signal with
//! a translated, dilated analysing wavelet. The workspace uses it for
//! modulus-maxima style inspection of singularities; heavy-duty Hölder
//! estimation goes through the cheaper wavelet leaders instead.

use aging_par::Pool;
use aging_timeseries::{Error, Result};

/// Analysing wavelets for the CWT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum CwtWavelet {
    /// Mexican hat (negative second derivative of a Gaussian, 2 vanishing
    /// moments) — the classic choice for singularity detection.
    #[default]
    MexicanHat,
    /// Real-valued Morlet (cosine-modulated Gaussian, centre frequency 5).
    /// Approximately admissible; good for oscillatory content.
    MorletReal,
}

impl CwtWavelet {
    /// Evaluates the mother wavelet at `t`.
    pub fn evaluate(&self, t: f64) -> f64 {
        match self {
            CwtWavelet::MexicanHat => {
                // Unit-L2-norm Mexican hat.
                let c = 2.0 / (3.0_f64.sqrt() * std::f64::consts::PI.powf(0.25));
                c * (1.0 - t * t) * (-0.5 * t * t).exp()
            }
            CwtWavelet::MorletReal => {
                let omega0: f64 = 5.0;
                let c = std::f64::consts::PI.powf(-0.25);
                // Correction term keeps the mean (numerically) zero.
                let k = (-0.5 * omega0 * omega0).exp();
                c * ((omega0 * t).cos() - k) * (-0.5 * t * t).exp()
            }
        }
    }

    /// Half-width (in mother-wavelet time units) beyond which the wavelet
    /// is treated as zero.
    pub fn support_radius(&self) -> f64 {
        6.0
    }
}

impl std::fmt::Display for CwtWavelet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CwtWavelet::MexicanHat => "mexican-hat",
            CwtWavelet::MorletReal => "morlet-real",
        };
        f.write_str(s)
    }
}

/// Result of a CWT: one row of coefficients per scale.
#[derive(Debug, Clone, PartialEq)]
pub struct CwtResult {
    wavelet: CwtWavelet,
    scales: Vec<f64>,
    /// `coefficients[si][t]` = W(scales[si], t).
    coefficients: Vec<Vec<f64>>,
}

impl CwtResult {
    /// The analysing wavelet.
    pub fn wavelet(&self) -> CwtWavelet {
        self.wavelet
    }

    /// The scale grid.
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// Coefficient row for scale index `si`.
    ///
    /// # Panics
    ///
    /// Panics when `si` is out of range.
    pub fn row(&self, si: usize) -> &[f64] {
        &self.coefficients[si]
    }

    /// All rows, ordered like [`CwtResult::scales`].
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.coefficients
    }

    /// The scale index whose row has maximum energy — a crude dominant-scale
    /// indicator.
    pub fn dominant_scale_index(&self) -> usize {
        let mut best = 0;
        let mut best_e = f64::MIN;
        for (i, row) in self.coefficients.iter().enumerate() {
            let e: f64 = row.iter().map(|v| v * v).sum();
            if e > best_e {
                best_e = e;
                best = i;
            }
        }
        best
    }

    /// Positions of local modulus maxima along time at scale index `si`:
    /// |W| above `threshold`, strictly greater than the left neighbour and
    /// at least the right neighbour (so the first sample of a flat peak
    /// plateau is reported).
    ///
    /// # Panics
    ///
    /// Panics when `si` is out of range.
    pub fn modulus_maxima(&self, si: usize, threshold: f64) -> Vec<usize> {
        let row = &self.coefficients[si];
        let mut out = Vec::new();
        for t in 1..row.len().saturating_sub(1) {
            let m = row[t].abs();
            if m > threshold && m > row[t - 1].abs() && m >= row[t + 1].abs() {
                out.push(t);
            }
        }
        out
    }
}

/// Computes the CWT of `signal` on the given scale grid (scales in samples,
/// each ≥ 0.5). Direct convolution with truncated support; cost is
/// `O(n · Σ s)`.
///
/// # Errors
///
/// Returns [`Error::Empty`] / [`Error::NonFinite`] for bad signals and
/// [`Error::InvalidParameter`] for an empty or invalid scale grid.
///
/// # Examples
///
/// ```
/// use aging_wavelet::cwt::{cwt, CwtWavelet};
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let signal: Vec<f64> = (0..256).map(|i| (i as f64 / 8.0).sin()).collect();
/// let res = cwt(&signal, CwtWavelet::MexicanHat, &[2.0, 8.0, 32.0])?;
/// assert_eq!(res.rows().len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn cwt(signal: &[f64], wavelet: CwtWavelet, scales: &[f64]) -> Result<CwtResult> {
    cwt_in(signal, wavelet, scales, Pool::global())
}

/// [`cwt`] on an explicit pool: scales are computed in parallel, one row
/// per scale, so the output is bit-identical to the sequential transform
/// for any pool size.
///
/// # Errors
///
/// Same failure modes as [`cwt`].
pub fn cwt_in(
    signal: &[f64],
    wavelet: CwtWavelet,
    scales: &[f64],
    pool: &Pool,
) -> Result<CwtResult> {
    Error::require_len(signal, 2)?;
    Error::require_finite(signal)?;
    if scales.is_empty() {
        return Err(Error::invalid("scales", "must not be empty"));
    }
    if let Some(&bad) = scales.iter().find(|&&s| !s.is_finite() || s < 0.5) {
        return Err(Error::invalid(
            "scales",
            format!("scales must be finite and >= 0.5, got {bad}"),
        ));
    }

    let n = signal.len();
    let coefficients = pool.map(scales, |&s| {
        let radius = (wavelet.support_radius() * s).ceil() as usize;
        let norm = 1.0 / s.sqrt();
        let mut row = vec![0.0; n];
        // Precompute sampled wavelet for this scale.
        let kernel: Vec<f64> = (-(radius as i64)..=radius as i64)
            .map(|d| wavelet.evaluate(d as f64 / s))
            .collect();
        for (t, out) in row.iter_mut().enumerate() {
            let mut acc = 0.0;
            let lo = t.saturating_sub(radius);
            let hi = (t + radius).min(n - 1);
            for u in lo..=hi {
                let kidx = (u as i64 - t as i64 + radius as i64) as usize;
                acc += signal[u] * kernel[kidx];
            }
            *out = norm * acc;
        }
        row
    });
    Ok(CwtResult {
        wavelet,
        scales: scales.to_vec(),
        coefficients,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mexican_hat_shape() {
        let w = CwtWavelet::MexicanHat;
        // Positive peak at 0, negative lobes beyond |t| = 1.
        assert!(w.evaluate(0.0) > 0.0);
        assert!(w.evaluate(1.5) < 0.0);
        assert!(w.evaluate(-1.5) < 0.0);
        // Even function.
        assert!((w.evaluate(0.7) - w.evaluate(-0.7)).abs() < 1e-12);
    }

    #[test]
    fn wavelets_have_near_zero_mean() {
        for w in [CwtWavelet::MexicanHat, CwtWavelet::MorletReal] {
            let dt = 0.001;
            let mean: f64 = (-20_000..20_000)
                .map(|i| w.evaluate(i as f64 * dt) * dt)
                .sum();
            assert!(mean.abs() < 1e-6, "{w}: mean {mean}");
        }
    }

    #[test]
    fn mexican_hat_near_unit_norm() {
        let dt = 0.001;
        let e: f64 = (-20_000..20_000)
            .map(|i| {
                let v = CwtWavelet::MexicanHat.evaluate(i as f64 * dt);
                v * v * dt
            })
            .sum();
        assert!((e - 1.0).abs() < 1e-3, "energy {e}");
    }

    #[test]
    fn zero_signal_zero_coefficients() {
        let res = cwt(&vec![0.0; 64], CwtWavelet::MexicanHat, &[2.0, 4.0]).unwrap();
        for row in res.rows() {
            assert!(row.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn oscillation_peaks_at_matching_scale() {
        // Mexican hat responds maximally when scale ≈ period / (2π/√2.5)...
        // rather than pin the constant, check the energy is unimodal-ish and
        // the dominant scale is interior.
        let period = 16.0;
        let signal: Vec<f64> = (0..512)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period).sin())
            .collect();
        let scales = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let res = cwt(&signal, CwtWavelet::MexicanHat, &scales).unwrap();
        let dom = res.dominant_scale_index();
        assert!((1..=4).contains(&dom), "dominant index {dom}");
    }

    #[test]
    fn step_discontinuity_produces_maxima_line() {
        let signal: Vec<f64> = (0..128).map(|i| if i < 64 { 0.0 } else { 1.0 }).collect();
        let res = cwt(&signal, CwtWavelet::MexicanHat, &[2.0, 4.0]).unwrap();
        for si in 0..2 {
            let maxima = res.modulus_maxima(si, 0.05);
            assert!(
                maxima.iter().any(|&t| (t as i64 - 64).abs() <= 3),
                "scale {si}: maxima {maxima:?}"
            );
        }
    }

    #[test]
    fn guards() {
        assert!(cwt(&[], CwtWavelet::MexicanHat, &[2.0]).is_err());
        assert!(cwt(&[1.0, 2.0], CwtWavelet::MexicanHat, &[]).is_err());
        assert!(cwt(&[1.0, 2.0], CwtWavelet::MexicanHat, &[0.1]).is_err());
        assert!(cwt(&[1.0, f64::NAN], CwtWavelet::MexicanHat, &[2.0]).is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(CwtWavelet::MexicanHat.to_string(), "mexican-hat");
        assert_eq!(CwtWavelet::MorletReal.to_string(), "morlet-real");
    }
}
