//! Rejuvenation policy analysis — the motivating application of aging
//! prediction (Huang et al. 1995; Vaidyanathan et al. 2001).
//!
//! A crash costs a long repair outage; a planned rejuvenation costs a
//! short restart. A *predictive* policy that rejuvenates only when an
//! aging detector alarms should beat both doing nothing (crash outages)
//! and blind periodic restarts (unnecessary downtime) — experiment E7.
//!
//! **Superseded for new code by the `aging-rejuv` crate.** This module
//! is the *offline, single-machine* policy study: it replays a recorded
//! trace through a batch predictor and integrates downtime analytically.
//! The shared `RejuvPolicy` / `RejuvController` types in `aging-rejuv`
//! are the *online* face of the same policies — fleet-wide cooldown and
//! concurrency budgets, deterministic restart arbitration inside the
//! streaming supervisor, and the E18 closed-loop availability gate.
//! [`Policy`] here stays for the E2/E7/E8 batch comparisons, but policy
//! semantics added going forward land in `aging-rejuv`, not here.

// `!(x > 0)`-style comparisons below are deliberate: unlike `x <= 0`,
// they also reject NaN, which is exactly what parameter validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
use crate::eval::PredictorSpec;
use aging_memsim::{Machine, Scenario};
use aging_timeseries::{Error, Result};

/// A rejuvenation policy (offline study form).
///
/// For online, fleet-wide control use `aging_rejuv::RejuvPolicy` — the
/// shared policy type the streaming supervisor, serve tier and E18 gate
/// on. This enum remains only for the batch experiments (see the module
/// docs) and deliberately gains no new variants.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Policy {
    /// Never rejuvenate; ride every crash.
    None,
    /// Restart on a fixed period.
    Periodic {
        /// Seconds between planned restarts.
        period_secs: f64,
    },
    /// Restart when the given predictor alarms on the monitored counter.
    PredictorTriggered {
        /// The predictor to drive the policy with.
        spec: PredictorSpec,
        /// Monitored counter.
        counter: aging_memsim::Counter,
        /// Samples are withheld from the predictor for this long after
        /// every restart, so the post-restart heap-refill transient is not
        /// mistaken for depletion.
        cooldown_secs: f64,
    },
}

impl Policy {
    /// Policy name for reports.
    pub fn name(&self) -> String {
        match self {
            Policy::None => "no-rejuvenation".into(),
            Policy::Periodic { period_secs } => {
                format!("periodic-{:.1}h", period_secs / 3600.0)
            }
            Policy::PredictorTriggered { spec, .. } => format!("triggered-{}", spec.name()),
        }
    }
}

/// Cost model of outages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageCosts {
    /// Downtime of an unplanned crash (detection + repair + reboot),
    /// seconds.
    pub crash_downtime_secs: f64,
    /// Downtime of a planned rejuvenation, seconds.
    pub rejuvenation_downtime_secs: f64,
}

impl Default for OutageCosts {
    fn default() -> Self {
        OutageCosts {
            crash_downtime_secs: 1800.0,       // 30 min unplanned outage
            rejuvenation_downtime_secs: 120.0, // 2 min planned restart
        }
    }
}

impl OutageCosts {
    /// Validates the cost model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive downtimes.
    pub fn validate(&self) -> Result<()> {
        if !(self.crash_downtime_secs > 0.0) {
            return Err(Error::invalid("crash_downtime_secs", "must be positive"));
        }
        if !(self.rejuvenation_downtime_secs > 0.0) {
            return Err(Error::invalid(
                "rejuvenation_downtime_secs",
                "must be positive",
            ));
        }
        Ok(())
    }
}

/// Result of running one policy over a horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyOutcome {
    /// Policy name.
    pub policy: String,
    /// Scenario name.
    pub scenario: String,
    /// Wall-clock horizon covered (uptime + downtime), seconds.
    pub horizon_secs: f64,
    /// Productive uptime, seconds.
    pub uptime_secs: f64,
    /// Outage time, seconds.
    pub downtime_secs: f64,
    /// Number of crashes suffered.
    pub crashes: usize,
    /// Number of planned rejuvenations performed.
    pub rejuvenations: usize,
}

impl PolicyOutcome {
    /// Steady-state availability over the horizon.
    pub fn availability(&self) -> f64 {
        if self.horizon_secs <= 0.0 {
            return 1.0;
        }
        self.uptime_secs / self.horizon_secs
    }
}

impl std::fmt::Display for PolicyOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<28} availability={:.5} crashes={:<3} rejuvenations={:<4} downtime={:.1}h",
            self.policy,
            self.availability(),
            self.crashes,
            self.rejuvenations,
            self.downtime_secs / 3600.0
        )
    }
}

/// Runs `policy` on `scenario` for `horizon_secs` of wall-clock time
/// (uptime plus outage time) and accounts availability.
///
/// # Errors
///
/// Propagates configuration validation and predictor failures.
pub fn run_policy(
    scenario: &Scenario,
    policy: &Policy,
    horizon_secs: f64,
    costs: OutageCosts,
) -> Result<PolicyOutcome> {
    costs.validate()?;
    if !(horizon_secs > 0.0) {
        return Err(Error::invalid("horizon_secs", "must be positive"));
    }
    let mut machine = Machine::boot(scenario)?;
    let step = scenario.machine.step_secs;

    let mut predictor = match policy {
        Policy::PredictorTriggered { spec, .. } => Some(spec.build()?),
        _ => None,
    };
    let counter = match policy {
        Policy::PredictorTriggered { counter, .. } => Some(*counter),
        _ => None,
    };

    let mut wall = 0.0f64;
    let mut uptime = 0.0f64;
    let mut downtime = 0.0f64;
    let mut crashes = 0usize;
    let mut rejuvenations = 0usize;
    let mut since_restart = 0.0f64;

    while wall < horizon_secs {
        let crash = machine.step();
        wall += step;
        uptime += step;
        since_restart += step;

        if let Some(_event) = crash {
            crashes += 1;
            wall += costs.crash_downtime_secs;
            downtime += costs.crash_downtime_secs;
            machine.rejuvenate(); // reboot
            since_restart = 0.0;
            if let Some(p) = predictor.as_mut() {
                p.reset();
            }
            continue;
        }

        let mut want_rejuvenation = false;
        match policy {
            Policy::None => {}
            Policy::Periodic { period_secs } => {
                if since_restart >= *period_secs {
                    want_rejuvenation = true;
                }
            }
            Policy::PredictorTriggered { cooldown_secs, .. } => {
                if since_restart < *cooldown_secs {
                    // Transient after restart: withhold samples.
                } else if let Some(sample) = machine.last_sample() {
                    let value = match counter.expect("set for this policy") {
                        aging_memsim::Counter::AvailableBytes => sample.available.as_f64(),
                        aging_memsim::Counter::UsedSwapBytes => sample.used_swap.as_f64(),
                        aging_memsim::Counter::CommittedBytes => sample.committed.as_f64(),
                        aging_memsim::Counter::LiveHeapBytes => sample.live_heap.as_f64(),
                        aging_memsim::Counter::PageFaultsPerSec => sample.page_faults_per_sec,
                        aging_memsim::Counter::HandleCount => sample.handle_count as f64,
                        aging_memsim::Counter::AllocRateBytesPerSec => sample.alloc_rate,
                        _ => sample.available.as_f64(),
                    };
                    if predictor
                        .as_mut()
                        .expect("predictor set for this policy")
                        .push(value)?
                    {
                        want_rejuvenation = true;
                    }
                }
            }
        }
        if want_rejuvenation {
            rejuvenations += 1;
            wall += costs.rejuvenation_downtime_secs;
            downtime += costs.rejuvenation_downtime_secs;
            machine.rejuvenate();
            since_restart = 0.0;
            if let Some(p) = predictor.as_mut() {
                p.reset();
            }
        }
    }

    Ok(PolicyOutcome {
        policy: policy.name(),
        scenario: scenario.name.clone(),
        horizon_secs: wall,
        uptime_secs: uptime,
        downtime_secs: downtime,
        crashes,
        rejuvenations,
    })
}

/// Runs several policies on the same scenario (each from the same seed,
/// so they face an identical world).
///
/// # Errors
///
/// Propagates the first policy failure.
pub fn compare_policies(
    scenario: &Scenario,
    policies: &[Policy],
    horizon_secs: f64,
    costs: OutageCosts,
) -> Result<Vec<PolicyOutcome>> {
    policies
        .iter()
        .map(|p| run_policy(scenario, p, horizon_secs, costs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::ResourceDirection;
    use aging_memsim::Scenario;

    const HOUR: f64 = 3600.0;

    fn costs() -> OutageCosts {
        OutageCosts {
            crash_downtime_secs: 600.0,
            rejuvenation_downtime_secs: 30.0,
        }
    }

    #[test]
    fn cost_validation() {
        assert!(OutageCosts::default().validate().is_ok());
        assert!(OutageCosts {
            crash_downtime_secs: 0.0,
            ..costs()
        }
        .validate()
        .is_err());
        assert!(OutageCosts {
            rejuvenation_downtime_secs: -1.0,
            ..costs()
        }
        .validate()
        .is_err());
    }

    // The tiny machine has ~110 MiB of commit headroom over its steady
    // state, so a 128 MiB/h leak kills it in roughly an hour and a
    // 256 MiB/h leak in roughly half an hour.

    #[test]
    fn no_rejuvenation_rides_crashes() {
        let scenario = Scenario::tiny_aging(1, 256.0);
        let outcome = run_policy(&scenario, &Policy::None, 8.0 * HOUR, costs()).unwrap();
        assert!(outcome.crashes >= 3, "crashes {}", outcome.crashes);
        assert_eq!(outcome.rejuvenations, 0);
        assert!(outcome.availability() < 1.0);
        assert!(!outcome.to_string().is_empty());
    }

    #[test]
    fn periodic_policy_prevents_crashes() {
        let scenario = Scenario::tiny_aging(1, 128.0);
        // Machine dies in roughly an hour at this rate; restart every 30
        // minutes.
        let policy = Policy::Periodic {
            period_secs: 0.5 * HOUR,
        };
        let outcome = run_policy(&scenario, &policy, 8.0 * HOUR, costs()).unwrap();
        assert_eq!(outcome.crashes, 0, "{outcome}");
        assert!(outcome.rejuvenations >= 10, "{outcome}");
    }

    #[test]
    fn periodic_beats_none_on_availability() {
        let scenario = Scenario::tiny_aging(2, 256.0);
        let none = run_policy(&scenario, &Policy::None, 12.0 * HOUR, costs()).unwrap();
        let periodic = run_policy(
            &scenario,
            &Policy::Periodic {
                period_secs: 0.25 * HOUR,
            },
            12.0 * HOUR,
            costs(),
        )
        .unwrap();
        assert!(none.crashes > 0);
        assert!(
            periodic.availability() > none.availability(),
            "periodic {} vs none {}",
            periodic.availability(),
            none.availability()
        );
    }

    #[test]
    fn triggered_policy_with_threshold_prevents_crashes() {
        let scenario = Scenario::tiny_aging(3, 128.0);
        let policy = Policy::PredictorTriggered {
            spec: PredictorSpec::Threshold {
                level: 8.0 * 1024.0 * 1024.0,
                direction: ResourceDirection::Depleting,
            },
            counter: aging_memsim::Counter::AvailableBytes,
            cooldown_secs: 0.0,
        };
        let outcome = run_policy(&scenario, &policy, 8.0 * HOUR, costs()).unwrap();
        assert_eq!(outcome.crashes, 0, "{outcome}");
        assert!(outcome.rejuvenations >= 1);
        assert!(outcome.rejuvenations <= 40, "{outcome}");
    }

    #[test]
    fn horizon_is_respected() {
        let scenario = Scenario::tiny_aging(4, 0.0);
        let outcome = run_policy(&scenario, &Policy::None, HOUR, costs()).unwrap();
        assert!(outcome.horizon_secs >= HOUR);
        assert!(outcome.horizon_secs < HOUR + 700.0);
        assert!((outcome.uptime_secs + outcome.downtime_secs - outcome.horizon_secs).abs() < 1.0);
    }

    #[test]
    fn compare_runs_all_policies() {
        let scenario = Scenario::tiny_aging(5, 1024.0);
        let outcomes = compare_policies(
            &scenario,
            &[Policy::None, Policy::Periodic { period_secs: HOUR }],
            4.0 * HOUR,
            costs(),
        )
        .unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].policy, "no-rejuvenation");
        assert_eq!(outcomes[1].policy, "periodic-1.0h");
    }

    #[test]
    fn guards() {
        let scenario = Scenario::tiny_aging(6, 0.0);
        assert!(run_policy(&scenario, &Policy::None, 0.0, costs()).is_err());
        let bad = OutageCosts {
            crash_downtime_secs: -1.0,
            rejuvenation_downtime_secs: 1.0,
        };
        assert!(run_policy(&scenario, &Policy::None, HOUR, bad).is_err());
    }

    #[test]
    fn policy_names() {
        assert_eq!(Policy::None.name(), "no-rejuvenation");
        assert_eq!(
            Policy::Periodic {
                period_secs: 7200.0
            }
            .name(),
            "periodic-2.0h"
        );
    }
}
