//! Sliding / tumbling window iteration and dyadic partitions.
//!
//! Window plans are central to the paper's method: the Hölder trace, the
//! windowed fractal dimension and the multifractal spectra are all computed
//! over sliding windows of the raw counter series.

use crate::error::{Error, Result};

/// A sliding-window plan over a slice: windows of `width` samples advancing
/// by `stride` samples.
///
/// # Examples
///
/// ```
/// use aging_timeseries::window::SlidingWindows;
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let data = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let windows: Vec<&[f64]> = SlidingWindows::new(&data, 3, 2)?.collect();
/// assert_eq!(windows, vec![&[1.0, 2.0, 3.0][..], &[3.0, 4.0, 5.0][..]]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindows<'a> {
    data: &'a [f64],
    width: usize,
    stride: usize,
    pos: usize,
}

impl<'a> SlidingWindows<'a> {
    /// Creates a window plan.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `width` or `stride` is zero,
    /// and [`Error::TooShort`] if not even one window fits.
    pub fn new(data: &'a [f64], width: usize, stride: usize) -> Result<Self> {
        if width == 0 {
            return Err(Error::invalid("width", "must be positive"));
        }
        if stride == 0 {
            return Err(Error::invalid("stride", "must be positive"));
        }
        Error::require_len(data, width)?;
        Ok(SlidingWindows {
            data,
            width,
            stride,
            pos: 0,
        })
    }

    /// Number of windows the plan will yield.
    pub fn count_windows(&self) -> usize {
        if self.data.len() < self.width {
            0
        } else {
            (self.data.len() - self.width) / self.stride + 1
        }
    }

    /// Starting index within the source slice of window `k`.
    pub fn start_of(&self, k: usize) -> usize {
        k * self.stride
    }
}

impl<'a> Iterator for SlidingWindows<'a> {
    type Item = &'a [f64];

    fn next(&mut self) -> Option<&'a [f64]> {
        if self.pos + self.width > self.data.len() {
            return None;
        }
        let w = &self.data[self.pos..self.pos + self.width];
        self.pos += self.stride;
        Some(w)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.pos + self.width > self.data.len() {
            0
        } else {
            (self.data.len() - self.pos - self.width) / self.stride + 1
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SlidingWindows<'_> {}

/// Applies `f` to each sliding window, returning one output per window
/// together with the index (into the source slice) of the window's **last**
/// sample — the natural time to attribute a causal, trailing-window
/// statistic to.
///
/// Windows on which `f` fails are skipped (their error is discarded); use
/// [`windowed_apply_strict`] when failures must propagate.
///
/// # Errors
///
/// Propagates window-plan construction failures from [`SlidingWindows::new`].
pub fn windowed_apply<T>(
    data: &[f64],
    width: usize,
    stride: usize,
    mut f: impl FnMut(&[f64]) -> Result<T>,
) -> Result<Vec<(usize, T)>> {
    let plan = SlidingWindows::new(data, width, stride)?;
    let stride = plan.stride;
    let mut out = Vec::with_capacity(plan.count_windows());
    for (k, w) in plan.enumerate() {
        if let Ok(v) = f(w) {
            out.push((k * stride + width - 1, v));
        }
    }
    Ok(out)
}

/// Like [`windowed_apply`] but any window failure aborts the whole
/// computation.
///
/// # Errors
///
/// Propagates both window-plan construction failures and the first per-window
/// failure of `f`.
pub fn windowed_apply_strict<T>(
    data: &[f64],
    width: usize,
    stride: usize,
    mut f: impl FnMut(&[f64]) -> Result<T>,
) -> Result<Vec<(usize, T)>> {
    let plan = SlidingWindows::new(data, width, stride)?;
    let stride = plan.stride;
    let mut out = Vec::with_capacity(plan.count_windows());
    for (k, w) in plan.enumerate() {
        out.push((k * stride + width - 1, f(w)?));
    }
    Ok(out)
}

/// Splits `data` into non-overlapping blocks of `size` samples, dropping a
/// trailing partial block.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `size == 0` and
/// [`Error::TooShort`] when no complete block fits.
pub fn blocks(data: &[f64], size: usize) -> Result<Vec<&[f64]>> {
    if size == 0 {
        return Err(Error::invalid("size", "must be positive"));
    }
    Error::require_len(data, size)?;
    Ok(data.chunks_exact(size).collect())
}

/// The dyadic scales `2, 4, 8, …` that fit at least `min_blocks` times into
/// a series of length `n`.
///
/// Used by box-counting, DFA and structure-function estimators, which all
/// regress a statistic against scale on a log–log grid.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `min_blocks == 0`, and
/// [`Error::TooShort`] when no dyadic scale qualifies.
pub fn dyadic_scales(n: usize, min_blocks: usize) -> Result<Vec<usize>> {
    if min_blocks == 0 {
        return Err(Error::invalid("min_blocks", "must be positive"));
    }
    let mut scales = Vec::new();
    let mut s = 2usize;
    while s.checked_mul(min_blocks).is_some_and(|need| need <= n) {
        scales.push(s);
        match s.checked_mul(2) {
            Some(next) => s = next,
            None => break,
        }
    }
    if scales.is_empty() {
        return Err(Error::TooShort {
            required: 2 * min_blocks,
            actual: n,
        });
    }
    Ok(scales)
}

/// Logarithmically spaced integer scales between `min_scale` and
/// `max_scale` (inclusive bounds, deduplicated, ascending).
///
/// Offers finer scale grids than [`dyadic_scales`] for estimators whose
/// variance benefits from more regression points.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when bounds are zero, reversed, or
/// `count < 2`.
pub fn log_scales(min_scale: usize, max_scale: usize, count: usize) -> Result<Vec<usize>> {
    if min_scale == 0 {
        return Err(Error::invalid("min_scale", "must be positive"));
    }
    if max_scale < min_scale {
        return Err(Error::invalid("max_scale", "must be >= min_scale"));
    }
    if count < 2 {
        return Err(Error::invalid("count", "must be at least 2"));
    }
    let lo = (min_scale as f64).ln();
    let hi = (max_scale as f64).ln();
    let mut out: Vec<usize> = (0..count)
        .map(|i| {
            let t = i as f64 / (count - 1) as f64;
            (lo + t * (hi - lo)).exp().round() as usize
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_windows_basic() {
        let d = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let w: Vec<_> = SlidingWindows::new(&d, 4, 1).unwrap().collect();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(w[2], &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn sliding_windows_stride_skips() {
        let d = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let plan = SlidingWindows::new(&d, 3, 2).unwrap();
        assert_eq!(plan.count_windows(), 3);
        let w: Vec<_> = plan.collect();
        assert_eq!(w[1], &[3.0, 4.0, 5.0]);
        assert_eq!(w[2], &[5.0, 6.0, 7.0]);
    }

    #[test]
    fn sliding_windows_exact_fit() {
        let d = [1.0, 2.0];
        let w: Vec<_> = SlidingWindows::new(&d, 2, 5).unwrap().collect();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn sliding_windows_rejects_bad_params() {
        let d = [1.0, 2.0];
        assert!(SlidingWindows::new(&d, 0, 1).is_err());
        assert!(SlidingWindows::new(&d, 1, 0).is_err());
        assert!(SlidingWindows::new(&d, 3, 1).is_err());
    }

    #[test]
    fn size_hint_is_exact() {
        let d = [0.0; 10];
        let plan = SlidingWindows::new(&d, 4, 3).unwrap();
        let expected = plan.count_windows();
        assert_eq!(plan.len(), expected);
        assert_eq!(plan.count(), expected);
    }

    #[test]
    fn windowed_apply_attributes_to_last_sample() {
        let d = [1.0, 2.0, 3.0, 4.0];
        let out = windowed_apply(&d, 2, 1, |w| Ok(w.iter().sum::<f64>())).unwrap();
        assert_eq!(out, vec![(1, 3.0), (2, 5.0), (3, 7.0)]);
    }

    #[test]
    fn windowed_apply_skips_failures() {
        let d = [1.0, -1.0, 2.0, -2.0];
        let out = windowed_apply(&d, 2, 1, |w| {
            if w[0] > 0.0 {
                Ok(w[0])
            } else {
                Err(Error::Numerical("negative".into()))
            }
        })
        .unwrap();
        assert_eq!(out, vec![(1, 1.0), (3, 2.0)]);
    }

    #[test]
    fn windowed_apply_strict_propagates() {
        let d = [1.0, -1.0, 2.0];
        let r = windowed_apply_strict(&d, 2, 1, |w| {
            if w[0] > 0.0 {
                Ok(w[0])
            } else {
                Err(Error::Numerical("negative".into()))
            }
        });
        assert!(r.is_err());
    }

    #[test]
    fn blocks_drop_partial() {
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = blocks(&d, 2).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b[1], &[3.0, 4.0]);
        assert!(blocks(&d, 0).is_err());
        assert!(blocks(&d, 6).is_err());
    }

    #[test]
    fn dyadic_scales_respect_min_blocks() {
        assert_eq!(dyadic_scales(64, 4).unwrap(), vec![2, 4, 8, 16]);
        assert_eq!(dyadic_scales(64, 1).unwrap(), vec![2, 4, 8, 16, 32, 64]);
        assert!(dyadic_scales(3, 2).is_err());
        assert!(dyadic_scales(64, 0).is_err());
    }

    #[test]
    fn log_scales_are_sorted_unique() {
        let s = log_scales(4, 256, 10).unwrap();
        assert_eq!(*s.first().unwrap(), 4);
        assert_eq!(*s.last().unwrap(), 256);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(s, sorted);
        assert!(log_scales(0, 10, 5).is_err());
        assert!(log_scales(10, 5, 5).is_err());
        assert!(log_scales(2, 8, 1).is_err());
    }
}
