//! Parallel-engine benchmarks: the pooled hot paths at explicit thread
//! counts, recording the speedup curve of `holder_trace_in` and `cwt_in`
//! versus pool size (E12's criterion companion).

use aging_fractal::generate;
use aging_fractal::holder::{holder_trace_in, HolderEstimator};
use aging_par::Pool;
use aging_wavelet::cwt::{cwt_in, CwtWavelet};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_holder_trace(c: &mut Criterion) {
    let signal = generate::fbm(8192, 0.6, 2).unwrap();
    let estimator = HolderEstimator::local_increment();
    let mut group = c.benchmark_group("par/holder_trace");
    group.throughput(Throughput::Elements(8192));
    for threads in THREAD_COUNTS {
        let pool = Pool::new(threads);
        group.bench_function(format!("threads/{threads}"), |b| {
            b.iter(|| holder_trace_in(std::hint::black_box(&signal), &estimator, &pool).unwrap())
        });
    }
    group.finish();
}

fn bench_cwt(c: &mut Criterion) {
    let signal = generate::fbm(4096, 0.5, 3).unwrap();
    let scales: Vec<f64> = (0..6).map(|k| 2.0 * (1u64 << k) as f64).collect();
    let mut group = c.benchmark_group("par/cwt");
    group.throughput(Throughput::Elements(4096));
    for threads in THREAD_COUNTS {
        let pool = Pool::new(threads);
        group.bench_function(format!("threads/{threads}"), |b| {
            b.iter(|| {
                cwt_in(
                    std::hint::black_box(&signal),
                    CwtWavelet::MexicanHat,
                    &scales,
                    &pool,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_pool_overhead(c: &mut Criterion) {
    // The fixed cost of a pooled map over trivially cheap items — what a
    // caller pays when the input is too small to benefit.
    let items: Vec<f64> = (0..64).map(|i| i as f64).collect();
    let mut group = c.benchmark_group("par/overhead");
    for threads in THREAD_COUNTS {
        let pool = Pool::new(threads);
        group.bench_function(format!("map64/threads/{threads}"), |b| {
            b.iter(|| pool.map(std::hint::black_box(&items), |&v| v * 2.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_holder_trace, bench_cwt, bench_pool_overhead);
criterion_main!(benches);
