//! Property-based tests for detector and predictor invariants.

use aging_core::baseline::{
    AgingPredictor, ResourceDirection, SenSlopePredictor, ThresholdPredictor, TrendPredictorConfig,
};
use aging_core::detector::{analyze, AlertLevel, DetectorConfig};
use aging_core::eval::PredictorSpec;
use aging_core::fusion::{FusionPredictor, FusionRule};
use aging_fractal::generate;
use proptest::prelude::*;

fn small_config() -> DetectorConfig {
    DetectorConfig {
        holder_radius: 16,
        holder_max_lag: 4,
        dimension_window: 64,
        dimension_stride: 8,
        baseline_windows: 6,
        skip_windows: 1,
        ..DetectorConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn detector_never_panics_on_finite_input(values in prop::collection::vec(-1e9f64..1e9, 100..600)) {
        let _ = analyze(&values, &small_config());
    }

    #[test]
    fn alerts_are_time_ordered_and_alarm_unique(seed in 0u64..300) {
        // Collapse signal: smooth then rough.
        let mut x = generate::fbm(800, 0.85, seed).unwrap();
        let last = *x.last().unwrap();
        let noise = generate::white_noise(800, seed + 9000).unwrap();
        x.extend(noise.iter().map(|v| last + v));
        let analysis = analyze(&x, &small_config()).unwrap();
        let mut prev = 0usize;
        for a in &analysis.alerts {
            prop_assert!(a.sample_index >= prev);
            prev = a.sample_index;
        }
        let alarms = analysis.alerts.iter().filter(|a| a.level == AlertLevel::Alarm).count();
        prop_assert!(alarms <= 1);
    }

    #[test]
    fn detector_scale_invariant(seed in 0u64..200, k in 0.01f64..1e4) {
        let x = generate::fgn(700, 0.5, seed).unwrap();
        let scaled: Vec<f64> = x.iter().map(|v| k * v).collect();
        let a = analyze(&x, &small_config()).unwrap();
        let b = analyze(&scaled, &small_config()).unwrap();
        prop_assert_eq!(a.alerts.len(), b.alerts.len());
        for (u, v) in a.holder_trace.iter().zip(&b.holder_trace) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn threshold_predictor_fires_iff_crossed(values in prop::collection::vec(0.0f64..1000.0, 1..200), level in 0.0f64..1000.0) {
        let mut p = ThresholdPredictor::new(level, ResourceDirection::Depleting).unwrap();
        let mut fired = false;
        for &v in &values {
            fired |= p.push(v).unwrap();
        }
        prop_assert_eq!(fired, values.iter().any(|&v| v <= level));
        prop_assert_eq!(p.is_alarmed(), fired);
    }

    #[test]
    fn sen_predictor_monotone_series_eta_positive(slope in 0.5f64..50.0, seed in 0u64..100) {
        // A depleting ramp with bounded noise must eventually yield a
        // non-negative finite ETA.
        let noise = generate::white_noise(400, seed).unwrap();
        let series: Vec<f64> = (0..400)
            .map(|i| 1e6 - slope * 30.0 * i as f64 + 10.0 * noise[i])
            .collect();
        let config = TrendPredictorConfig {
            window: 120,
            refit_every: 8,
            alarm_horizon_secs: 1e9, // always alarm once trending
            ..TrendPredictorConfig::depleting(30.0)
        };
        let mut p = SenSlopePredictor::new(config).unwrap();
        let mut fired = false;
        for &v in &series {
            fired |= p.push(v).unwrap();
        }
        prop_assert!(fired);
        if let Some(eta) = p.eta_secs() {
            prop_assert!(eta >= 0.0 && eta.is_finite());
        }
    }

    #[test]
    fn fusion_rule_strictness_is_monotone(seed in 0u64..60) {
        // On any input stream, Any fires no later than Majority, which
        // fires no later than All.
        let mut x = generate::fbm(700, 0.85, seed).unwrap();
        let last = *x.last().unwrap();
        x.extend(generate::white_noise(700, seed + 5000).unwrap().iter().map(|v| last + v));
        let members = vec![
            (aging_memsim::Counter::AvailableBytes, PredictorSpec::HolderDimension(small_config())),
            (aging_memsim::Counter::AvailableBytes, PredictorSpec::Threshold {
                level: x.iter().cloned().fold(f64::MAX, f64::min) + 1.0,
                direction: aging_core::baseline::ResourceDirection::Depleting,
            }),
        ];
        let first_fire = |rule| -> Option<usize> {
            let mut f = FusionPredictor::new(&members, rule).unwrap();
            for (i, &v) in x.iter().enumerate() {
                if f.push_row(&[v, v]).unwrap() {
                    return Some(i);
                }
            }
            None
        };
        let any = first_fire(FusionRule::Any).map_or(usize::MAX, |v| v);
        let majority = first_fire(FusionRule::Majority).map_or(usize::MAX, |v| v);
        let all = first_fire(FusionRule::All).map_or(usize::MAX, |v| v);
        prop_assert!(any <= majority);
        prop_assert!(majority <= all);
    }

    #[test]
    fn predictor_reset_is_idempotent(seed in 0u64..100) {
        let x = generate::fgn(300, 0.5, seed).unwrap();
        let mut p = SenSlopePredictor::new(TrendPredictorConfig {
            window: 60,
            ..TrendPredictorConfig::depleting(30.0)
        }).unwrap();
        for &v in &x {
            let _ = p.push(v).unwrap();
        }
        p.reset();
        p.reset();
        prop_assert!(!p.is_alarmed());
        prop_assert_eq!(p.eta_secs(), None);
    }
}
