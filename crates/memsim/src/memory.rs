//! The memory-subsystem model: commit accounting, an expiry ledger for
//! workload allocations, and an aggregate paging model.
//!
//! The model is deliberately counter-level, not page-level: the detector
//! under study only ever sees sampled counters (as the paper's collector
//! did), so the simulator models exactly the quantities those counters
//! report — committed bytes, available (free) real memory, used swap,
//! page-fault activity — and the aging mechanisms that move them.

use crate::config::MachineConfig;
use crate::units::Bytes;
use aging_timeseries::Result;
use std::collections::BTreeMap;

/// Why a machine crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum CrashCause {
    /// Commit charge exceeded RAM + swap.
    OutOfMemory,
    /// Sustained paging storm (the system "hangs").
    Thrashing,
}

impl std::fmt::Display for CrashCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CrashCause::OutOfMemory => "out-of-memory",
            CrashCause::Thrashing => "thrashing",
        };
        f.write_str(s)
    }
}

/// Per-step snapshot of memory metrics (the raw material for the monitor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryMetrics {
    /// Free real memory available to programs.
    pub available: Bytes,
    /// Used swap space.
    pub used_swap: Bytes,
    /// Total commit charge.
    pub committed: Bytes,
    /// Live (non-leaked) workload heap.
    pub live_heap: Bytes,
    /// Page faults per second this step.
    pub page_faults_per_sec: f64,
    /// Whether the pager is in the thrashing regime.
    pub thrashing: bool,
}

/// The machine-level paging model: converts a commit charge into the
/// observable metrics (available bytes, used swap, fault rate, thrash
/// flag). Factored out of [`MemorySubsystem`] so multi-process machines
/// can apply it to an *aggregated* commit charge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PagingModel {
    /// Physical RAM.
    pub ram: Bytes,
    /// Swap capacity.
    pub swap: Bytes,
    /// Thrash threshold as a fraction of the commit limit.
    pub thrash_threshold: f64,
}

impl PagingModel {
    /// Builds the model from a machine configuration.
    pub fn of(config: &crate::config::MachineConfig) -> Self {
        PagingModel {
            ram: config.ram,
            swap: config.swap,
            thrash_threshold: config.thrash_threshold,
        }
    }

    /// Computes the metric snapshot for a given total commit charge.
    ///
    /// `frag_fraction` is the fraction of RAM made unusable by allocator
    /// fragmentation; `alloc_rate` the workload allocation activity
    /// (bytes/sec) driving fault pressure; `jitter` a uniform value in
    /// `[0, 1)` perturbing the pager's free floor.
    pub fn metrics(
        &self,
        committed: Bytes,
        live_heap: Bytes,
        frag_fraction: f64,
        alloc_rate_bytes_per_sec: f64,
        jitter: f64,
    ) -> MemoryMetrics {
        let effective_ram = Bytes::from_f64(self.ram.as_f64() * (1.0 - frag_fraction));

        // Free floor the pager defends: ~1.5 % of RAM, with jitter.
        let floor = Bytes::from_f64(self.ram.as_f64() * (0.01 + 0.01 * jitter));

        let (available, used_swap) = if committed.saturating_add(floor) <= effective_ram {
            (effective_ram - committed, Bytes::ZERO)
        } else {
            // Overcommitted: pager keeps only the floor free and pushes the
            // excess to swap.
            let resident_capacity = effective_ram.saturating_sub(floor);
            let swapped = committed.saturating_sub(resident_capacity);
            (floor, swapped.min(self.swap))
        };

        // Aggregate paging model: pressure rises once the commit charge
        // nears effective RAM; fault rate scales with allocation activity.
        let pressure =
            (committed.as_f64() / effective_ram.as_f64().max(1.0) - 0.85).max(0.0) / 0.15;
        let page_faults_per_sec =
            2.0 + pressure.min(4.0) * (alloc_rate_bytes_per_sec / 4096.0).max(1.0) * 0.5;

        let commit_limit = self.ram + self.swap;
        let thrashing = committed.as_f64() / commit_limit.as_f64() > self.thrash_threshold;

        MemoryMetrics {
            available,
            used_swap,
            committed,
            live_heap,
            page_faults_per_sec,
            thrashing,
        }
    }

    /// The fatal condition: commit charge above the commit limit.
    pub fn is_oom(&self, committed: Bytes) -> bool {
        committed > self.ram + self.swap
    }
}

/// The memory subsystem of one machine.
#[derive(Debug, Clone)]
pub struct MemorySubsystem {
    ram: Bytes,
    swap: Bytes,
    os_overhead: Bytes,
    thrash_threshold: f64,
    /// Live workload heap bytes.
    live: Bytes,
    /// Expiry ledger: step index → bytes to free at that step.
    ledger: BTreeMap<u64, Bytes>,
}

impl MemorySubsystem {
    /// Creates the subsystem for a validated machine configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`MachineConfig::validate`] failures.
    pub fn new(config: &MachineConfig) -> Result<Self> {
        config.validate()?;
        Ok(MemorySubsystem {
            ram: config.ram,
            swap: config.swap,
            os_overhead: config.os_overhead,
            thrash_threshold: config.thrash_threshold,
            live: Bytes::ZERO,
            ledger: BTreeMap::new(),
        })
    }

    /// Records an allocation of `bytes` that will be freed at `expiry_step`.
    pub fn allocate(&mut self, bytes: Bytes, expiry_step: u64) {
        if bytes == Bytes::ZERO {
            return;
        }
        self.live += bytes;
        *self.ledger.entry(expiry_step).or_insert(Bytes::ZERO) += bytes;
    }

    /// Frees every cohort whose expiry step is ≤ `step`; returns the bytes
    /// freed.
    pub fn expire(&mut self, step: u64) -> Bytes {
        let mut freed = Bytes::ZERO;
        let keys: Vec<u64> = self.ledger.range(..=step).map(|(&k, _)| k).collect();
        for k in keys {
            if let Some(bytes) = self.ledger.remove(&k) {
                freed += bytes;
            }
        }
        self.live = self.live.saturating_sub(freed);
        freed
    }

    /// Drops a fraction of the live heap immediately (used by rejuvenation:
    /// restarting the workload clears its heap).
    pub fn clear_live(&mut self) -> Bytes {
        let dropped = self.live;
        self.live = Bytes::ZERO;
        self.ledger.clear();
        dropped
    }

    /// Current live workload heap.
    pub fn live(&self) -> Bytes {
        self.live
    }

    /// Number of pending expiry cohorts (diagnostic).
    pub fn pending_cohorts(&self) -> usize {
        self.ledger.len()
    }

    /// Total commit charge given the current fault totals.
    pub fn committed(&self, leaked: Bytes, handle_pinned: Bytes) -> Bytes {
        self.os_overhead + self.live + leaked + handle_pinned
    }

    /// Computes the metric snapshot for this step.
    ///
    /// `frag_fraction` is the fraction of RAM made unusable by allocator
    /// fragmentation; `alloc_rate` is the workload allocation activity
    /// (bytes/sec) driving fault pressure; `jitter` is a small uniform
    /// random value in `[0, 1)` that perturbs the free-floor (real pagers
    /// never sit at an exact floor).
    pub fn metrics(
        &self,
        leaked: Bytes,
        handle_pinned: Bytes,
        frag_fraction: f64,
        alloc_rate_bytes_per_sec: f64,
        jitter: f64,
    ) -> MemoryMetrics {
        let committed = self.committed(leaked, handle_pinned);
        let model = PagingModel {
            ram: self.ram,
            swap: self.swap,
            thrash_threshold: self.thrash_threshold,
        };
        model.metrics(
            committed,
            self.live,
            frag_fraction,
            alloc_rate_bytes_per_sec,
            jitter,
        )
    }

    /// Checks the fatal condition: commit charge above the commit limit.
    pub fn check_oom(&self, leaked: Bytes, handle_pinned: Bytes) -> bool {
        self.committed(leaked, handle_pinned) > self.ram + self.swap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn subsystem() -> MemorySubsystem {
        MemorySubsystem::new(&MachineConfig::tiny_test()).unwrap()
    }

    #[test]
    fn allocate_and_expire_conserve_bytes() {
        let mut m = subsystem();
        m.allocate(Bytes::mib(4), 10);
        m.allocate(Bytes::mib(2), 5);
        m.allocate(Bytes::mib(1), 10);
        assert_eq!(m.live(), Bytes::mib(7));
        assert_eq!(m.pending_cohorts(), 2);

        assert_eq!(m.expire(4), Bytes::ZERO);
        assert_eq!(m.expire(5), Bytes::mib(2));
        assert_eq!(m.live(), Bytes::mib(5));
        assert_eq!(m.expire(100), Bytes::mib(5));
        assert_eq!(m.live(), Bytes::ZERO);
        assert_eq!(m.pending_cohorts(), 0);
    }

    #[test]
    fn zero_allocation_is_noop() {
        let mut m = subsystem();
        m.allocate(Bytes::ZERO, 10);
        assert_eq!(m.pending_cohorts(), 0);
    }

    #[test]
    fn clear_live_drops_everything() {
        let mut m = subsystem();
        m.allocate(Bytes::mib(10), 100);
        let dropped = m.clear_live();
        assert_eq!(dropped, Bytes::mib(10));
        assert_eq!(m.live(), Bytes::ZERO);
        assert_eq!(m.expire(1000), Bytes::ZERO);
    }

    #[test]
    fn committed_includes_all_components() {
        let mut m = subsystem();
        m.allocate(Bytes::mib(10), 100);
        let committed = m.committed(Bytes::mib(3), Bytes::mib(1));
        // os_overhead (8 MiB) + live (10) + leaked (3) + handles (1).
        assert_eq!(committed, Bytes::mib(22));
    }

    #[test]
    fn metrics_when_plenty_free() {
        let mut m = subsystem();
        m.allocate(Bytes::mib(10), 100);
        let metrics = m.metrics(Bytes::ZERO, Bytes::ZERO, 0.0, 0.0, 0.0);
        // 64 MiB RAM − 18 MiB committed = 46 MiB available.
        assert_eq!(metrics.available, Bytes::mib(46));
        assert_eq!(metrics.used_swap, Bytes::ZERO);
        assert!(!metrics.thrashing);
    }

    #[test]
    fn metrics_when_overcommitted_swap_grows_and_available_floors() {
        let mut m = subsystem();
        m.allocate(Bytes::mib(80), 100); // above the 64 MiB of RAM
        let metrics = m.metrics(Bytes::ZERO, Bytes::ZERO, 0.0, 0.0, 0.5);
        assert!(metrics.used_swap > Bytes::mib(20));
        // Floor: between 1 % and 2 % of RAM.
        assert!(metrics.available >= Bytes::from_f64(0.01 * Bytes::mib(64).as_f64()));
        assert!(metrics.available <= Bytes::from_f64(0.021 * Bytes::mib(64).as_f64()));
    }

    #[test]
    fn fragmentation_shrinks_effective_ram() {
        let mut m = subsystem();
        m.allocate(Bytes::mib(10), 100);
        let healthy = m.metrics(Bytes::ZERO, Bytes::ZERO, 0.0, 0.0, 0.0);
        let fragged = m.metrics(Bytes::ZERO, Bytes::ZERO, 0.25, 0.0, 0.0);
        assert!(fragged.available < healthy.available);
    }

    #[test]
    fn fault_rate_rises_with_pressure() {
        let mut m = subsystem();
        m.allocate(Bytes::mib(20), 100);
        let calm = m.metrics(Bytes::ZERO, Bytes::ZERO, 0.0, 1e6, 0.0);
        let mut m2 = subsystem();
        m2.allocate(Bytes::mib(70), 100);
        let pressured = m2.metrics(Bytes::ZERO, Bytes::ZERO, 0.0, 1e6, 0.0);
        assert!(pressured.page_faults_per_sec > calm.page_faults_per_sec);
    }

    #[test]
    fn oom_detection() {
        let mut m = subsystem();
        assert!(!m.check_oom(Bytes::ZERO, Bytes::ZERO));
        // tiny_test: commit limit 128 MiB, overhead 8 MiB.
        m.allocate(Bytes::mib(115), 100);
        assert!(!m.check_oom(Bytes::ZERO, Bytes::ZERO)); // 123 ≤ 128
        assert!(m.check_oom(Bytes::mib(10), Bytes::ZERO)); // 133 > 128
    }

    #[test]
    fn thrashing_flag_near_commit_limit() {
        let mut m = subsystem();
        m.allocate(Bytes::mib(118), 100); // 126/128 = 0.984 > 0.96
        let metrics = m.metrics(Bytes::ZERO, Bytes::ZERO, 0.0, 0.0, 0.0);
        assert!(metrics.thrashing);
    }

    #[test]
    fn crash_cause_display() {
        assert_eq!(CrashCause::OutOfMemory.to_string(), "out-of-memory");
        assert_eq!(CrashCause::Thrashing.to_string(), "thrashing");
    }
}
