//! Machine-readable perf trajectories: `BENCH_<id>.json` emitters.
//!
//! Every repro experiment appends one entry per run to
//! `bench_results/BENCH_<id>.json` — a JSON array of timestamped metric
//! maps — so throughput/latency numbers accumulate into a trajectory
//! across commits instead of being lost in the console scrollback.
//! Comparing the tail of `BENCH_e14.json` against `BENCH_e16.json`, for
//! example, is how the scale-out claim of the cluster tier is audited.
//!
//! Experiments report metrics through a thread-local scratchpad
//! ([`record`]) while they run; the experiment driver drains it
//! ([`take_metrics`]) and appends one entry ([`append`]) when the run
//! succeeds. The scratchpad keeps the recording call sites one-liners
//! and experiment signatures untouched.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

/// One run's worth of numbers for one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Experiment id (`"e14"`, `"e16"`, …).
    pub experiment: String,
    /// Unix timestamp of the run, seconds.
    pub unix_secs: u64,
    /// Whether the run used `--quick` sizing (quick numbers are not
    /// comparable with full-mode numbers).
    pub quick: bool,
    /// Metric name → value. `BTreeMap` so the serialized key order is
    /// stable across runs and diffs stay readable.
    pub metrics: BTreeMap<String, f64>,
}

thread_local! {
    static SCRATCH: RefCell<BTreeMap<String, f64>> = const { RefCell::new(BTreeMap::new()) };
}

/// Records one metric for the experiment currently running on this
/// thread. Re-recording a name overwrites it — record aggregates after
/// a seed loop, not inside it.
pub fn record(name: &str, value: f64) {
    SCRATCH.with(|s| s.borrow_mut().insert(name.to_string(), value));
}

/// Drains everything [`record`]ed on this thread since the last drain.
pub fn take_metrics() -> BTreeMap<String, f64> {
    SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// The trajectory file for an experiment id under `dir`.
pub fn trajectory_path(dir: &Path, experiment: &str) -> PathBuf {
    dir.join(format!("BENCH_{experiment}.json"))
}

/// Appends one entry to `BENCH_<experiment>.json` under `dir`,
/// creating the file (and `dir`) on first use. Returns the file path.
///
/// A malformed existing file is an error, not silently overwritten —
/// a trajectory is history, and history should not vanish because one
/// writer got confused.
///
/// # Errors
///
/// Propagates I/O failures and JSON decode failures of an existing
/// file.
pub fn append(
    dir: &Path,
    experiment: &str,
    quick: bool,
    metrics: BTreeMap<String, f64>,
) -> std::io::Result<PathBuf> {
    let path = trajectory_path(dir, experiment);
    fs::create_dir_all(dir)?;
    let mut entries: Vec<BenchEntry> = match fs::read_to_string(&path) {
        Ok(text) => serde_json::from_str(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "{}: existing trajectory is not valid JSON: {e}",
                    path.display()
                ),
            )
        })?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let unix_secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    entries.push(BenchEntry {
        experiment: experiment.to_string(),
        unix_secs,
        quick,
        metrics,
    });
    let json = serde_json::to_string_pretty(&entries).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("encode: {e}"))
    })?;
    fs::write(&path, json + "\n")?;
    Ok(path)
}

/// [`append`] gated by `enabled`: when disabled (the `--no-trajectory`
/// path for quick/dev runs) nothing is written — the trajectory file is
/// not created, an existing one is not touched — and `Ok(None)` is
/// returned. Keeps stray probe-run entries out of the committed
/// `BENCH_<id>.json` histories.
///
/// # Errors
///
/// Same as [`append`] when enabled; never fails when disabled.
pub fn append_if(
    dir: &Path,
    experiment: &str,
    quick: bool,
    metrics: BTreeMap<String, f64>,
    enabled: bool,
) -> std::io::Result<Option<PathBuf>> {
    if !enabled {
        return Ok(None);
    }
    append(dir, experiment, quick, metrics).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!("aging-traj-{}-{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn scratchpad_records_and_drains() {
        record("a", 1.0);
        record("b", 2.0);
        record("a", 3.0); // overwrite, not accumulate
        let m = take_metrics();
        assert_eq!(m.get("a"), Some(&3.0));
        assert_eq!(m.get("b"), Some(&2.0));
        assert!(take_metrics().is_empty(), "drain must clear the scratchpad");
    }

    #[test]
    fn entries_accumulate_across_appends() {
        let dir = TempDir::new("accum");
        let mut m1 = BTreeMap::new();
        m1.insert("rps".to_string(), 100.0);
        let path = append(&dir.0, "e99", true, m1).expect("first append");
        let mut m2 = BTreeMap::new();
        m2.insert("rps".to_string(), 120.0);
        append(&dir.0, "e99", false, m2).expect("second append");

        let text = fs::read_to_string(&path).expect("read trajectory");
        let entries: Vec<BenchEntry> = serde_json::from_str(&text).expect("decode");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].experiment, "e99");
        assert!(entries[0].quick);
        assert!(!entries[1].quick);
        assert_eq!(entries[0].metrics["rps"], 100.0);
        assert_eq!(entries[1].metrics["rps"], 120.0);
    }

    #[test]
    fn disabled_append_writes_nothing() {
        let dir = TempDir::new("disabled");
        let mut m = BTreeMap::new();
        m.insert("rps".to_string(), 100.0);
        let res = append_if(&dir.0, "e97", true, m.clone(), false).expect("skip path");
        assert_eq!(res, None);
        assert!(
            !trajectory_path(&dir.0, "e97").exists(),
            "disabled append must not create the trajectory file"
        );
        assert!(!dir.0.exists(), "disabled append must not create the dir");

        // An existing trajectory is left byte-identical.
        let path = append(&dir.0, "e97", true, m.clone()).expect("enabled append");
        let before = fs::read_to_string(&path).unwrap();
        append_if(&dir.0, "e97", false, m, false).expect("skip path");
        assert_eq!(fs::read_to_string(&path).unwrap(), before);
    }

    #[test]
    fn malformed_file_is_an_error_not_a_wipe() {
        let dir = TempDir::new("malformed");
        fs::create_dir_all(&dir.0).unwrap();
        let path = trajectory_path(&dir.0, "e98");
        fs::write(&path, "not json").unwrap();
        let err = append(&dir.0, "e98", true, BTreeMap::new());
        assert!(err.is_err(), "corrupt trajectory must not be clobbered");
        assert_eq!(fs::read_to_string(&path).unwrap(), "not json");
    }
}
