//! The performance monitor: periodic sampling of system counters into
//! time series, mirroring the collector the target paper ran on its
//! testbed machines.

use crate::memory::CrashCause;
use crate::units::{Bytes, SimTime};
use aging_timeseries::{Error, Result, TimeSeries};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The counters the monitor records each sampling period.
///
/// `AvailableBytes` and `UsedSwapBytes` are the two resources the target
/// paper analysed; the others provide context and extra experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Counter {
    /// Free real memory (the paper's primary signal).
    AvailableBytes,
    /// Used swap space (the paper's second signal).
    UsedSwapBytes,
    /// Total commit charge.
    CommittedBytes,
    /// Live (non-leaked) workload heap.
    LiveHeapBytes,
    /// Page faults per second.
    PageFaultsPerSec,
    /// Leaked handle count.
    HandleCount,
    /// Workload allocation rate, bytes/second.
    AllocRateBytesPerSec,
}

impl Counter {
    /// All counters, in display order.
    pub const ALL: [Counter; 7] = [
        Counter::AvailableBytes,
        Counter::UsedSwapBytes,
        Counter::CommittedBytes,
        Counter::LiveHeapBytes,
        Counter::PageFaultsPerSec,
        Counter::HandleCount,
        Counter::AllocRateBytesPerSec,
    ];
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Counter::AvailableBytes => "available_bytes",
            Counter::UsedSwapBytes => "used_swap_bytes",
            Counter::CommittedBytes => "committed_bytes",
            Counter::LiveHeapBytes => "live_heap_bytes",
            Counter::PageFaultsPerSec => "page_faults_per_sec",
            Counter::HandleCount => "handle_count",
            Counter::AllocRateBytesPerSec => "alloc_rate_bytes_per_sec",
        };
        f.write_str(s)
    }
}

/// One sample row (all counters at one instant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample timestamp.
    pub time: SimTime,
    /// Free real memory.
    pub available: Bytes,
    /// Used swap.
    pub used_swap: Bytes,
    /// Commit charge.
    pub committed: Bytes,
    /// Live workload heap.
    pub live_heap: Bytes,
    /// Page faults per second.
    pub page_faults_per_sec: f64,
    /// Handle count.
    pub handle_count: u64,
    /// Allocation rate (bytes/second) over the last period.
    pub alloc_rate: f64,
}

impl Sample {
    /// The value of one counter in this row — the single source of truth
    /// for the counter ↔ field mapping (used by [`MonitorLog::record`] and
    /// by live feeds such as `aging-stream`'s machine source).
    pub fn value(&self, counter: Counter) -> f64 {
        match counter {
            Counter::AvailableBytes => self.available.as_f64(),
            Counter::UsedSwapBytes => self.used_swap.as_f64(),
            Counter::CommittedBytes => self.committed.as_f64(),
            Counter::LiveHeapBytes => self.live_heap.as_f64(),
            Counter::PageFaultsPerSec => self.page_faults_per_sec,
            Counter::HandleCount => self.handle_count as f64,
            Counter::AllocRateBytesPerSec => self.alloc_rate,
        }
    }
}

/// A crash event observed by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// When the machine died.
    pub time: SimTime,
    /// Why it died.
    pub cause: CrashCause,
}

/// The complete log of one monitored run: per-counter time series plus
/// crash events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorLog {
    sample_period: f64,
    samples: BTreeMap<Counter, Vec<f64>>,
    crashes: Vec<CrashEvent>,
}

impl MonitorLog {
    /// Creates an empty log with the given sampling period (seconds).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a non-positive period.
    pub fn new(sample_period: f64) -> Result<Self> {
        if !(sample_period > 0.0 && sample_period.is_finite()) {
            return Err(Error::invalid(
                "sample_period",
                "must be finite and positive",
            ));
        }
        let samples = Counter::ALL.iter().map(|&c| (c, Vec::new())).collect();
        Ok(MonitorLog {
            sample_period,
            samples,
            crashes: Vec::new(),
        })
    }

    /// Sampling period in seconds.
    pub fn sample_period(&self) -> f64 {
        self.sample_period
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples
            .get(&Counter::AvailableBytes)
            .map_or(0, Vec::len)
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records one sample row.
    pub fn record(&mut self, s: &Sample) {
        for c in Counter::ALL {
            self.samples.entry(c).or_default().push(s.value(c));
        }
    }

    /// Records a crash event.
    pub fn record_crash(&mut self, event: CrashEvent) {
        self.crashes.push(event);
    }

    /// The crash events, in time order.
    pub fn crashes(&self) -> &[CrashEvent] {
        &self.crashes
    }

    /// Raw values of one counter.
    pub fn values(&self, counter: Counter) -> &[f64] {
        self.samples.get(&counter).map_or(&[], Vec::as_slice)
    }

    /// Serialises the full log (all counters + crash events) to JSON, so
    /// simulated campaigns can be archived and re-analysed without
    /// re-simulation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] wrapping serialisation failures.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| Error::Numerical(format!("monitor json: {e}")))
    }

    /// Restores a log saved by [`MonitorLog::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] wrapping parse failures.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| Error::Numerical(format!("monitor json: {e}")))
    }

    /// One counter as a [`TimeSeries`] anchored at time 0.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when no samples were recorded.
    pub fn series(&self, counter: Counter) -> Result<TimeSeries> {
        let values = self.values(counter);
        if values.is_empty() {
            return Err(Error::Empty);
        }
        TimeSeries::from_values(0.0, self.sample_period, values.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, avail_mib: u64) -> Sample {
        Sample {
            time: SimTime::from_secs(t),
            available: Bytes::mib(avail_mib),
            used_swap: Bytes::mib(1),
            committed: Bytes::mib(100),
            live_heap: Bytes::mib(40),
            page_faults_per_sec: 3.5,
            handle_count: 120,
            alloc_rate: 5e5,
        }
    }

    #[test]
    fn record_and_read_back() {
        let mut log = MonitorLog::new(30.0).unwrap();
        assert!(log.is_empty());
        log.record(&sample(0.0, 50));
        log.record(&sample(30.0, 48));
        assert_eq!(log.len(), 2);
        assert_eq!(
            log.values(Counter::AvailableBytes),
            &[Bytes::mib(50).as_f64(), Bytes::mib(48).as_f64()]
        );
        assert_eq!(log.values(Counter::HandleCount), &[120.0, 120.0]);
    }

    #[test]
    fn series_carries_sampling_grid() {
        let mut log = MonitorLog::new(30.0).unwrap();
        log.record(&sample(0.0, 50));
        log.record(&sample(30.0, 48));
        let ts = log.series(Counter::AvailableBytes).unwrap();
        assert_eq!(ts.dt(), 30.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.time_at(1), 30.0);
    }

    #[test]
    fn empty_series_is_error() {
        let log = MonitorLog::new(30.0).unwrap();
        assert!(log.series(Counter::UsedSwapBytes).is_err());
        assert_eq!(log.values(Counter::UsedSwapBytes), &[] as &[f64]);
    }

    #[test]
    fn crash_events_accumulate() {
        let mut log = MonitorLog::new(5.0).unwrap();
        log.record_crash(CrashEvent {
            time: SimTime::from_secs(100.0),
            cause: CrashCause::OutOfMemory,
        });
        assert_eq!(log.crashes().len(), 1);
        assert_eq!(log.crashes()[0].cause, CrashCause::OutOfMemory);
    }

    #[test]
    fn invalid_period_rejected() {
        assert!(MonitorLog::new(0.0).is_err());
        assert!(MonitorLog::new(f64::NAN).is_err());
    }

    #[test]
    fn json_round_trip() {
        let mut log = MonitorLog::new(30.0).unwrap();
        log.record(&sample(0.0, 50));
        log.record(&sample(30.0, 48));
        log.record_crash(CrashEvent {
            time: SimTime::from_secs(60.0),
            cause: CrashCause::Thrashing,
        });
        let json = log.to_json().unwrap();
        let back = MonitorLog::from_json(&json).unwrap();
        assert_eq!(log, back);
        assert!(MonitorLog::from_json("not json").is_err());
    }

    #[test]
    fn counter_names_are_snake_case() {
        for c in Counter::ALL {
            let name = c.to_string();
            assert!(name
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch == '_' || ch.is_ascii_digit()));
        }
    }
}
