//! Property tests for the consistent-hash ring: total coverage (every
//! machine id owns exactly one shard), bounded load imbalance, seed
//! replay stability, and rebalancing locality (growing the ring only
//! moves ids to the new shard).

use aging_cluster::HashRing;
use proptest::prelude::*;

proptest! {
    /// Every machine id maps to exactly one shard, the mapping is a pure
    /// function of the ring parameters (replaying the seed reproduces
    /// it), and partitioning is consistent with the point lookups.
    #[test]
    fn every_id_maps_to_exactly_one_stable_shard(
        shards in 1u64..=8,
        seed in 0u64..u64::MAX,
        ids in prop::collection::vec(0u64..u64::MAX, 1..=200),
    ) {
        let ring = HashRing::new(shards, 32, seed).expect("ring");
        let replay = HashRing::new(shards, 32, seed).expect("ring replay");
        for &id in &ids {
            let shard = ring.shard_of(id);
            prop_assert!(shard < shards, "id {id} routed to ghost shard {shard}");
            prop_assert_eq!(shard, replay.shard_of(id), "seed replay diverged for id {}", id);
        }
        let parts = ring.partition(&ids);
        prop_assert_eq!(parts.len(), shards as usize);
        let total: usize = parts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, ids.len(), "partition lost or duplicated ids");
        for (shard, part) in parts.iter().enumerate() {
            for &id in part {
                prop_assert_eq!(ring.shard_of(id), shard as u64);
            }
        }
    }

    /// With enough virtual nodes, no shard's share of a large uniform id
    /// population strays beyond a generous tolerance band around the
    /// fair share (the band is wide because consistent hashing trades
    /// perfect balance for rebalancing locality).
    #[test]
    fn shard_load_stays_within_tolerance(
        shards in 2u64..=6,
        seed in 0u64..u64::MAX,
    ) {
        let ring = HashRing::new(shards, 128, seed).expect("ring");
        let n = 20_000u64;
        let mut counts = vec![0u64; shards as usize];
        for id in 0..n {
            counts[ring.shard_of(id) as usize] += 1;
        }
        let fair = n as f64 / shards as f64;
        for (shard, &count) in counts.iter().enumerate() {
            let ratio = count as f64 / fair;
            prop_assert!(
                (0.5..=1.5).contains(&ratio),
                "shard {} holds {:.2}x its fair share ({} of {})",
                shard, ratio, count, n
            );
        }
    }

    /// Rebalancing locality: growing from `shards` to `shards + 1`
    /// leaves every id either where it was or on the *new* shard.
    #[test]
    fn growing_the_ring_never_shuffles_between_old_shards(
        shards in 1u64..=7,
        seed in 0u64..u64::MAX,
        ids in prop::collection::vec(0u64..u64::MAX, 1..=300),
    ) {
        let old = HashRing::new(shards, 32, seed).expect("old ring");
        let new = HashRing::new(shards + 1, 32, seed).expect("new ring");
        for &id in &ids {
            let (a, b) = (old.shard_of(id), new.shard_of(id));
            prop_assert!(
                a == b || b == shards,
                "id {} moved between old shards {} -> {}", id, a, b
            );
        }
    }
}
