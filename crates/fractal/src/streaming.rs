//! Windowed-incremental (online) estimators over unbounded streams.
//!
//! The batch API of this crate computes on whole slices. This module wraps
//! the two kernels the crash predictor runs per sample — the local Hölder
//! exponent of a trailing neighbourhood and the fractal dimension of a
//! sliding Hölder-trace window — as re-entrant streaming estimators backed
//! by [`RingBuffer`]s, so an indefinitely long counter stream is analysed
//! in O(window) work and O(window) memory per sample.
//!
//! These are the kernels underneath `aging-stream`'s online detectors; the
//! arithmetic is byte-for-byte the batch estimators' (each emission copies
//! its ring window into a scratch buffer and calls the batch routine), so
//! streaming results are identical to re-running the batch code on the
//! same trailing window — only the bookkeeping is incremental.
//!
//! # Examples
//!
//! ```
//! use aging_fractal::streaming::StreamingHolder;
//!
//! # fn main() -> Result<(), aging_timeseries::Error> {
//! let mut holder = StreamingHolder::new(16, 8, 2.0)?;
//! let mut trace = Vec::new();
//! for i in 0..64 {
//!     let v = (i as f64 * 0.7).sin() * 3.0 + i as f64 * 0.05;
//!     if let Some(h) = holder.push(v)? {
//!         trace.push(h);
//!     }
//! }
//! // One Hölder point per sample once the neighbourhood fills.
//! assert_eq!(trace.len(), 64 - 2 * 16);
//! # Ok(())
//! # }
//! ```

use aging_timeseries::ring::RingBuffer;
use aging_timeseries::{stats, Error, Result};

use crate::dimension;
use crate::holder;

/// Streaming local Hölder exponent of the trailing `2·radius + 1`-sample
/// neighbourhood.
///
/// Each push appends one raw sample; once the neighbourhood is full, every
/// push emits the increment-method Hölder exponent of the trailing window
/// (exactly [`holder::increment_exponent`] on those samples), i.e. the
/// online analogue of the batch Hölder trace delayed by `radius` samples.
#[derive(Debug, Clone)]
pub struct StreamingHolder {
    ring: RingBuffer,
    scratch: Vec<f64>,
    max_lag: usize,
    max_h: f64,
}

impl StreamingHolder {
    /// Creates an estimator with neighbourhood radius `radius` (window
    /// `2·radius + 1`), increment lags up to `max_lag` and exponent cap
    /// `max_h`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a zero radius, `max_lag <
    /// 4`, a non-positive `max_h`, or a neighbourhood too short for the
    /// requested lags (`2·radius + 1 < 4·max_lag`).
    pub fn new(radius: usize, max_lag: usize, max_h: f64) -> Result<Self> {
        if radius == 0 {
            return Err(Error::invalid("radius", "must be positive"));
        }
        if max_lag < 4 {
            return Err(Error::invalid("max_lag", "must be at least 4"));
        }
        if !(max_h > 0.0) {
            return Err(Error::invalid("max_h", "must be positive"));
        }
        let window = 2 * radius + 1;
        if window < 4 * max_lag {
            return Err(Error::invalid(
                "radius",
                "neighbourhood 2*radius+1 must be at least 4*max_lag",
            ));
        }
        Ok(StreamingHolder {
            ring: RingBuffer::new(window)?,
            scratch: Vec::with_capacity(window),
            max_lag,
            max_h,
        })
    }

    /// The neighbourhood width `2·radius + 1`.
    pub fn window(&self) -> usize {
        self.ring.capacity()
    }

    /// Samples consumed so far.
    pub fn samples_seen(&self) -> u64 {
        self.ring.pushed()
    }

    /// Feeds one raw sample; emits the Hölder exponent of the trailing
    /// neighbourhood once it has filled.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] for NaN/infinite samples and
    /// propagates estimator failures.
    pub fn push(&mut self, value: f64) -> Result<Option<f64>> {
        if !value.is_finite() {
            return Err(Error::NonFinite {
                index: self.ring.pushed() as usize,
            });
        }
        self.ring.push(value);
        if !self.ring.is_full() {
            return Ok(None);
        }
        self.ring.copy_to(&mut self.scratch);
        holder::increment_exponent(&self.scratch, self.max_lag, self.max_h).map(Some)
    }

    /// Feeds a column of samples, appending one exponent per emitting
    /// sample to `out` (cleared first). Results are bit-identical to
    /// calling [`StreamingHolder::push`] per element and collecting the
    /// `Some` values — the slice form exists so column ingestion crosses
    /// the estimator boundary once per batch instead of once per sample.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] at the first NaN/infinite input;
    /// samples before the offending one remain pushed and their exponents
    /// remain in `out`.
    pub fn push_slice(&mut self, values: &[f64], out: &mut Vec<f64>) -> Result<()> {
        out.clear();
        for &value in values {
            if let Some(h) = self.push(value)? {
                out.push(h);
            }
        }
        Ok(())
    }

    /// Clears the sample window (e.g. after a reboot).
    pub fn reset(&mut self) {
        self.ring.clear();
    }

    /// Serializes the dynamic state (the neighbourhood ring; parameters
    /// are re-supplied at construction) via [`aging_timeseries::persist`].
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        self.ring.encode_state(out);
    }

    /// Restores state written by [`StreamingHolder::encode_state`] into an
    /// estimator constructed with the same parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncation or a window
    /// mismatch.
    pub fn restore_state(&mut self, r: &mut aging_timeseries::persist::Reader<'_>) -> Result<()> {
        self.ring.restore_state(r)
    }
}

/// Which graph-dimension estimator a [`StreamingDimension`] applies to its
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowDimension {
    /// Grid box-counting with smoothing fallback
    /// ([`dimension::box_counting_or_smooth`], the paper's choice).
    #[default]
    BoxCounting,
    /// Variation/oscillation method, mapping degenerate (constant)
    /// windows to dimension 1.
    Variation,
}

impl WindowDimension {
    /// Applies the estimator to one window.
    ///
    /// # Errors
    ///
    /// Propagates the underlying estimator's failures; degenerate windows
    /// are mapped to dimension 1 rather than erroring.
    pub fn estimate(&self, window: &[f64]) -> Result<f64> {
        match self {
            WindowDimension::BoxCounting => dimension::box_counting_or_smooth(window),
            WindowDimension::Variation => match dimension::variation(window) {
                Ok(est) => Ok(est.dimension),
                Err(Error::Numerical(_)) => Ok(1.0),
                Err(e) => Err(e),
            },
        }
    }
}

/// A dimension emission: the fractal dimension of the current window plus
/// its mean (the detector's two per-window measurements).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimensionPoint {
    /// Zero-based index of the push that produced this window.
    pub input_index: u64,
    /// Estimated graph dimension of the window.
    pub dimension: f64,
    /// Arithmetic mean of the window (mean Hölder exponent when fed a
    /// Hölder trace).
    pub mean: f64,
}

/// Streaming sliding-window fractal dimension: feed it a (Hölder) trace
/// point-by-point and it emits the window's graph dimension every `stride`
/// pushes once `window` points have arrived.
///
/// Emission timing matches the batch detector: the first window fires at
/// push `window`, then every `stride` pushes after that.
#[derive(Debug, Clone)]
pub struct StreamingDimension {
    ring: RingBuffer,
    scratch: Vec<f64>,
    method: WindowDimension,
    stride: usize,
}

impl StreamingDimension {
    /// Creates a sliding estimator over `window`-point windows advancing
    /// `stride` points between emissions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for zero `window` or `stride`,
    /// or `stride > window` (windows must overlap or tile).
    pub fn new(method: WindowDimension, window: usize, stride: usize) -> Result<Self> {
        if window == 0 {
            return Err(Error::invalid("window", "must be positive"));
        }
        if stride == 0 {
            return Err(Error::invalid("stride", "must be positive"));
        }
        if stride > window {
            return Err(Error::invalid("stride", "must not exceed the window"));
        }
        Ok(StreamingDimension {
            ring: RingBuffer::new(window)?,
            scratch: Vec::with_capacity(window),
            method,
            stride,
        })
    }

    /// The window width.
    pub fn window(&self) -> usize {
        self.ring.capacity()
    }

    /// The emission stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Points consumed so far.
    pub fn points_seen(&self) -> u64 {
        self.ring.pushed()
    }

    /// Feeds one trace point; emits a [`DimensionPoint`] when a window
    /// boundary is reached.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] for NaN/infinite input and propagates
    /// estimator failures.
    pub fn push(&mut self, value: f64) -> Result<Option<DimensionPoint>> {
        if !value.is_finite() {
            return Err(Error::NonFinite {
                index: self.ring.pushed() as usize,
            });
        }
        self.ring.push(value);
        let n = self.ring.pushed();
        let window = self.ring.capacity() as u64;
        if n < window || !(n - window).is_multiple_of(self.stride as u64) {
            return Ok(None);
        }
        self.ring.copy_to(&mut self.scratch);
        let dimension = self.method.estimate(&self.scratch)?;
        let mean = stats::mean(&self.scratch)?;
        Ok(Some(DimensionPoint {
            input_index: n - 1,
            dimension,
            mean,
        }))
    }

    /// Feeds a column of samples, appending one [`DimensionPoint`] per
    /// emitting sample to `out` (cleared first). Results are bit-identical
    /// to calling [`StreamingDimension::push`] per element and collecting
    /// the `Some` values.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] at the first NaN/infinite input and
    /// propagates estimator failures; samples before the offending one
    /// remain pushed and their points remain in `out`.
    pub fn push_slice(&mut self, values: &[f64], out: &mut Vec<DimensionPoint>) -> Result<()> {
        out.clear();
        for &value in values {
            if let Some(point) = self.push(value)? {
                out.push(point);
            }
        }
        Ok(())
    }

    /// Clears the window and the emission phase (e.g. after a reboot).
    pub fn reset(&mut self) {
        let window = self.ring.capacity();
        let method = self.method;
        let stride = self.stride;
        *self = StreamingDimension::new(method, window, stride).expect("parameters already valid");
    }

    /// Serializes the dynamic state via [`aging_timeseries::persist`].
    ///
    /// The ring's lifetime push count is part of the blob — the emission
    /// phase is `pushed mod stride`, so restoring it is what keeps the
    /// recovered estimator firing on the same window/stride grid.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        self.ring.encode_state(out);
    }

    /// Restores state written by [`StreamingDimension::encode_state`] into
    /// an estimator constructed with the same parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncation or a window
    /// mismatch.
    pub fn restore_state(&mut self, r: &mut aging_timeseries::persist::Reader<'_>) -> Result<()> {
        self.ring.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::holder::{holder_trace, HolderEstimator, IncrementConfig};
    use aging_timeseries::window::SlidingWindows;

    fn signal(n: usize) -> Vec<f64> {
        generate::fbm(n, 0.6, 5).unwrap()
    }

    #[test]
    fn constructor_guards() {
        assert!(StreamingHolder::new(0, 8, 2.0).is_err());
        assert!(StreamingHolder::new(16, 3, 2.0).is_err());
        assert!(StreamingHolder::new(16, 8, 0.0).is_err());
        assert!(StreamingHolder::new(8, 8, 2.0).is_err()); // 17 < 32
        assert!(StreamingDimension::new(WindowDimension::BoxCounting, 0, 1).is_err());
        assert!(StreamingDimension::new(WindowDimension::BoxCounting, 64, 0).is_err());
        assert!(StreamingDimension::new(WindowDimension::BoxCounting, 64, 65).is_err());
    }

    #[test]
    fn streaming_holder_matches_batch_trace() {
        let x = signal(512);
        let radius = 16;
        let estimator = HolderEstimator::LocalIncrement(IncrementConfig {
            window_radius: radius,
            max_lag: 8,
            max_h: 2.0,
        });
        let batch = holder_trace(&x, &estimator).unwrap();
        let mut streaming = StreamingHolder::new(radius, 8, 2.0).unwrap();
        let mut online = Vec::new();
        for &v in &x {
            if let Some(h) = streaming.push(v).unwrap() {
                online.push(h);
            }
        }
        // The batch trace pads the edges; its interior point at index
        // i + radius is the trailing-window emission for sample i + 2r.
        assert_eq!(online.len(), x.len() - 2 * radius);
        for (k, h) in online.iter().enumerate() {
            let batch_h = batch[k + radius];
            assert!(
                (h - batch_h).abs() < 1e-12,
                "point {k}: streaming {h} vs batch {batch_h}"
            );
        }
    }

    #[test]
    fn streaming_dimension_matches_sliding_windows() {
        let trace = signal(400);
        let (window, stride) = (64, 16);
        let mut streaming =
            StreamingDimension::new(WindowDimension::Variation, window, stride).unwrap();
        let mut online = Vec::new();
        for &v in &trace {
            if let Some(p) = streaming.push(v).unwrap() {
                online.push(p);
            }
        }
        let batch: Vec<f64> = SlidingWindows::new(&trace, window, stride)
            .unwrap()
            .map(|w| WindowDimension::Variation.estimate(w).unwrap())
            .collect();
        assert_eq!(online.len(), batch.len());
        for (p, d) in online.iter().zip(&batch) {
            assert!((p.dimension - d).abs() < 1e-12);
        }
        // Emission indices follow the window/stride grid.
        assert_eq!(online[0].input_index, (window - 1) as u64);
        assert_eq!(online[1].input_index, (window - 1 + stride) as u64);
    }

    #[test]
    fn reset_restarts_cleanly() {
        let x = signal(200);
        let mut holder = StreamingHolder::new(16, 8, 2.0).unwrap();
        let mut dim = StreamingDimension::new(WindowDimension::BoxCounting, 64, 16).unwrap();
        for &v in &x[..100] {
            if let Some(h) = holder.push(v).unwrap() {
                dim.push(h).unwrap();
            }
        }
        holder.reset();
        dim.reset();
        // After reset the warmup repeats: no emission until the windows
        // refill.
        let mut emitted = 0;
        for &v in &x[100..100 + 32] {
            if holder.push(v).unwrap().is_some() {
                emitted += 1;
            }
        }
        assert_eq!(emitted, 0);
        assert!(holder.push(x[132]).unwrap().is_some());
    }

    #[test]
    fn non_finite_rejected() {
        let mut holder = StreamingHolder::new(16, 8, 2.0).unwrap();
        assert!(holder.push(f64::INFINITY).is_err());
        let mut dim = StreamingDimension::new(WindowDimension::BoxCounting, 8, 2).unwrap();
        assert!(dim.push(f64::NAN).is_err());
    }
}
