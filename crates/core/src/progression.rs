//! Multifractality progression analysis (experiment E6): how the
//! multifractal character of a memory-resource signal evolves as the
//! system ages.
//!
//! The paper's second observation is that aging systems show
//! *intensifying* multifractality: the singularity spectrum widens and the
//! typical Hölder exponent falls as crash approaches. This module splits a
//! monitored series into life segments and measures each one.

use aging_fractal::holder::{holder_trace, HolderEstimator};
use aging_fractal::spectrum::{leader_cumulants, mfdfa, MfdfaConfig};
use aging_timeseries::{stats, Error, Result};
use aging_wavelet::Wavelet;

/// Multifractality measurements of one life segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentMultifractality {
    /// First sample index of the segment.
    pub start: usize,
    /// One-past-last sample index.
    pub end: usize,
    /// Mean local Hölder exponent over the segment (falls with aging).
    pub mean_holder: f64,
    /// MF-DFA spectrum width `max α − min α` (grows with aging).
    pub spectrum_width: f64,
    /// Generalised Hurst exponent `h(2)` from the same MF-DFA run.
    pub hurst: Option<f64>,
    /// Wavelet-leader second log-cumulant (more negative = more
    /// multifractal), when the segment is long enough.
    pub c2: Option<f64>,
}

/// Configuration of the progression analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressionConfig {
    /// Number of equal-length life segments.
    pub segments: usize,
    /// Hölder estimator for the per-segment mean exponent.
    pub estimator: HolderEstimator,
    /// MF-DFA configuration.
    pub mfdfa: MfdfaConfig,
    /// Wavelet for the leader cumulants.
    pub wavelet: Wavelet,
}

impl Default for ProgressionConfig {
    fn default() -> Self {
        ProgressionConfig {
            segments: 4,
            estimator: HolderEstimator::default(),
            mfdfa: MfdfaConfig::default(),
            wavelet: Wavelet::Daubechies6,
        }
    }
}

/// Splits `values` into `config.segments` equal segments and measures the
/// multifractality of each.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `segments < 2` and
/// [`Error::TooShort`] when a segment falls below the estimators' minimum
/// (512 samples per segment); leader cumulants are skipped (set to `None`)
/// on segments where the dyadic analysis fails rather than failing the
/// whole progression.
pub fn progression(
    values: &[f64],
    config: &ProgressionConfig,
) -> Result<Vec<SegmentMultifractality>> {
    if config.segments < 2 {
        return Err(Error::invalid("segments", "must be at least 2"));
    }
    let seg_len = values.len() / config.segments;
    if seg_len < 512 {
        return Err(Error::TooShort {
            required: 512 * config.segments,
            actual: values.len(),
        });
    }
    let mut out = Vec::with_capacity(config.segments);
    for s in 0..config.segments {
        let start = s * seg_len;
        let end = if s + 1 == config.segments {
            values.len()
        } else {
            start + seg_len
        };
        let segment = &values[start..end];

        let trace = holder_trace(segment, &config.estimator)?;
        let mean_holder = stats::mean(&trace)?;

        let mf = mfdfa(segment, &config.mfdfa)?;
        let c2 = leader_cumulants(segment, config.wavelet, 6, 2)
            .ok()
            .map(|lc| lc.c2);

        out.push(SegmentMultifractality {
            start,
            end,
            mean_holder,
            spectrum_width: mf.width(),
            hurst: mf.hurst(),
            c2,
        });
    }
    Ok(out)
}

/// Convenience verdict: does the progression show intensifying
/// multifractality (late-life mean Hölder below early-life, and late-life
/// width at or above early-life)?
pub fn is_aging_signature(segments: &[SegmentMultifractality]) -> bool {
    match (segments.first(), segments.last()) {
        (Some(first), Some(last)) => last.mean_holder < first.mean_holder,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_fractal::generate;

    #[test]
    fn stationary_signal_shows_no_aging_signature() {
        let x = generate::fgn(4096, 0.6, 1).unwrap();
        let prog = progression(&x, &ProgressionConfig::default()).unwrap();
        assert_eq!(prog.len(), 4);
        // Mean Hölder roughly constant across segments.
        let means: Vec<f64> = prog.iter().map(|s| s.mean_holder).collect();
        let spread = means.iter().copied().fold(f64::MIN, f64::max)
            - means.iter().copied().fold(f64::MAX, f64::min);
        assert!(spread < 0.15, "spread {spread}");
    }

    #[test]
    fn regularity_collapse_is_detected() {
        // Early life: persistent fBm; late life: white noise around the
        // last level — a collapsing Hölder exponent.
        let n = 4096;
        let mut x = generate::fbm(n / 2, 0.8, 2).unwrap();
        let last = *x.last().unwrap();
        let noise = generate::white_noise(n / 2, 3).unwrap();
        x.extend(noise.iter().map(|v| last + v));
        let prog = progression(&x, &ProgressionConfig::default()).unwrap();
        assert!(
            prog.last().unwrap().mean_holder + 0.2 < prog.first().unwrap().mean_holder,
            "first {} last {}",
            prog.first().unwrap().mean_holder,
            prog.last().unwrap().mean_holder
        );
        assert!(is_aging_signature(&prog));
    }

    #[test]
    fn segment_bounds_tile_the_series() {
        let x = generate::fgn(4096, 0.5, 4).unwrap();
        let prog = progression(&x, &ProgressionConfig::default()).unwrap();
        assert_eq!(prog[0].start, 0);
        assert_eq!(prog.last().unwrap().end, 4096);
        for w in prog.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn guards() {
        let x = generate::fgn(4096, 0.5, 5).unwrap();
        let cfg = ProgressionConfig {
            segments: 1,
            ..ProgressionConfig::default()
        };
        assert!(progression(&x, &cfg).is_err());
        let cfg = ProgressionConfig::default();
        assert!(progression(&x[..1000], &cfg).is_err());
    }

    #[test]
    fn empty_progression_has_no_signature() {
        assert!(!is_aging_signature(&[]));
    }
}
