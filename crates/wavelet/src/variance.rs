//! Wavelet variance analysis (Percival 1995).
//!
//! The MODWT splits a signal's variance across octave scales
//! `τ_j = 2^{j−1}`; for long-memory processes the per-scale variance obeys
//! a power law `ν²(τ_j) ∝ τ_j^{2H−2}`, giving yet another Hurst estimator
//! — one that is robust to polynomial trends when the wavelet has enough
//! vanishing moments.

use crate::filters::Wavelet;
use crate::modwt::modwt;
use aging_timeseries::regression::{log_log_fit, LineFit};
use aging_timeseries::{Error, Result};

/// Per-scale wavelet variance of a signal.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletVariance {
    /// Octave scales `τ_j = 2^{j−1}` (in samples).
    pub scales: Vec<f64>,
    /// Unbiased per-scale variance estimates (boundary coefficients
    /// excluded).
    pub variances: Vec<f64>,
    /// Number of non-boundary coefficients per scale.
    pub counts: Vec<usize>,
}

impl WaveletVariance {
    /// Computes the MODWT wavelet variance of `data` over `levels` octaves.
    ///
    /// Boundary-affected coefficients (the first `(2^j − 1)(L − 1)` of each
    /// level) are excluded, following the unbiased estimator of Percival &
    /// Walden.
    ///
    /// # Errors
    ///
    /// Propagates [`modwt`] failures and returns
    /// [`Error::TooShort`] when a level retains no interior coefficients.
    pub fn compute(data: &[f64], wavelet: Wavelet, levels: usize) -> Result<Self> {
        let dec = modwt(data, wavelet, levels)?;
        let l = wavelet.filter_len();
        let mut scales = Vec::with_capacity(levels);
        let mut variances = Vec::with_capacity(levels);
        let mut counts = Vec::with_capacity(levels);
        for j in 1..=levels {
            let boundary = ((1usize << j) - 1) * (l - 1);
            let band = dec.detail(j);
            if boundary >= band.len() {
                return Err(Error::TooShort {
                    required: boundary + 1,
                    actual: band.len(),
                });
            }
            let interior = &band[boundary..];
            let var = interior.iter().map(|v| v * v).sum::<f64>() / interior.len() as f64;
            scales.push((1u64 << (j - 1)) as f64);
            variances.push(var);
            counts.push(interior.len());
        }
        Ok(WaveletVariance {
            scales,
            variances,
            counts,
        })
    }

    /// Total variance captured across the analysed scales (approaches the
    /// sample variance as `levels` grows).
    pub fn total(&self) -> f64 {
        self.variances.iter().sum()
    }

    /// Fits `log ν²(τ)` against `log τ`.
    ///
    /// # Errors
    ///
    /// Propagates fit failures (e.g. a constant signal with zero variance
    /// at every scale).
    pub fn scaling_fit(&self) -> Result<LineFit> {
        let pts: Vec<(f64, f64)> = self
            .scales
            .iter()
            .zip(&self.variances)
            .filter(|&(_, &v)| v > 0.0)
            .map(|(&s, &v)| (s, v))
            .collect();
        if pts.len() < 3 {
            return Err(Error::Numerical(
                "fewer than 3 positive wavelet variances".into(),
            ));
        }
        let (xs, ys): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
        log_log_fit(&xs, &ys)
    }

    /// The Hurst exponent implied by the scaling fit
    /// (`H = (slope + 2) / 2` for fGn-like input).
    ///
    /// # Errors
    ///
    /// Propagates [`WaveletVariance::scaling_fit`] failures.
    pub fn hurst(&self) -> Result<f64> {
        Ok((self.scaling_fit()?.slope + 2.0) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-fGn surrogate via layered sinusoids is not
    /// good enough for variance laws; use the real generator from the
    /// fractal crate in integration tests instead. Here: structural tests
    /// plus white-noise, whose wavelet variance is flat-ish in τ with
    /// slope ≈ −1 in the fGn convention (H ≈ 0.5).
    fn white(n: usize, seed: u64) -> Vec<f64> {
        // xorshift-based deterministic noise, decorrelated enough for a
        // slope test.
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn structure_and_counts() {
        let x = white(1024, 1);
        let wv = WaveletVariance::compute(&x, Wavelet::Daubechies4, 4).unwrap();
        assert_eq!(wv.scales, vec![1.0, 2.0, 4.0, 8.0]);
        assert_eq!(wv.variances.len(), 4);
        // Counts shrink with level (more boundary exclusion).
        for w in wv.counts.windows(2) {
            assert!(w[1] < w[0]);
        }
        assert!(wv.total() > 0.0);
    }

    #[test]
    fn white_noise_hurst_near_half() {
        let x = white(8192, 7);
        let wv = WaveletVariance::compute(&x, Wavelet::Daubechies4, 6).unwrap();
        let h = wv.hurst().unwrap();
        assert!((h - 0.5).abs() < 0.1, "H {h}");
    }

    #[test]
    fn linear_trend_is_ignored_with_vanishing_moments() {
        // db2 has 2 vanishing moments: adding a strong linear trend must
        // not change the per-scale variances (up to boundary effects).
        let x = white(4096, 3);
        let trended: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| v + 0.5 * i as f64)
            .collect();
        let a = WaveletVariance::compute(&x, Wavelet::Daubechies4, 5).unwrap();
        let b = WaveletVariance::compute(&trended, Wavelet::Daubechies4, 5).unwrap();
        for (u, v) in a.variances.iter().zip(&b.variances) {
            assert!((u - v).abs() < 0.05 * u.max(1e-12), "{u} vs {v}");
        }
    }

    #[test]
    fn constant_signal_fails_gracefully() {
        let x = vec![3.0; 512];
        let wv = WaveletVariance::compute(&x, Wavelet::Haar, 4).unwrap();
        assert!(wv.scaling_fit().is_err());
        assert!(wv.hurst().is_err());
    }

    #[test]
    fn too_short_for_levels() {
        let x = white(40, 4);
        assert!(WaveletVariance::compute(&x, Wavelet::Daubechies12, 3).is_err());
    }
}
