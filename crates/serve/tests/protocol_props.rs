//! Property tests for the wire protocol:
//!
//! 1. codec round-trip identity — any frame encoded, chunked arbitrarily
//!    through the [`FrameDecoder`] and decoded again yields the same
//!    payload bytes;
//! 2. garbage tolerance — arbitrary byte soup fed in arbitrary chunks
//!    never panics the decoder: every byte is either consumed as a
//!    CRC-valid frame, left buffered, or the stream is flagged corrupt;
//! 3. max-frame enforcement — a length prefix above the limit always
//!    flags corruption, no matter what follows.

use aging_memsim::Counter;
use aging_serve::codec::FrameDecoder;
use aging_serve::protocol::{
    columnar_spans, counter_code, crc32, encode_columnar_frame_into, encode_frame,
    expand_column_times, Frame, Record, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// Builds a frame from generated scalars. The `kind` index picks the
/// variant; the numeric payloads reuse whatever generated values apply
/// (the vendored proptest has no enum/tuple strategies).
fn build_frame(kind: usize, a: u64, b: u64, f: f64, text: &str, n_records: usize) -> Frame {
    let records: Vec<Record> = (0..n_records)
        .map(|i| Record {
            machine_id: a.wrapping_add(i as u64),
            counter: counter_code(Counter::ALL[i % Counter::ALL.len()]),
            // Exercise non-finite and negative floats too.
            time_secs: if i % 7 == 3 { f64::NAN } else { f + i as f64 },
            value: if i % 5 == 4 {
                f64::NEG_INFINITY
            } else {
                -f * i as f64
            },
        })
        .collect();
    match kind {
        0 => Frame::Hello {
            version: (a % 256) as u8,
            name: text.to_string(),
        },
        1 => Frame::HelloAck {
            version: PROTOCOL_VERSION,
            window: (a % 65536) as u16,
            max_frame: b as u32,
        },
        2 => Frame::Batch { seq: a, records },
        3 => Frame::Ack {
            seq: a,
            accepted: (b % 65536) as u16,
        },
        4 => Frame::Busy {
            backlog: (a % (u64::from(u32::MAX) + 1)) as u32,
        },
        5 => Frame::MachineDone { machine_id: a },
        6 => Frame::QueryStatus,
        7 => Frame::StatusReply {
            json: text.to_string(),
        },
        8 => Frame::QueryMachine { machine_id: a },
        9 => Frame::MachineReply {
            json: if a.is_multiple_of(2) {
                None
            } else {
                Some(text.to_string())
            },
        },
        10 => Frame::QueryAlarms { since: a },
        11 => Frame::Bye,
        12 => Frame::ByeAck,
        13 => {
            // One machine/counter, delta-encoded times, one value column
            // (protocol v2). Raw u32 deltas round-trip whatever they are.
            let n = n_records.max(1);
            Frame::BatchColumnar {
                seq: a,
                machine_id: b,
                counter: (b % 256) as u8,
                t0: f,
                dt_units: (1..n).map(|i| a.rotate_left(i as u32) as u32).collect(),
                values: (0..n)
                    .map(|i| if i % 4 == 1 { f64::NAN } else { -f * i as f64 })
                    .collect(),
            }
        }
        14 => Frame::QuerySpectrum { machine_id: a },
        15 => Frame::SpectrumReply {
            machine_id: a,
            known: b.is_multiple_of(2),
            widths: (0..n_records)
                .map(|i| {
                    // Counter codes and Δα values round-trip whatever
                    // they are — including non-finite widths.
                    let width = if i % 3 == 2 {
                        f64::INFINITY
                    } else {
                        f * i as f64
                    };
                    ((b.wrapping_add(i as u64) % 256) as u8, width)
                })
                .collect(),
        },
        16 => Frame::QueryRejuv { machine_id: a },
        17 => Frame::RejuvReply {
            machine_id: a,
            known: b.is_multiple_of(2),
            policy: (b % 256) as u8,
            restarts: b,
            denied: a ^ b,
            last_restart_secs: if a.is_multiple_of(3) {
                None
            } else {
                // Non-finite stamps must round-trip like any other f64.
                Some(if a.is_multiple_of(7) { f64::NAN } else { f })
            },
        },
        _ => Frame::Error {
            code: (a % 256) as u8,
            message: text.to_string(),
        },
    }
}

/// Splits `bytes` into chunks whose sizes cycle through `cuts`, feeding
/// each into the decoder.
fn feed_chunked(dec: &mut FrameDecoder, bytes: &[u8], cuts: &[usize]) {
    let mut pos = 0;
    let mut i = 0;
    while pos < bytes.len() {
        let step = cuts[i % cuts.len()].max(1).min(bytes.len() - pos);
        dec.feed(&bytes[pos..pos + step]);
        pos += step;
        i += 1;
    }
}

proptest! {
    /// Round-trip identity: re-encoded payload bytes are identical (the
    /// byte-level comparison sidesteps NaN != NaN on decoded floats).
    #[test]
    fn frames_survive_arbitrary_chunking(
        kinds in prop::collection::vec(0usize..19, 1..=12),
        seeds in prop::collection::vec(0u64..u64::MAX, 12..=12),
        floats in prop::collection::vec(-1e12f64..1e12, 12..=12),
        lens in prop::collection::vec(0usize..40, 12..=12),
        cuts in prop::collection::vec(1usize..37, 1..=8),
    ) {
        let mut wire = Vec::new();
        let mut payloads = Vec::new();
        for (i, &kind) in kinds.iter().enumerate() {
            let text: String = "multifractal-".chars().cycle().take(lens[i]).collect();
            let frame = build_frame(kind, seeds[i], seeds[(i + 1) % seeds.len()], floats[i], &text, lens[i] % 9);
            wire.extend_from_slice(&encode_frame(&frame));
            payloads.push(frame.encode_payload());
        }

        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        feed_chunked(&mut dec, &wire, &cuts);
        for expected in &payloads {
            let got = dec.next_payload().unwrap().expect("frame present");
            prop_assert_eq!(&got, expected);
            let decoded = Frame::decode_payload(&got).expect("decodes");
            prop_assert_eq!(&decoded.encode_payload(), expected);
        }
        prop_assert!(dec.next_payload().unwrap().is_none());
        prop_assert!(!dec.mid_frame());
    }

    /// Arbitrary garbage never panics: each pulled payload either
    /// decodes or is rejected with an error string, and the decoder ends
    /// in a sane state (corrupt, mid-frame, or fully drained).
    #[test]
    fn garbage_never_panics(
        bytes in prop::collection::vec(0u8..=255, 0..=600),
        cuts in prop::collection::vec(1usize..41, 1..=8),
    ) {
        let mut dec = FrameDecoder::new(1024);
        feed_chunked(&mut dec, &bytes, &cuts);
        let mut pulled = 0usize;
        loop {
            match dec.next_payload() {
                Err(_) => {
                    prop_assert!(dec.is_corrupt());
                    // Corruption is sticky.
                    prop_assert!(dec.next_payload().is_err());
                    break;
                }
                Ok(None) => break,
                Ok(Some(payload)) => {
                    // A CRC-passing payload may still be semantic junk;
                    // decode_payload must reject it gracefully, not panic.
                    let _ = Frame::decode_payload(&payload);
                    pulled += 1;
                    prop_assert!(pulled <= bytes.len() / 8 + 1);
                }
            }
        }
    }

    /// Oversized (or zero) length prefixes always corrupt the stream.
    #[test]
    fn max_frame_size_is_enforced(
        excess in prop::collection::vec(1u64..1_000_000, 1..=1),
        tail in prop::collection::vec(0u8..=255, 0..=64),
    ) {
        let max_frame = 256u32;
        let bad_len = u64::from(max_frame) + excess[0];
        let bad_len = u32::try_from(bad_len).unwrap_or(u32::MAX);

        // A frame that would be perfectly valid except for its size.
        let mut wire = bad_len.to_le_bytes().to_vec();
        wire.extend_from_slice(&tail);
        let mut dec = FrameDecoder::new(max_frame);
        dec.feed(&wire);
        prop_assert!(dec.next_payload().is_err());
        prop_assert!(dec.is_corrupt());

        // Sanity: the same payload passes under a larger limit when the
        // frame is honestly sized.
        let payload = vec![0xau8; 16];
        let mut ok = (payload.len() as u32).to_le_bytes().to_vec();
        ok.extend_from_slice(&payload);
        ok.extend_from_slice(&crc32(&payload).to_le_bytes());
        let mut dec = FrameDecoder::new(max_frame);
        dec.feed(&ok);
        prop_assert_eq!(dec.next_payload().unwrap(), Some(payload));
    }

    /// Columnar encoding is total and bit-exact: any f64 time sequence —
    /// dt = 0 runs, non-monotone jumps, deltas past the u32 horizon
    /// (~4096 s), sub-resolution steps, NaN stamps — splits into spans
    /// whose delta-encoded wire frames reconstruct every timestamp and
    /// value bit for bit.
    #[test]
    fn columnar_spans_reconstruct_any_times(
        steps in prop::collection::vec(0.0f64..6000.0, 1..=80),
        start in -1e9f64..1e9,
        max_span in 1usize..20,
    ) {
        let mut times = Vec::with_capacity(steps.len());
        let mut t = start;
        for (i, &s) in steps.iter().enumerate() {
            match i % 5 {
                0 => t += s,            // arbitrary (usually inexact) step
                1 => {}                 // dt = 0: a repeated stamp
                2 => t += s.floor(),    // integral seconds; > 4095 s overflows u32 deltas
                3 => t -= s,            // non-monotone jump back
                _ => {
                    if i % 10 == 4 {
                        t = f64::NAN;   // a poisoned stamp forces a 1-record span
                    } else {
                        t += s / 1e9;   // usually below the 2⁻²⁰ s resolution
                    }
                }
            }
            times.push(t);
            if !t.is_finite() {
                t = start;
            }
        }

        // The spans form a disjoint cover regardless of the input shape.
        let mut spans = Vec::new();
        columnar_spans(&times, max_span, &mut spans);
        let mut covered = 0usize;
        for &(s, l) in &spans {
            prop_assert_eq!(s, covered);
            prop_assert!((1..=max_span).contains(&l));
            covered += l;
        }
        prop_assert_eq!(covered, times.len());

        // Each span round-trips through a real wire frame bit-exactly.
        let mut expanded = Vec::new();
        for &(s, l) in &spans {
            let slice = &times[s..s + l];
            let values: Vec<f64> = slice.iter().map(|&t| t * 0.5 - 1.0).collect();
            let mut wire = Vec::new();
            encode_columnar_frame_into(7, 1, 0, slice, &values, &mut wire)
                .expect("every span from columnar_spans is encodable");
            let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
            dec.feed(&wire);
            let payload = dec.next_payload().unwrap().expect("frame present");
            let Frame::BatchColumnar { t0, dt_units, values: decoded_values, .. } =
                Frame::decode_payload(&payload).expect("decodes")
            else {
                panic!("columnar frame decoded to another variant");
            };
            expand_column_times(t0, &dt_units, &mut expanded);
            prop_assert_eq!(expanded.len(), slice.len());
            for (got, want) in expanded.iter().zip(slice) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
            for (got, want) in decoded_values.iter().zip(&values) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }
}
