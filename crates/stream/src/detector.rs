//! Bounded-memory online detectors.
//!
//! [`StreamingHolderDimension`] is the paper's Hölder-dimension crash
//! predictor restated over the incremental kernels: ring-buffered trailing
//! windows ([`StreamingHolder`], [`StreamingDimension`]) replace the batch
//! detector's grow-only history, making per-sample cost O(window) work and
//! O(window) memory **independent of stream length**. The decision logic
//! (warmup skip, median/MAD baseline, jump/collapse rules, consecutive
//! confirmation) is copied statement-for-statement from
//! [`aging_core::detector::HolderDimensionDetector::push`], and each
//! emission hands the same windows to the same estimators — so the alert
//! sequence is identical to the batch detector's on the same input (the
//! `streaming_parity` integration test enforces this alarm-for-alarm).
//!
//! [`StreamingTrend`] is the classical Mann–Kendall + Sen baseline in the
//! same bounded-memory shape, with the O(window²) S-statistic recomputation
//! replaced by [`StreamingMannKendall`]'s O(window) slide.

use aging_core::baseline::{ResourceDirection, TrendPredictorConfig};
use aging_core::detector::{Alert, AlertLevel, Baseline, DetectorConfig, JumpRule, Trigger};
use aging_fractal::spectrum::{SpectrumConfig, StreamingSpectrum};
use aging_fractal::streaming::{StreamingDimension, StreamingHolder};
use aging_timeseries::persist::{self, Reader};
use aging_timeseries::trend::{StreamingMannKendall, TrendDirection};
use aging_timeseries::{stats, Error, Result};

// Local byte codes for the core enums — the persistence schema is owned
// here, not by `aging-core`. `pub(crate)` so the supervisor's alarm
// history codec shares the same codes.
pub(crate) fn level_code(level: AlertLevel) -> u8 {
    match level {
        AlertLevel::Warning => 0,
        AlertLevel::Alarm => 1,
    }
}

pub(crate) fn level_from_code(code: u8) -> Result<AlertLevel> {
    match code {
        0 => Ok(AlertLevel::Warning),
        1 => Ok(AlertLevel::Alarm),
        c => Err(Error::invalid("persist", format!("bad alert level {c}"))),
    }
}

pub(crate) fn trigger_code(trigger: Trigger) -> u8 {
    match trigger {
        Trigger::DimensionJump => 0,
        Trigger::HolderCollapse => 1,
        Trigger::Both => 2,
    }
}

pub(crate) fn trigger_from_code(code: u8) -> Result<Trigger> {
    match code {
        0 => Ok(Trigger::DimensionJump),
        1 => Ok(Trigger::HolderCollapse),
        2 => Ok(Trigger::Both),
        c => Err(Error::invalid("persist", format!("bad trigger {c}"))),
    }
}

fn put_opt_alert(out: &mut Vec<u8>, alert: Option<Alert>) {
    match alert {
        None => persist::put_bool(out, false),
        Some(a) => {
            persist::put_bool(out, true);
            persist::put_usize(out, a.sample_index);
            persist::put_u8(out, level_code(a.level));
            persist::put_u8(out, trigger_code(a.trigger));
            persist::put_f64(out, a.dimension);
            persist::put_f64(out, a.mean_holder);
            persist::put_f64(out, a.dimension_baseline);
            persist::put_f64(out, a.holder_baseline);
        }
    }
}

fn read_opt_alert(r: &mut Reader<'_>) -> Result<Option<Alert>> {
    if !r.bool()? {
        return Ok(None);
    }
    Ok(Some(Alert {
        sample_index: r.usize_()?,
        level: level_from_code(r.u8()?)?,
        trigger: trigger_from_code(r.u8()?)?,
        dimension: r.f64()?,
        mean_holder: r.f64()?,
        dimension_baseline: r.f64()?,
        holder_baseline: r.f64()?,
    }))
}

fn put_f64_vec(out: &mut Vec<u8>, v: &[f64]) {
    persist::put_usize(out, v.len());
    for &x in v {
        persist::put_f64(out, x);
    }
}

fn read_f64_vec(r: &mut Reader<'_>, max_len: usize) -> Result<Vec<f64>> {
    let n = r.usize_()?;
    if n > max_len {
        return Err(Error::invalid(
            "persist",
            format!("vector length {n} exceeds bound {max_len}"),
        ));
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r.f64()?);
    }
    Ok(v)
}

/// Which online detector to run on a stream.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DetectorSpec {
    /// The paper's Hölder-dimension detector (streaming form).
    Holder(DetectorConfig),
    /// Mann–Kendall + Sen-slope exhaustion baseline (streaming form).
    Trend(TrendPredictorConfig),
    /// Multifractal spectrum-width (Δα) detector — the paper's fourth
    /// claim, the spectrum widening with age, as an online signal.
    Spectrum(SpectrumDetectorConfig),
}

impl DetectorSpec {
    /// Short stable name for telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            DetectorSpec::Holder(_) => "holder-dimension",
            DetectorSpec::Trend(_) => "mann-kendall-sen",
            DetectorSpec::Spectrum(_) => "spectrum-width",
        }
    }
}

/// Detector-specific payload of a streaming alert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlertDetail {
    /// Hölder-dimension alert (the batch detector's full measurement).
    Holder(Alert),
    /// Trend alert: estimated time to exhaustion when the alarm fired.
    Trend {
        /// Seconds until the extrapolated series crosses the exhaustion
        /// level.
        eta_secs: Option<f64>,
    },
    /// Spectrum-width alert: the anomalous window's Δα against the frozen
    /// baseline width.
    Spectrum {
        /// Spectrum width Δα of the window that fired.
        delta_alpha: f64,
        /// The baseline width it was compared against.
        baseline_width: f64,
    },
}

/// An alert emitted by a [`StreamingDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamAlert {
    /// Zero-based index of the accepted sample that produced the alert.
    pub sample_index: u64,
    /// Severity.
    pub level: AlertLevel,
    /// Detector-specific measurements.
    pub detail: AlertDetail,
}

/// Streaming form of the paper's Hölder-dimension detector.
///
/// See the module docs for the parity contract with
/// [`aging_core::detector::HolderDimensionDetector`].
#[derive(Debug, Clone)]
pub struct StreamingHolderDimension {
    config: DetectorConfig,
    holder: StreamingHolder,
    dimension: StreamingDimension,
    samples_seen: u64,
    windows_seen: usize,
    baseline_dim: Vec<f64>,
    baseline_h: Vec<f64>,
    baseline: Option<Baseline>,
    consecutive_anomalies: usize,
    alarmed: bool,
    warnings_emitted: u64,
    alarms_emitted: u64,
    last_alert: Option<Alert>,
}

impl StreamingHolderDimension {
    /// Creates a streaming detector.
    ///
    /// # Errors
    ///
    /// Propagates [`DetectorConfig::validate`] and kernel-constructor
    /// failures.
    pub fn new(config: DetectorConfig) -> Result<Self> {
        config.validate()?;
        let holder =
            StreamingHolder::new(config.holder_radius, config.holder_max_lag, config.max_h)?;
        let dimension = StreamingDimension::new(
            config.dimension_method.window_dimension(),
            config.dimension_window,
            config.dimension_stride,
        )?;
        Ok(StreamingHolderDimension {
            config,
            holder,
            dimension,
            samples_seen: 0,
            windows_seen: 0,
            baseline_dim: Vec::new(),
            baseline_h: Vec::new(),
            baseline: None,
            consecutive_anomalies: 0,
            alarmed: false,
            warnings_emitted: 0,
            alarms_emitted: 0,
            last_alert: None,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Feeds one counter sample; returns an alert exactly when the batch
    /// detector would.
    ///
    /// # Errors
    ///
    /// Returns [`aging_timeseries::Error::NonFinite`] for NaN/infinite
    /// samples and propagates estimator failures.
    pub fn push(&mut self, value: f64) -> Result<Option<Alert>> {
        self.samples_seen += 1;
        // Hölder point for the centre of the trailing neighbourhood.
        let Some(h) = self.holder.push(value)? else {
            return Ok(None);
        };
        // Dimension window due?
        let Some(point) = self.dimension.push(h)? else {
            return Ok(None);
        };
        let (d, mean_h) = (point.dimension, point.mean);
        let raw_index = (self.samples_seen - 1) as usize;
        self.windows_seen += 1;
        let cfg = &self.config;

        // Warmup skip.
        if self.windows_seen <= cfg.skip_windows {
            return Ok(None);
        }

        // Baseline formation.
        if self.baseline.is_none() {
            self.baseline_dim.push(d);
            self.baseline_h.push(mean_h);
            if self.baseline_dim.len() >= cfg.baseline_windows {
                let dim_median = stats::median(&self.baseline_dim)?;
                let dim_mad = stats::mad(&self.baseline_dim)?;
                let h_mad = stats::mad(&self.baseline_h)?;
                self.baseline = Some(Baseline {
                    dimension: dim_median,
                    dimension_delta: (cfg.mad_multiplier * dim_mad)
                        .clamp(cfg.jump_delta, 3.0 * cfg.jump_delta),
                    mean_holder: stats::median(&self.baseline_h)?,
                    holder_delta: (cfg.mad_multiplier * h_mad)
                        .clamp(cfg.holder_drop, 2.0 * cfg.holder_drop),
                });
                // The formation buffers are dead state once the baseline
                // freezes; drop them so long-lived detectors stay lean.
                self.baseline_dim = Vec::new();
                self.baseline_h = Vec::new();
            }
            return Ok(None);
        }
        let baseline = self.baseline.expect("set above");

        // Anomaly rules (verbatim from the batch detector).
        let dim_jump = d > baseline.dimension + baseline.dimension_delta;
        let mut collapse_level = baseline.mean_holder - baseline.holder_delta;
        if baseline.mean_holder > cfg.holder_drop {
            collapse_level = collapse_level.max(cfg.holder_floor_fraction * baseline.mean_holder);
        }
        let collapse = mean_h < collapse_level;
        let anomalous = match cfg.rule {
            JumpRule::DimensionJump => dim_jump,
            JumpRule::HolderCollapse => collapse,
            _ => dim_jump || collapse,
        };
        if !anomalous {
            self.consecutive_anomalies = 0;
            return Ok(None);
        }
        self.consecutive_anomalies += 1;
        if self.alarmed {
            return Ok(None);
        }
        let level = if self.consecutive_anomalies >= cfg.confirm_windows {
            self.alarmed = true;
            AlertLevel::Alarm
        } else if self.consecutive_anomalies == 1 {
            AlertLevel::Warning
        } else {
            return Ok(None);
        };
        let trigger = match (dim_jump, collapse) {
            (true, true) => Trigger::Both,
            (true, false) => Trigger::DimensionJump,
            (false, true) => Trigger::HolderCollapse,
            (false, false) => unreachable!("anomalous implies a trigger"),
        };
        let alert = Alert {
            sample_index: raw_index,
            level,
            trigger,
            dimension: d,
            mean_holder: mean_h,
            dimension_baseline: baseline.dimension,
            holder_baseline: baseline.mean_holder,
        };
        match level {
            AlertLevel::Warning => self.warnings_emitted += 1,
            AlertLevel::Alarm => self.alarms_emitted += 1,
        }
        self.last_alert = Some(alert);
        Ok(Some(alert))
    }

    /// Whether the confirmed alarm has fired.
    pub fn is_alarmed(&self) -> bool {
        self.alarmed
    }

    /// The established baseline, once formed.
    pub fn baseline(&self) -> Option<Baseline> {
        self.baseline
    }

    /// The most recent alert, if any.
    pub fn last_alert(&self) -> Option<Alert> {
        self.last_alert
    }

    /// Samples consumed over the detector's lifetime.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Upper bound on retained samples across all internal windows — the
    /// detector's memory is O(this), independent of stream length.
    pub fn memory_bound_samples(&self) -> usize {
        2 * self.config.holder_radius
            + 1
            + self.config.dimension_window
            + self.config.baseline_windows
    }

    /// Clears all state (after reboot/rejuvenation or a feed gap); the
    /// configuration and lifetime emission counters are retained.
    pub fn reset(&mut self) {
        self.holder.reset();
        self.dimension.reset();
        self.samples_seen = 0;
        self.windows_seen = 0;
        self.baseline_dim.clear();
        self.baseline_h.clear();
        self.baseline = None;
        self.consecutive_anomalies = 0;
        self.alarmed = false;
        self.last_alert = None;
    }

    /// Serializes all dynamic state (kernels, warmup/baseline progress,
    /// confirmation run, latch and emission counters) via
    /// [`aging_timeseries::persist`]; the config is re-supplied at
    /// construction.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        self.holder.encode_state(out);
        self.dimension.encode_state(out);
        persist::put_u64(out, self.samples_seen);
        persist::put_usize(out, self.windows_seen);
        put_f64_vec(out, &self.baseline_dim);
        put_f64_vec(out, &self.baseline_h);
        match self.baseline {
            None => persist::put_bool(out, false),
            Some(b) => {
                persist::put_bool(out, true);
                persist::put_f64(out, b.dimension);
                persist::put_f64(out, b.dimension_delta);
                persist::put_f64(out, b.mean_holder);
                persist::put_f64(out, b.holder_delta);
            }
        }
        persist::put_usize(out, self.consecutive_anomalies);
        persist::put_bool(out, self.alarmed);
        persist::put_u64(out, self.warnings_emitted);
        persist::put_u64(out, self.alarms_emitted);
        put_opt_alert(out, self.last_alert);
    }

    /// Restores state written by
    /// [`StreamingHolderDimension::encode_state`] into a detector
    /// constructed with the same config.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncation, a window
    /// mismatch or corrupt enum codes.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<()> {
        self.holder.restore_state(r)?;
        self.dimension.restore_state(r)?;
        self.samples_seen = r.u64()?;
        self.windows_seen = r.usize_()?;
        self.baseline_dim = read_f64_vec(r, self.config.baseline_windows)?;
        self.baseline_h = read_f64_vec(r, self.config.baseline_windows)?;
        self.baseline = if r.bool()? {
            Some(Baseline {
                dimension: r.f64()?,
                dimension_delta: r.f64()?,
                mean_holder: r.f64()?,
                holder_delta: r.f64()?,
            })
        } else {
            None
        };
        self.consecutive_anomalies = r.usize_()?;
        self.alarmed = r.bool()?;
        self.warnings_emitted = r.u64()?;
        self.alarms_emitted = r.u64()?;
        self.last_alert = read_opt_alert(r)?;
        Ok(())
    }
}

/// Streaming Mann–Kendall + Sen-slope exhaustion baseline.
///
/// Decision logic mirrors `aging_core::baseline::SenSlopePredictor`; the
/// S statistic is maintained incrementally instead of recomputed per
/// refit.
#[derive(Debug, Clone)]
pub struct StreamingTrend {
    config: TrendPredictorConfig,
    mk: StreamingMannKendall,
    count: u64,
    eta: Option<f64>,
    alarmed: bool,
    // Refit scratch (tie sort, window copy, pairwise slopes). Transient:
    // cleared-and-refilled per refit, deliberately absent from
    // `encode_state` — contents never outlive one `push`.
    scratch_sorted: Vec<f64>,
    scratch_window: Vec<f64>,
    scratch_slopes: Vec<f64>,
}

impl StreamingTrend {
    /// Creates the baseline detector.
    ///
    /// # Errors
    ///
    /// Propagates [`TrendPredictorConfig::validate`] failures.
    pub fn new(config: TrendPredictorConfig) -> Result<Self> {
        config.validate()?;
        let mk = StreamingMannKendall::new(config.window)?;
        Ok(StreamingTrend {
            config,
            mk,
            count: 0,
            eta: None,
            alarmed: false,
            scratch_sorted: Vec::new(),
            scratch_window: Vec::new(),
            scratch_slopes: Vec::new(),
        })
    }

    /// Feeds one sample; returns `true` when the alarm first fires.
    ///
    /// # Errors
    ///
    /// Returns [`aging_timeseries::Error::NonFinite`] for NaN/infinite
    /// input.
    pub fn push(&mut self, value: f64) -> Result<bool> {
        self.mk.push(value)?;
        self.count += 1;
        let cfg = &self.config;
        if !self.mk.is_full() || !self.count.is_multiple_of(cfg.refit_every as u64) {
            return Ok(false);
        }
        let Ok(mk) = self.mk.statistic_with(&mut self.scratch_sorted) else {
            return Ok(false); // degenerate window
        };
        let significant = match cfg.direction {
            ResourceDirection::Depleting => mk.direction(cfg.alpha) == TrendDirection::Decreasing,
            ResourceDirection::Filling => mk.direction(cfg.alpha) == TrendDirection::Increasing,
        };
        if !significant {
            self.eta = None;
            return Ok(false);
        }
        let Ok(sen) = self.mk.sen_slope_with(
            cfg.sample_period_secs,
            &mut self.scratch_window,
            &mut self.scratch_slopes,
        ) else {
            return Ok(false);
        };
        let toward_exhaustion = match cfg.direction {
            ResourceDirection::Depleting => sen.slope < 0.0,
            ResourceDirection::Filling => sen.slope > 0.0,
        };
        if !toward_exhaustion {
            self.eta = None;
            return Ok(false);
        }
        let window_span = (cfg.window - 1) as f64 * cfg.sample_period_secs;
        self.eta = sen
            .time_to_level(cfg.exhaustion_level)
            .map(|t| (t - window_span).max(0.0))
            .filter(|t| t.is_finite());
        let fire = matches!(self.eta, Some(eta) if eta <= cfg.alarm_horizon_secs);
        if fire && !self.alarmed {
            self.alarmed = true;
            return Ok(true);
        }
        Ok(false)
    }

    /// Feeds a column of samples; returns the offset of the firing sample
    /// and the ETA captured at fire time, if the alarm first fired inside
    /// this column. State afterwards is bit-identical to calling
    /// [`StreamingTrend::push`] per element.
    ///
    /// Samples that cannot land on a refit boundary go to the window
    /// kernel in runs ([`StreamingMannKendall::push_slice`]); only
    /// boundary samples take the full statistic/Sen refit path — the same
    /// work the scalar loop does, minus a per-sample branch cascade.
    ///
    /// # Errors
    ///
    /// Returns [`aging_timeseries::Error::NonFinite`] at the first
    /// NaN/infinite input, leaving exactly the preceding samples applied.
    pub fn push_slice(&mut self, values: &[f64]) -> Result<Option<(usize, Option<f64>)>> {
        let mut fired = None;
        if values.iter().any(|v| !v.is_finite()) {
            // Slow path: the scalar loop owns the error-index bookkeeping.
            for (k, &value) in values.iter().enumerate() {
                if self.push(value)? && fired.is_none() {
                    fired = Some((k, self.eta));
                }
            }
            return Ok(fired);
        }
        let refit = self.config.refit_every as u64;
        let mut i = 0;
        while i < values.len() {
            // Number of pushes until `count` next hits a refit boundary;
            // everything before it can skip the refit check entirely.
            let until = (refit - self.count % refit) as usize;
            let run = until.min(values.len() - i);
            self.mk.push_slice(&values[i..i + run - 1])?;
            self.count += (run - 1) as u64;
            if self.push(values[i + run - 1])? && fired.is_none() {
                fired = Some((i + run - 1, self.eta));
            }
            i += run;
        }
        Ok(fired)
    }

    /// Whether the alarm has fired.
    pub fn is_alarmed(&self) -> bool {
        self.alarmed
    }

    /// Latest estimated time to exhaustion, seconds.
    pub fn eta_secs(&self) -> Option<f64> {
        self.eta
    }

    /// Upper bound on retained samples.
    pub fn memory_bound_samples(&self) -> usize {
        self.config.window
    }

    /// Clears all state; the configuration is retained.
    pub fn reset(&mut self) {
        self.mk.reset();
        self.count = 0;
        self.eta = None;
        self.alarmed = false;
    }

    /// Serializes all dynamic state via [`aging_timeseries::persist`].
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        self.mk.encode_state(out);
        persist::put_u64(out, self.count);
        persist::put_opt_f64(out, self.eta);
        persist::put_bool(out, self.alarmed);
    }

    /// Restores state written by [`StreamingTrend::encode_state`] into a
    /// detector constructed with the same config.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncation or a window
    /// mismatch.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<()> {
        self.mk.restore_state(r)?;
        self.count = r.u64()?;
        self.eta = r.opt_f64()?;
        self.alarmed = r.bool()?;
        Ok(())
    }
}

/// Configuration of the streaming spectrum-width (Δα) detector.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectrumDetectorConfig {
    /// Rolling estimator parameters (window, stride, q grid).
    pub spectrum: SpectrumConfig,
    /// Emissions discarded before baseline collection begins.
    pub skip_windows: usize,
    /// Emissions that form the Δα baseline (median/MAD).
    pub baseline_windows: usize,
    /// Minimum Δα widening over the baseline that counts as anomalous.
    pub width_delta: f64,
    /// MAD multiplier for the adaptive widening threshold.
    pub mad_multiplier: f64,
    /// Consecutive anomalous emissions required to alarm.
    pub confirm_windows: usize,
}

impl Default for SpectrumDetectorConfig {
    fn default() -> Self {
        SpectrumDetectorConfig {
            spectrum: SpectrumConfig::default(),
            skip_windows: 1,
            baseline_windows: 8,
            width_delta: 0.2,
            mad_multiplier: 4.0,
            confirm_windows: 2,
        }
    }
}

impl SpectrumDetectorConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on a bad estimator config or
    /// non-positive thresholds.
    pub fn validate(&self) -> Result<()> {
        self.spectrum.validate()?;
        if self.baseline_windows < 2 {
            return Err(Error::invalid("baseline_windows", "must be at least 2"));
        }
        if !(self.width_delta > 0.0 && self.width_delta.is_finite()) {
            return Err(Error::invalid("width_delta", "must be positive and finite"));
        }
        if !(self.mad_multiplier > 0.0 && self.mad_multiplier.is_finite()) {
            return Err(Error::invalid(
                "mad_multiplier",
                "must be positive and finite",
            ));
        }
        if self.confirm_windows == 0 {
            return Err(Error::invalid("confirm_windows", "must be at least 1"));
        }
        Ok(())
    }
}

/// The frozen Δα baseline of a [`StreamingSpectrumWidth`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumBaseline {
    /// Median Δα over the baseline emissions.
    pub width: f64,
    /// Widening beyond `width` that counts as anomalous
    /// (MAD-scaled, clamped to `[width_delta, 3·width_delta]`).
    pub delta: f64,
}

/// One emitted spectrum-width alert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumAlert {
    /// Zero-based index of the sample that completed the anomalous window.
    pub sample_index: u64,
    /// Severity.
    pub level: AlertLevel,
    /// The window's spectrum width Δα.
    pub delta_alpha: f64,
    /// The frozen baseline width it was compared against.
    pub baseline_width: f64,
}

/// Streaming multifractal spectrum-width detector.
///
/// Runs a [`StreamingSpectrum`] kernel over the counter stream and applies
/// the same decision discipline as [`StreamingHolderDimension`] to the
/// emitted Δα values: warmup skip, a median/MAD baseline frozen after
/// `baseline_windows` emissions, widening anomalies confirmed over
/// `confirm_windows` consecutive emissions, Warning on the first anomaly,
/// a latched Alarm on confirmation.
#[derive(Debug, Clone)]
pub struct StreamingSpectrumWidth {
    config: SpectrumDetectorConfig,
    kernel: StreamingSpectrum,
    windows_seen: usize,
    baseline_widths: Vec<f64>,
    baseline: Option<SpectrumBaseline>,
    consecutive_anomalies: usize,
    alarmed: bool,
    warnings_emitted: u64,
    alarms_emitted: u64,
    last_alert: Option<SpectrumAlert>,
    last_width: Option<f64>,
}

impl StreamingSpectrumWidth {
    /// Creates the detector.
    ///
    /// # Errors
    ///
    /// Propagates [`SpectrumDetectorConfig::validate`] failures.
    pub fn new(config: SpectrumDetectorConfig) -> Result<Self> {
        config.validate()?;
        let kernel = StreamingSpectrum::new(&config.spectrum)?;
        Ok(StreamingSpectrumWidth {
            config,
            kernel,
            windows_seen: 0,
            baseline_widths: Vec::new(),
            baseline: None,
            consecutive_anomalies: 0,
            alarmed: false,
            warnings_emitted: 0,
            alarms_emitted: 0,
            last_alert: None,
            last_width: None,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SpectrumDetectorConfig {
        &self.config
    }

    /// Feeds one counter sample.
    ///
    /// # Errors
    ///
    /// Returns [`aging_timeseries::Error::NonFinite`] for NaN/infinite
    /// samples (not absorbed) and propagates estimator failures.
    pub fn push(&mut self, value: f64) -> Result<Option<SpectrumAlert>> {
        let Some(win) = self.kernel.push(value)? else {
            return Ok(None);
        };
        self.last_width = Some(win.delta_alpha);
        self.windows_seen += 1;
        let cfg = &self.config;

        // Warmup skip.
        if self.windows_seen <= cfg.skip_windows {
            return Ok(None);
        }

        // Baseline formation.
        if self.baseline.is_none() {
            self.baseline_widths.push(win.delta_alpha);
            if self.baseline_widths.len() >= cfg.baseline_windows {
                let width = stats::median(&self.baseline_widths)?;
                let mad = stats::mad(&self.baseline_widths)?;
                self.baseline = Some(SpectrumBaseline {
                    width,
                    delta: (cfg.mad_multiplier * mad).clamp(cfg.width_delta, 3.0 * cfg.width_delta),
                });
                // Dead state once the baseline freezes.
                self.baseline_widths = Vec::new();
            }
            return Ok(None);
        }
        let baseline = self.baseline.expect("set above");

        // Anomaly rule: the spectrum widened beyond the baseline band.
        if win.delta_alpha <= baseline.width + baseline.delta {
            self.consecutive_anomalies = 0;
            return Ok(None);
        }
        self.consecutive_anomalies += 1;
        if self.alarmed {
            return Ok(None);
        }
        let level = if self.consecutive_anomalies >= cfg.confirm_windows {
            self.alarmed = true;
            AlertLevel::Alarm
        } else if self.consecutive_anomalies == 1 {
            AlertLevel::Warning
        } else {
            return Ok(None);
        };
        let alert = SpectrumAlert {
            sample_index: win.input_index,
            level,
            delta_alpha: win.delta_alpha,
            baseline_width: baseline.width,
        };
        match level {
            AlertLevel::Warning => self.warnings_emitted += 1,
            AlertLevel::Alarm => self.alarms_emitted += 1,
        }
        self.last_alert = Some(alert);
        Ok(Some(alert))
    }

    /// Whether the confirmed alarm has fired.
    pub fn is_alarmed(&self) -> bool {
        self.alarmed
    }

    /// The established baseline, once formed.
    pub fn baseline(&self) -> Option<SpectrumBaseline> {
        self.baseline
    }

    /// The most recent alert, if any.
    pub fn last_alert(&self) -> Option<SpectrumAlert> {
        self.last_alert
    }

    /// Δα of the most recently emitted window, if any.
    pub fn last_width(&self) -> Option<f64> {
        self.last_width
    }

    /// Samples consumed over the detector's lifetime.
    pub fn samples_seen(&self) -> u64 {
        self.kernel.samples_seen()
    }

    /// Upper bound on retained samples.
    pub fn memory_bound_samples(&self) -> usize {
        self.kernel.window() + self.config.baseline_windows
    }

    /// Clears all state (after reboot/rejuvenation or a feed gap); the
    /// configuration and lifetime emission counters are retained.
    pub fn reset(&mut self) {
        self.kernel.reset();
        self.windows_seen = 0;
        self.baseline_widths.clear();
        self.baseline = None;
        self.consecutive_anomalies = 0;
        self.alarmed = false;
        self.last_alert = None;
        self.last_width = None;
    }

    /// Serializes all dynamic state via [`aging_timeseries::persist`]; the
    /// config is re-supplied at construction.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        self.kernel.encode_state(out);
        persist::put_usize(out, self.windows_seen);
        put_f64_vec(out, &self.baseline_widths);
        match self.baseline {
            None => persist::put_bool(out, false),
            Some(b) => {
                persist::put_bool(out, true);
                persist::put_f64(out, b.width);
                persist::put_f64(out, b.delta);
            }
        }
        persist::put_usize(out, self.consecutive_anomalies);
        persist::put_bool(out, self.alarmed);
        persist::put_u64(out, self.warnings_emitted);
        persist::put_u64(out, self.alarms_emitted);
        match self.last_alert {
            None => persist::put_bool(out, false),
            Some(a) => {
                persist::put_bool(out, true);
                persist::put_u64(out, a.sample_index);
                persist::put_u8(out, level_code(a.level));
                persist::put_f64(out, a.delta_alpha);
                persist::put_f64(out, a.baseline_width);
            }
        }
        persist::put_opt_f64(out, self.last_width);
    }

    /// Restores state written by [`StreamingSpectrumWidth::encode_state`]
    /// into a detector constructed with the same config.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncation, a window
    /// mismatch or corrupt enum codes.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<()> {
        self.kernel.restore_state(r)?;
        self.windows_seen = r.usize_()?;
        self.baseline_widths = read_f64_vec(r, self.config.baseline_windows)?;
        self.baseline = if r.bool()? {
            Some(SpectrumBaseline {
                width: r.f64()?,
                delta: r.f64()?,
            })
        } else {
            None
        };
        self.consecutive_anomalies = r.usize_()?;
        self.alarmed = r.bool()?;
        self.warnings_emitted = r.u64()?;
        self.alarms_emitted = r.u64()?;
        self.last_alert = if r.bool()? {
            Some(SpectrumAlert {
                sample_index: r.u64()?,
                level: level_from_code(r.u8()?)?,
                delta_alpha: r.f64()?,
                baseline_width: r.f64()?,
            })
        } else {
            None
        };
        self.last_width = r.opt_f64()?;
        Ok(())
    }
}

/// A uniform wrapper so fleets can mix detector families per counter.
#[derive(Debug, Clone)]
pub struct StreamingDetector {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Holder(Box<StreamingHolderDimension>),
    Trend(Box<StreamingTrend>),
    Spectrum(Box<StreamingSpectrumWidth>),
}

impl StreamingDetector {
    /// Instantiates the detector described by `spec`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying constructor's failures.
    pub fn new(spec: &DetectorSpec) -> Result<Self> {
        let inner = match spec {
            DetectorSpec::Holder(cfg) => {
                Inner::Holder(Box::new(StreamingHolderDimension::new(cfg.clone())?))
            }
            DetectorSpec::Trend(cfg) => Inner::Trend(Box::new(StreamingTrend::new(cfg.clone())?)),
            DetectorSpec::Spectrum(cfg) => {
                Inner::Spectrum(Box::new(StreamingSpectrumWidth::new(cfg.clone())?))
            }
        };
        Ok(StreamingDetector { inner })
    }

    /// Feeds one sample; returns an alert when one fires.
    ///
    /// # Errors
    ///
    /// Propagates the underlying detector's failures.
    pub fn push(&mut self, value: f64) -> Result<Option<StreamAlert>> {
        match &mut self.inner {
            Inner::Holder(det) => Ok(det.push(value)?.map(|alert| StreamAlert {
                sample_index: alert.sample_index as u64,
                level: alert.level,
                detail: AlertDetail::Holder(alert),
            })),
            Inner::Trend(det) => {
                let count_before = det.count;
                if det.push(value)? {
                    Ok(Some(StreamAlert {
                        sample_index: count_before,
                        level: AlertLevel::Alarm,
                        detail: AlertDetail::Trend {
                            eta_secs: det.eta_secs(),
                        },
                    }))
                } else {
                    Ok(None)
                }
            }
            Inner::Spectrum(det) => Ok(det.push(value)?.map(|alert| StreamAlert {
                sample_index: alert.sample_index,
                level: alert.level,
                detail: AlertDetail::Spectrum {
                    delta_alpha: alert.delta_alpha,
                    baseline_width: alert.baseline_width,
                },
            })),
        }
    }

    /// Feeds a column of samples, appending `(offset_in_column, alert)`
    /// pairs to `out` (cleared first) for every alert that fires. State and
    /// alerts are bit-identical to calling [`StreamingDetector::push`] per
    /// element; trend detectors take the chunked
    /// [`StreamingTrend::push_slice`] fast path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying detector's failures; samples before the
    /// offending one remain applied and their alerts remain in `out`.
    pub fn push_slice(
        &mut self,
        values: &[f64],
        out: &mut Vec<(usize, StreamAlert)>,
    ) -> Result<()> {
        out.clear();
        match &mut self.inner {
            Inner::Holder(det) => {
                for (k, &value) in values.iter().enumerate() {
                    if let Some(alert) = det.push(value)? {
                        out.push((
                            k,
                            StreamAlert {
                                sample_index: alert.sample_index as u64,
                                level: alert.level,
                                detail: AlertDetail::Holder(alert),
                            },
                        ));
                    }
                }
                Ok(())
            }
            Inner::Trend(det) => {
                let count_before = det.count;
                if let Some((k, eta_secs)) = det.push_slice(values)? {
                    out.push((
                        k,
                        StreamAlert {
                            sample_index: count_before + k as u64,
                            level: AlertLevel::Alarm,
                            detail: AlertDetail::Trend { eta_secs },
                        },
                    ));
                }
                Ok(())
            }
            Inner::Spectrum(det) => {
                for (k, &value) in values.iter().enumerate() {
                    if let Some(alert) = det.push(value)? {
                        out.push((
                            k,
                            StreamAlert {
                                sample_index: alert.sample_index,
                                level: alert.level,
                                detail: AlertDetail::Spectrum {
                                    delta_alpha: alert.delta_alpha,
                                    baseline_width: alert.baseline_width,
                                },
                            },
                        ));
                    }
                }
                Ok(())
            }
        }
    }

    /// Whether this is the trend (Mann–Kendall/Sen) family. The columnar
    /// ingest fast path keys off two properties unique to it: the alarm
    /// latch transitions exactly when an Alarm-level alert is emitted
    /// (and is cleared only by [`StreamingDetector::reset`]), and the
    /// estimator cannot fail on gate-accepted (finite) samples.
    pub(crate) fn is_trend_family(&self) -> bool {
        matches!(self.inner, Inner::Trend(_))
    }

    /// Whether the detector's confirmed alarm has fired.
    pub fn is_alarmed(&self) -> bool {
        match &self.inner {
            Inner::Holder(det) => det.is_alarmed(),
            Inner::Trend(det) => det.is_alarmed(),
            Inner::Spectrum(det) => det.is_alarmed(),
        }
    }

    /// Latest spectrum width Δα, when this is the spectrum family and at
    /// least one window has been emitted; `None` for other families.
    pub fn last_delta_alpha(&self) -> Option<f64> {
        match &self.inner {
            Inner::Spectrum(det) => det.last_width(),
            _ => None,
        }
    }

    /// Upper bound on retained samples (memory is O(this) regardless of
    /// stream length).
    pub fn memory_bound_samples(&self) -> usize {
        match &self.inner {
            Inner::Holder(det) => det.memory_bound_samples(),
            Inner::Trend(det) => det.memory_bound_samples(),
            Inner::Spectrum(det) => det.memory_bound_samples(),
        }
    }

    /// Clears state after a reboot or feed discontinuity.
    pub fn reset(&mut self) {
        match &mut self.inner {
            Inner::Holder(det) => det.reset(),
            Inner::Trend(det) => det.reset(),
            Inner::Spectrum(det) => det.reset(),
        }
    }

    /// Serializes all dynamic state, tagged with the detector family so a
    /// spec/blob mismatch is caught at restore time.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        match &self.inner {
            Inner::Holder(det) => {
                persist::put_u8(out, 0);
                det.encode_state(out);
            }
            Inner::Trend(det) => {
                persist::put_u8(out, 1);
                det.encode_state(out);
            }
            Inner::Spectrum(det) => {
                persist::put_u8(out, 2);
                det.encode_state(out);
            }
        }
    }

    /// Restores state written by [`StreamingDetector::encode_state`] into
    /// a detector constructed from the same [`DetectorSpec`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncation, a family tag
    /// mismatch, or corrupt inner state.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<()> {
        let tag = r.u8()?;
        match (&mut self.inner, tag) {
            (Inner::Holder(det), 0) => det.restore_state(r),
            (Inner::Trend(det), 1) => det.restore_state(r),
            (Inner::Spectrum(det), 2) => det.restore_state(r),
            (_, t) => Err(Error::invalid(
                "persist",
                format!("detector family tag {t} does not match the configured spec"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_core::detector::HolderDimensionDetector;

    fn tiny_config() -> DetectorConfig {
        DetectorConfig {
            holder_radius: 16,
            holder_max_lag: 4,
            dimension_window: 64,
            dimension_stride: 16,
            baseline_windows: 8,
            ..DetectorConfig::default()
        }
    }

    /// A degrading synthetic signal: regular oscillation whose noise
    /// roughens sharply in late life.
    fn degrading_signal(n: usize) -> Vec<f64> {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n)
            .map(|i| {
                let t = i as f64;
                let base = 1e6 - 30.0 * t + (t * 0.45).sin() * 2048.0;
                let late = i > 2 * n / 3;
                let noise = rand() * if late { 6000.0 } else { 120.0 };
                base + noise
            })
            .collect()
    }

    #[test]
    fn streaming_matches_batch_alert_for_alert() {
        let signal = degrading_signal(1400);
        let mut batch = HolderDimensionDetector::new(tiny_config()).unwrap();
        let mut streaming = StreamingHolderDimension::new(tiny_config()).unwrap();
        for &v in &signal {
            let b = batch.push(v).unwrap();
            let s = streaming.push(v).unwrap();
            assert_eq!(b, s, "divergence at sample {}", streaming.samples_seen());
        }
        assert_eq!(batch.is_alarmed(), streaming.is_alarmed());
        assert_eq!(batch.baseline(), streaming.baseline());
    }

    #[test]
    fn memory_stays_bounded() {
        let cfg = tiny_config();
        let det = StreamingHolderDimension::new(cfg.clone()).unwrap();
        let bound = det.memory_bound_samples();
        assert_eq!(
            bound,
            2 * cfg.holder_radius + 1 + cfg.dimension_window + cfg.baseline_windows
        );
        // The bound is what the rings can hold — far below stream length.
        assert!(bound < 200);
    }

    #[test]
    fn trend_detector_alarms_on_depletion() {
        let cfg = TrendPredictorConfig {
            window: 64,
            refit_every: 4,
            alarm_horizon_secs: 1e6,
            ..TrendPredictorConfig::depleting(30.0)
        };
        let mut det = StreamingTrend::new(cfg).unwrap();
        let mut fired_at = None;
        for i in 0..400 {
            let v = 1e6 - 400.0 * i as f64 + ((i * 7) % 13) as f64;
            if det.push(v).unwrap() && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        assert!(det.is_alarmed());
        assert!(fired_at.unwrap() >= 63, "needs a full window first");
        assert!(det.eta_secs().is_some());
        det.reset();
        assert!(!det.is_alarmed());
        assert_eq!(det.eta_secs(), None);
    }

    #[test]
    fn trend_detector_quiet_on_stationary_signal() {
        let cfg = TrendPredictorConfig {
            window: 64,
            refit_every: 4,
            ..TrendPredictorConfig::depleting(30.0)
        };
        let mut det = StreamingTrend::new(cfg).unwrap();
        for i in 0..400u64 {
            let v = 1e6 + ((i * 2654435761) % 4096) as f64;
            det.push(v).unwrap();
        }
        assert!(!det.is_alarmed());
    }

    #[test]
    fn wrapper_reports_both_families() {
        let holder = DetectorSpec::Holder(tiny_config());
        assert_eq!(holder.name(), "holder-dimension");
        let mut det = StreamingDetector::new(&holder).unwrap();
        for &v in &degrading_signal(1400) {
            det.push(v).unwrap();
        }
        assert!(det.memory_bound_samples() < 200);

        let trend = DetectorSpec::Trend(TrendPredictorConfig {
            window: 64,
            refit_every: 4,
            alarm_horizon_secs: 1e6,
            ..TrendPredictorConfig::depleting(30.0)
        });
        assert_eq!(trend.name(), "mann-kendall-sen");
        let mut det = StreamingDetector::new(&trend).unwrap();
        let mut alert = None;
        for i in 0..400 {
            let v = 1e6 - 400.0 * i as f64;
            if let Some(a) = det.push(v).unwrap() {
                alert.get_or_insert(a);
            }
        }
        let alert = alert.expect("depleting line must alarm");
        assert_eq!(alert.level, AlertLevel::Alarm);
        assert!(matches!(
            alert.detail,
            AlertDetail::Trend { eta_secs: Some(_) }
        ));
        assert!(det.is_alarmed());
    }

    fn tiny_spectrum_config() -> SpectrumDetectorConfig {
        SpectrumDetectorConfig {
            spectrum: SpectrumConfig {
                window: 128,
                stride: 32,
                ..SpectrumConfig::default()
            },
            skip_windows: 0,
            baseline_windows: 4,
            width_delta: 0.2,
            mad_multiplier: 4.0,
            confirm_windows: 2,
        }
    }

    /// A signal whose multifractal width widens in late life: a random
    /// walk with constant-amplitude steps that become intermittent
    /// (occasional large bursts) past `turn`.
    fn widening_signal(n: usize, turn: usize) -> Vec<f64> {
        let mut state = 0x51ce_b00c_5eed_f00du64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut acc = 0.0;
        (0..n)
            .map(|i| {
                let u = rand() - 0.5;
                let step = if i > turn && rand() < 0.08 {
                    u * 400.0
                } else {
                    u * 8.0
                };
                acc += step;
                acc
            })
            .collect()
    }

    #[test]
    fn spectrum_detector_alarms_on_widening() {
        let mut det = StreamingSpectrumWidth::new(tiny_spectrum_config()).unwrap();
        let signal = widening_signal(1024, 500);
        let mut alerts = Vec::new();
        for &v in &signal {
            if let Some(a) = det.push(v).unwrap() {
                alerts.push(a);
            }
        }
        assert!(det.is_alarmed(), "intermittent late phase must alarm");
        assert!(det.baseline().is_some());
        let alarm = alerts
            .iter()
            .find(|a| a.level == AlertLevel::Alarm)
            .unwrap();
        assert!(
            alarm.delta_alpha > alarm.baseline_width,
            "alarm Δα {} vs baseline {}",
            alarm.delta_alpha,
            alarm.baseline_width
        );
        assert!(det.last_width().is_some());
    }

    #[test]
    fn spectrum_detector_quiet_on_stationary_signal() {
        let mut det = StreamingSpectrumWidth::new(tiny_spectrum_config()).unwrap();
        // Same generator with the turn pushed past the end: no regime change.
        for &v in &widening_signal(1024, usize::MAX) {
            det.push(v).unwrap();
        }
        assert!(!det.is_alarmed());
    }

    #[test]
    fn spectrum_detector_persist_round_trip_mid_stream() {
        let cfg = tiny_spectrum_config();
        let signal = widening_signal(1024, 500);
        let (head, tail) = signal.split_at(600);
        let mut live = StreamingSpectrumWidth::new(cfg.clone()).unwrap();
        for &v in head {
            live.push(v).unwrap();
        }
        let mut blob = Vec::new();
        live.encode_state(&mut blob);
        let mut restored = StreamingSpectrumWidth::new(cfg).unwrap();
        let mut r = Reader::new(&blob);
        restored.restore_state(&mut r).unwrap();
        for &v in tail {
            let a = live.push(v).unwrap();
            let b = restored.push(v).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(live.is_alarmed(), restored.is_alarmed());
        assert_eq!(live.last_width(), restored.last_width());
        assert_eq!(live.baseline(), restored.baseline());
    }

    #[test]
    fn spectrum_wrapper_family() {
        let spec = DetectorSpec::Spectrum(tiny_spectrum_config());
        assert_eq!(spec.name(), "spectrum-width");
        let mut det = StreamingDetector::new(&spec).unwrap();
        assert!(!det.is_trend_family(), "spectrum must take the scalar path");
        assert_eq!(det.last_delta_alpha(), None);
        let signal = widening_signal(1024, 500);

        // Chunked pushes match the scalar loop bit-for-bit.
        let mut scalar = StreamingDetector::new(&spec).unwrap();
        let mut scalar_alerts = Vec::new();
        for &v in &signal {
            if let Some(a) = scalar.push(v).unwrap() {
                scalar_alerts.push(a);
            }
        }
        let mut out = Vec::new();
        let mut chunked_alerts = Vec::new();
        for chunk in signal.chunks(7) {
            det.push_slice(chunk, &mut out).unwrap();
            chunked_alerts.extend(out.iter().map(|&(_, a)| a));
        }
        assert_eq!(scalar_alerts, chunked_alerts);
        assert!(det.is_alarmed());
        assert!(det.last_delta_alpha().is_some());
        assert_eq!(det.last_delta_alpha(), scalar.last_delta_alpha());

        // Family-tagged persistence round-trips.
        let mut blob = Vec::new();
        det.encode_state(&mut blob);
        let mut restored = StreamingDetector::new(&spec).unwrap();
        let mut r = Reader::new(&blob);
        restored.restore_state(&mut r).unwrap();
        assert!(restored.is_alarmed());
        assert_eq!(restored.last_delta_alpha(), det.last_delta_alpha());
    }
}
