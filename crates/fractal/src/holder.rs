//! Local Hölder exponent estimation — step 1 of the target paper's method.
//!
//! The local Hölder exponent `h(t)` quantifies the regularity of a signal
//! at time `t`: small `h` (→ 0) means violent local fluctuation, `h` near 1
//! means near-differentiable behaviour. The paper computes `h(t)` for
//! memory-resource traces and then tracks the fractal dimension of the
//! resulting *Hölder trace*.
//!
//! Three estimators are provided:
//!
//! - **Local increment** (default): regress `log ⟨|x(u+r) − x(u)|⟩` over a
//!   neighbourhood of `t` against `log r` — a localised first-order
//!   structure function. Nearly unbiased on fBm/Weierstrass ground truth
//!   (within ±0.05 across `h ∈ [0.3, 0.9]`).
//! - **Oscillation**: regress `log osc_r(t)` (max − min over a radius-`r`
//!   window) against `log r`. The classical definition, but the discrete
//!   sup under-samples at small radii, giving a known upward bias of up to
//!   ≈ +0.15 at low `h`; kept for cross-checking and because the paper's
//!   era used oscillation-style estimates.
//! - **Wavelet leaders**: regress `log₂ ℓ_j(t)` against the level `j` —
//!   theoretically grounded (Jaffard), needs a dyadic analysis.

use aging_par::Pool;
use aging_timeseries::regression::ols;
use aging_timeseries::{Error, Result};
use aging_wavelet::{Wavelet, WaveletLeaders};

/// Configuration of the local-increment (localised structure-function)
/// estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementConfig {
    /// Neighbourhood radius (in samples) over which increments are
    /// averaged. Must be ≥ 2 × the largest lag.
    pub window_radius: usize,
    /// Largest lag; lags `1, 2, 4, …, max_lag` enter the regression.
    /// Must be ≥ 4.
    pub max_lag: usize,
    /// Cap applied where the regression is degenerate (locally constant
    /// data is "infinitely regular").
    pub max_h: f64,
}

impl Default for IncrementConfig {
    fn default() -> Self {
        IncrementConfig {
            window_radius: 32,
            max_lag: 8,
            max_h: 2.0,
        }
    }
}

/// Configuration of the oscillation estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct OscillationConfig {
    /// Largest window radius (in samples); radii `1, 2, 4, …, max_radius`
    /// enter the regression. Must be ≥ 4.
    pub max_radius: usize,
    /// Cap applied where the regression is degenerate.
    pub max_h: f64,
}

impl Default for OscillationConfig {
    fn default() -> Self {
        OscillationConfig {
            max_radius: 16,
            max_h: 2.0,
        }
    }
}

/// Configuration of the wavelet-leader estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderConfig {
    /// Analysis wavelet.
    pub wavelet: Wavelet,
    /// Number of DWT levels.
    pub levels: usize,
    /// First level included in the regression (the finest levels are
    /// contaminated by sampling effects; 2 is a good default).
    pub fit_min_level: usize,
    /// Cap applied where the regression is degenerate.
    pub max_h: f64,
}

impl Default for LeaderConfig {
    fn default() -> Self {
        LeaderConfig {
            wavelet: Wavelet::Daubechies6,
            levels: 6,
            fit_min_level: 2,
            max_h: 2.0,
        }
    }
}

/// Which local-regularity estimator to use.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HolderEstimator {
    /// Localised first-order structure function (default; lowest bias).
    LocalIncrement(IncrementConfig),
    /// Oscillation (max − min over growing windows) estimator.
    Oscillation(OscillationConfig),
    /// Wavelet-leader estimator.
    WaveletLeader(LeaderConfig),
}

impl Default for HolderEstimator {
    fn default() -> Self {
        HolderEstimator::LocalIncrement(IncrementConfig::default())
    }
}

impl HolderEstimator {
    /// The default local-increment estimator.
    pub fn local_increment() -> Self {
        HolderEstimator::LocalIncrement(IncrementConfig::default())
    }

    /// The default oscillation estimator.
    pub fn oscillation() -> Self {
        HolderEstimator::Oscillation(OscillationConfig::default())
    }

    /// The default wavelet-leader estimator.
    pub fn wavelet_leader() -> Self {
        HolderEstimator::WaveletLeader(LeaderConfig::default())
    }

    /// Minimum number of samples this estimator needs.
    pub fn min_samples(&self) -> usize {
        match self {
            HolderEstimator::LocalIncrement(c) => (2 * c.window_radius).max(64),
            HolderEstimator::Oscillation(c) => (4 * c.max_radius).max(16),
            HolderEstimator::WaveletLeader(c) => 1 << c.levels,
        }
    }
}

/// Computes the local Hölder exponent trace `h(t)` of `data`, one value per
/// input sample.
///
/// Values are clamped to `[-1, max_h]` (slightly negative estimates occur
/// on pure noise); positions where no regression is possible (locally
/// constant data) receive `max_h`.
///
/// # Errors
///
/// Returns [`Error::TooShort`] when `data` is shorter than
/// [`HolderEstimator::min_samples`], [`Error::NonFinite`] for NaN input,
/// and [`Error::InvalidParameter`] for malformed configurations.
///
/// # Examples
///
/// ```
/// use aging_fractal::{generate, holder};
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let signal = generate::weierstrass(2048, 0.5)?;
/// let h = holder::holder_trace(&signal, &holder::HolderEstimator::default())?;
/// assert_eq!(h.len(), signal.len());
/// let mean = h.iter().sum::<f64>() / h.len() as f64;
/// assert!((mean - 0.5).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
pub fn holder_trace(data: &[f64], estimator: &HolderEstimator) -> Result<Vec<f64>> {
    holder_trace_in(data, estimator, Pool::global())
}

/// [`holder_trace`] on an explicit pool: trace points are computed in
/// parallel over contiguous index chunks. Every point depends only on the
/// input neighbourhood, so the output is bit-identical to the sequential
/// trace for any pool size.
///
/// # Errors
///
/// Same failure modes as [`holder_trace`].
pub fn holder_trace_in(data: &[f64], estimator: &HolderEstimator, pool: &Pool) -> Result<Vec<f64>> {
    Error::require_finite(data)?;
    match estimator {
        HolderEstimator::LocalIncrement(cfg) => increment_trace(data, cfg, pool),
        HolderEstimator::Oscillation(cfg) => oscillation_trace(data, cfg, pool),
        HolderEstimator::WaveletLeader(cfg) => leader_trace(data, cfg, pool),
    }
}

fn power_of_two_steps(max: usize) -> Vec<usize> {
    std::iter::successors(Some(1usize), |&r| Some(r * 2))
        .take_while(|&r| r <= max)
        .collect()
}

/// Minimum and maximum of a NaN-free slice in one 4-lane unrolled pass.
///
/// `min`/`max` are associative and commutative on finite data, so the
/// lane-wise reduction is bit-identical to the sequential scan while
/// letting the compiler keep four independent dependency chains (and
/// auto-vectorize). FP *sums* get no such treatment anywhere in this
/// crate — reassociating them would change results.
#[inline]
pub(crate) fn min_max(data: &[f64]) -> (f64, f64) {
    let mut mn = [f64::MAX; 4];
    let mut mx = [f64::MIN; 4];
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        for k in 0..4 {
            mn[k] = mn[k].min(c[k]);
            mx[k] = mx[k].max(c[k]);
        }
    }
    let mut amn = (mn[0].min(mn[1])).min(mn[2].min(mn[3]));
    let mut amx = (mx[0].max(mx[1])).max(mx[2].max(mx[3]));
    for &v in chunks.remainder() {
        amn = amn.min(v);
        amx = amx.max(v);
    }
    (amn, amx)
}

fn increment_trace(data: &[f64], cfg: &IncrementConfig, pool: &Pool) -> Result<Vec<f64>> {
    if cfg.max_lag < 4 {
        return Err(Error::invalid("max_lag", "must be at least 4"));
    }
    if cfg.window_radius < 2 * cfg.max_lag {
        return Err(Error::invalid(
            "window_radius",
            "must be at least twice max_lag",
        ));
    }
    if !(cfg.max_h > 0.0) {
        return Err(Error::invalid("max_h", "must be positive"));
    }
    let min_n = (2 * cfg.window_radius).max(64);
    Error::require_len(data, min_n)?;
    let n = data.len();
    let w = cfg.window_radius;

    let lags = power_of_two_steps(cfg.max_lag);
    let log_r: Vec<f64> = lags.iter().map(|&r| (r as f64).ln()).collect();

    let out = pool.map_range(n, |range| {
        let mut chunk = Vec::with_capacity(range.len());
        let mut xs = Vec::with_capacity(lags.len());
        let mut ys = Vec::with_capacity(lags.len());
        for t in range {
            let lo = t.saturating_sub(w);
            let hi = (t + w).min(n - 1);
            xs.clear();
            ys.clear();
            for (ri, &r) in lags.iter().enumerate() {
                if hi - lo < r {
                    continue;
                }
                let mut acc = 0.0;
                let mut count = 0usize;
                let mut u = lo;
                while u + r <= hi {
                    acc += (data[u + r] - data[u]).abs();
                    count += 1;
                    u += 1;
                }
                if count > 0 && acc > 0.0 {
                    xs.push(log_r[ri]);
                    ys.push((acc / count as f64).ln());
                }
            }
            chunk.push(fit_or_cap(&xs, &ys, cfg.max_h));
        }
        chunk
    });
    Ok(out)
}

fn oscillation_trace(data: &[f64], cfg: &OscillationConfig, pool: &Pool) -> Result<Vec<f64>> {
    if cfg.max_radius < 4 {
        return Err(Error::invalid("max_radius", "must be at least 4"));
    }
    if !(cfg.max_h > 0.0) {
        return Err(Error::invalid("max_h", "must be positive"));
    }
    let min_n = (4 * cfg.max_radius).max(16);
    Error::require_len(data, min_n)?;
    let n = data.len();

    let radii = power_of_two_steps(cfg.max_radius);
    let log_r: Vec<f64> = radii.iter().map(|&r| (r as f64).ln()).collect();

    let out = pool.map_range(n, |range| {
        let mut chunk = Vec::with_capacity(range.len());
        let mut xs = Vec::with_capacity(radii.len());
        let mut ys = Vec::with_capacity(radii.len());
        for t in range {
            xs.clear();
            ys.clear();
            for (ri, &r) in radii.iter().enumerate() {
                let lo = t.saturating_sub(r);
                let hi = (t + r).min(n - 1);
                let (mn, mx) = min_max(&data[lo..=hi]);
                let osc = mx - mn;
                if osc > 0.0 {
                    xs.push(log_r[ri]);
                    ys.push(osc.ln());
                }
            }
            chunk.push(fit_or_cap(&xs, &ys, cfg.max_h));
        }
        chunk
    });
    Ok(out)
}

fn leader_trace(data: &[f64], cfg: &LeaderConfig, pool: &Pool) -> Result<Vec<f64>> {
    if cfg.levels < 3 {
        return Err(Error::invalid("levels", "must be at least 3"));
    }
    if cfg.fit_min_level == 0 || cfg.fit_min_level + 2 > cfg.levels {
        return Err(Error::invalid(
            "fit_min_level",
            "must be >= 1 and leave at least 3 levels for the fit",
        ));
    }
    if !(cfg.max_h > 0.0) {
        return Err(Error::invalid("max_h", "must be positive"));
    }
    Error::require_len(data, 1 << cfg.levels)?;

    let leaders = WaveletLeaders::compute(data, cfg.wavelet, cfg.levels)?;
    let n = data.len();
    let out = pool.map_range(n, |range| {
        let mut chunk = Vec::with_capacity(range.len());
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for t in range {
            xs.clear();
            ys.clear();
            for j in cfg.fit_min_level..=cfg.levels {
                let l = leaders.at_time(j, t);
                if l > 0.0 {
                    xs.push(j as f64);
                    ys.push(l.log2());
                }
            }
            chunk.push(fit_or_cap(&xs, &ys, cfg.max_h));
        }
        chunk
    });
    Ok(out)
}

/// Hölder exponent attributed to the centre of a single neighbourhood
/// window, using the local-increment estimator (the streaming detector's
/// building block: feed it the trailing `2·radius + 1` samples and read
/// the exponent of the window centre).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for `max_lag < 4` or non-positive
/// `max_h`, [`Error::TooShort`] when `window` has fewer than `4·max_lag`
/// samples, and [`Error::NonFinite`] for NaN input.
///
/// # Examples
///
/// ```
/// use aging_fractal::{generate, holder};
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let signal = generate::weierstrass(256, 0.5)?;
/// let h = holder::increment_exponent(&signal[64..192], 8, 2.0)?;
/// assert!(h > 0.2 && h < 0.8);
/// # Ok(())
/// # }
/// ```
pub fn increment_exponent(window: &[f64], max_lag: usize, max_h: f64) -> Result<f64> {
    if max_lag < 4 {
        return Err(Error::invalid("max_lag", "must be at least 4"));
    }
    if !(max_h > 0.0) {
        return Err(Error::invalid("max_h", "must be positive"));
    }
    Error::require_len(window, 4 * max_lag)?;
    Error::require_finite(window)?;
    // This runs once per push in the streaming detectors, so the lag
    // ladder 1, 2, 4, …, max_lag is walked in place and the regression
    // points live on the stack — zero heap allocation per call. A usize
    // has at most 64 doubling steps. The increment sum keeps its
    // sequential order (reassociating FP adds would change bits); the
    // zip only removes the bounds checks of the indexed form.
    let mut xs = [0.0f64; usize::BITS as usize];
    let mut ys = [0.0f64; usize::BITS as usize];
    let mut len = 0usize;
    let mut r = 1usize;
    while r <= max_lag {
        let mut acc = 0.0;
        for (a, b) in window[r..].iter().zip(window.iter()) {
            acc += (a - b).abs();
        }
        let count = window.len() - r;
        if acc > 0.0 {
            xs[len] = (r as f64).ln();
            ys[len] = (acc / count as f64).ln();
            len += 1;
        }
        if r > max_lag / 2 {
            break;
        }
        r *= 2;
    }
    Ok(fit_or_cap(&xs[..len], &ys[..len], max_h))
}

fn fit_or_cap(xs: &[f64], ys: &[f64], max_h: f64) -> f64 {
    // Floor at -1 rather than 0: pure noise can regress slightly negative,
    // and flooring at 0 would flatten rough-signal traces into degenerate
    // constants (breaking the dimension analysis applied to the trace).
    if xs.len() >= 3 {
        match ols(xs, ys) {
            Ok(fit) => fit.slope.clamp(-1.0, max_h),
            Err(_) => max_h,
        }
    } else {
        max_h
    }
}

/// Summary statistics of a Hölder trace (used by the aging analyses to
/// compare early-life and late-life regularity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HolderSummary {
    /// Mean exponent.
    pub mean: f64,
    /// Standard deviation of the exponent.
    pub std_dev: f64,
    /// Minimum exponent.
    pub min: f64,
    /// Maximum exponent.
    pub max: f64,
}

impl HolderSummary {
    /// Summarises a Hölder trace.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooShort`] for traces shorter than two samples.
    pub fn of(trace: &[f64]) -> Result<Self> {
        Error::require_len(trace, 2)?;
        Ok(HolderSummary {
            mean: aging_timeseries::stats::mean(trace)?,
            std_dev: aging_timeseries::stats::std_dev(trace)?,
            min: aging_timeseries::stats::min(trace)?,
            max: aging_timeseries::stats::max(trace)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use aging_timeseries::stats;

    #[test]
    fn weierstrass_trace_matches_h_increment() {
        for &h in &[0.3, 0.5, 0.7] {
            let x = generate::weierstrass(4096, h).unwrap();
            let trace = holder_trace(&x, &HolderEstimator::local_increment()).unwrap();
            let mean = stats::mean(&trace).unwrap();
            assert!((mean - h).abs() < 0.08, "h={h}: mean {mean}");
        }
    }

    #[test]
    fn fbm_trace_tracks_hurst_increment() {
        for &(hurst, seed) in &[(0.3, 1u64), (0.5, 12), (0.7, 2), (0.9, 13)] {
            let x = generate::fbm(8192, hurst, seed).unwrap();
            let trace = holder_trace(&x, &HolderEstimator::local_increment()).unwrap();
            let mean = stats::mean(&trace).unwrap();
            assert!((mean - hurst).abs() < 0.08, "H={hurst}: mean {mean}");
        }
    }

    #[test]
    fn oscillation_estimator_biased_but_ordered() {
        // The oscillation variant has a documented upward bias at low h;
        // it must still order regularity levels correctly and stay within
        // a generous band.
        let mut means = Vec::new();
        for &(h, seed) in &[(0.3, 3u64), (0.5, 4), (0.7, 5)] {
            let x = generate::fbm(8192, h, seed).unwrap();
            let trace = holder_trace(&x, &HolderEstimator::oscillation()).unwrap();
            let mean = stats::mean(&trace).unwrap();
            assert!((mean - h).abs() < 0.3, "H={h}: mean {mean}");
            means.push(mean);
        }
        assert!(means[0] < means[1] && means[1] < means[2]);
    }

    #[test]
    fn weierstrass_trace_matches_h_leaders() {
        for &h in &[0.3, 0.6] {
            let x = generate::weierstrass(8192, h).unwrap();
            let trace = holder_trace(&x, &HolderEstimator::wavelet_leader()).unwrap();
            let mean = stats::mean(&trace).unwrap();
            assert!((mean - h).abs() < 0.2, "h={h}: mean {mean}");
        }
    }

    #[test]
    fn rough_signal_has_lower_h_than_smooth() {
        let rough = generate::fbm(2048, 0.2, 3).unwrap();
        let smooth = generate::fbm(2048, 0.8, 4).unwrap();
        for est in [
            HolderEstimator::local_increment(),
            HolderEstimator::oscillation(),
            HolderEstimator::wavelet_leader(),
        ] {
            let hr = stats::mean(&holder_trace(&rough, &est).unwrap()).unwrap();
            let hs = stats::mean(&holder_trace(&smooth, &est).unwrap()).unwrap();
            assert!(hr + 0.2 < hs, "{est:?}: rough {hr} smooth {hs}");
        }
    }

    #[test]
    fn smooth_sine_has_high_h() {
        let x: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.01).sin()).collect();
        let trace = holder_trace(&x, &HolderEstimator::local_increment()).unwrap();
        let mean = stats::mean(&trace).unwrap();
        assert!(mean > 0.85, "mean {mean}");
    }

    #[test]
    fn trace_has_input_length() {
        let x = generate::white_noise(300, 5).unwrap();
        for est in [
            HolderEstimator::local_increment(),
            HolderEstimator::oscillation(),
            HolderEstimator::wavelet_leader(),
        ] {
            let t = holder_trace(&x, &est).unwrap();
            assert_eq!(t.len(), 300, "{est:?}");
        }
    }

    #[test]
    fn trace_is_amplitude_invariant() {
        let x = generate::fbm(1024, 0.5, 6).unwrap();
        let scaled: Vec<f64> = x.iter().map(|v| 1e4 * v).collect();
        let a = holder_trace(&x, &HolderEstimator::local_increment()).unwrap();
        let b = holder_trace(&scaled, &HolderEstimator::local_increment()).unwrap();
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_signal_maps_to_max_h() {
        let x = vec![7.0; 256];
        let trace = holder_trace(&x, &HolderEstimator::local_increment()).unwrap();
        assert!(trace.iter().all(|&h| h == 2.0));
    }

    #[test]
    fn values_lie_in_range() {
        let x = generate::white_noise(2048, 7).unwrap();
        for est in [
            HolderEstimator::local_increment(),
            HolderEstimator::oscillation(),
            HolderEstimator::wavelet_leader(),
        ] {
            let trace = holder_trace(&x, &est).unwrap();
            assert!(trace.iter().all(|&h| (-1.0..=2.0).contains(&h)), "{est:?}");
        }
    }

    #[test]
    fn localized_roughness_is_detected() {
        // Smooth sine with a burst of noise in the middle third: the trace
        // must dip there.
        let n = 3000;
        let noise = generate::white_noise(n, 8).unwrap();
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let smooth = (i as f64 * 0.01).sin() * 5.0;
                if (1000..2000).contains(&i) {
                    smooth + 0.5 * noise[i]
                } else {
                    smooth
                }
            })
            .collect();
        let trace = holder_trace(&x, &HolderEstimator::local_increment()).unwrap();
        let inside = stats::mean(&trace[1100..1900]).unwrap();
        let outside = stats::mean(&trace[100..900]).unwrap();
        assert!(inside + 0.2 < outside, "inside {inside} outside {outside}");
    }

    #[test]
    fn guards() {
        let x = generate::white_noise(1024, 9).unwrap();
        assert!(holder_trace(&x[..10], &HolderEstimator::local_increment()).is_err());
        let mut bad = x.clone();
        bad[0] = f64::NAN;
        assert!(holder_trace(&bad, &HolderEstimator::local_increment()).is_err());

        let bad_inc = HolderEstimator::LocalIncrement(IncrementConfig {
            window_radius: 8,
            max_lag: 8,
            max_h: 2.0,
        });
        assert!(holder_trace(&x, &bad_inc).is_err());

        let bad_osc = HolderEstimator::Oscillation(OscillationConfig {
            max_radius: 2,
            max_h: 2.0,
        });
        assert!(holder_trace(&x, &bad_osc).is_err());

        let bad_leader = HolderEstimator::WaveletLeader(LeaderConfig {
            fit_min_level: 5,
            levels: 6,
            ..LeaderConfig::default()
        });
        assert!(holder_trace(&x, &bad_leader).is_err());
    }

    #[test]
    fn summary_reports_range() {
        let x = generate::fbm(1024, 0.5, 10).unwrap();
        let trace = holder_trace(&x, &HolderEstimator::local_increment()).unwrap();
        let s = HolderSummary::of(&trace).unwrap();
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!(s.std_dev >= 0.0);
        assert!(HolderSummary::of(&[0.5]).is_err());
    }

    #[test]
    fn increment_exponent_matches_trace_estimates() {
        // The point estimator on a full neighbourhood must land near the
        // ground truth just like the trace does.
        for &h in &[0.3, 0.7] {
            let x = generate::weierstrass(4096, h).unwrap();
            let mut points = Vec::new();
            for centre in (64..4032).step_by(97) {
                let w = &x[centre - 32..=centre + 32];
                points.push(increment_exponent(w, 8, 2.0).unwrap());
            }
            let mean = stats::mean(&points).unwrap();
            assert!((mean - h).abs() < 0.1, "h={h}: mean {mean}");
        }
    }

    #[test]
    fn increment_exponent_guards() {
        let x = generate::white_noise(128, 20).unwrap();
        assert!(increment_exponent(&x, 2, 2.0).is_err());
        assert!(increment_exponent(&x, 8, 0.0).is_err());
        assert!(increment_exponent(&x[..16], 8, 2.0).is_err());
        let constant = vec![1.0; 64];
        assert_eq!(increment_exponent(&constant, 8, 2.0).unwrap(), 2.0);
    }

    #[test]
    fn min_samples_reported() {
        assert_eq!(HolderEstimator::local_increment().min_samples(), 64);
        assert_eq!(HolderEstimator::oscillation().min_samples(), 64);
        assert_eq!(HolderEstimator::wavelet_leader().min_samples(), 64);
    }
}
