//! Multi-process machines: several workloads with independent fault plans
//! sharing one memory subsystem — so aging can be *attributed* to a
//! process and cured by restarting only that process
//! ("micro-rejuvenation", the application-level rejuvenation granularity
//! of Huang et al.).
//!
//! The aggregate counters match the single-process [`crate::Machine`]
//! semantics; per-process private-bytes series come on top.

use crate::config::MachineConfig;
use crate::faults::{FaultPlan, FaultState};
use crate::memory::{CrashCause, MemorySubsystem, PagingModel};
use crate::monitor::{CrashEvent, MonitorLog, Sample};
use crate::units::{Bytes, SimTime};
use crate::workload::{WorkloadConfig, WorkloadSampler};
use aging_timeseries::{Error, Result, TimeSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One process of a multi-process scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessSpec {
    /// Process name (unique within the scenario).
    pub name: String,
    /// The process's workload.
    pub workload: WorkloadConfig,
    /// The process's aging faults.
    pub faults: FaultPlan,
}

/// A multi-process experiment scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiScenario {
    /// Scenario label.
    pub name: String,
    /// Machine description.
    pub machine: MachineConfig,
    /// The hosted processes.
    pub processes: Vec<ProcessSpec>,
    /// RNG seed.
    pub seed: u64,
}

impl MultiScenario {
    /// The canonical demo: a leaky app, a healthy database and a healthy
    /// cache sharing an NT4-class machine.
    pub fn leaky_app_with_neighbours(seed: u64, leak_mib_per_hour: f64) -> Self {
        let mut app = WorkloadConfig::web_server();
        app.base_rate = 8.0;
        let mut db = WorkloadConfig::interactive();
        db.base_rate = 3.0;
        let mut cache = WorkloadConfig::interactive();
        cache.base_rate = 2.0;
        MultiScenario {
            name: format!("leaky-app-{seed}"),
            machine: MachineConfig::workstation_nt4(),
            processes: vec![
                ProcessSpec {
                    name: "app".into(),
                    workload: app,
                    faults: FaultPlan::aging(leak_mib_per_hour),
                },
                ProcessSpec {
                    name: "db".into(),
                    workload: db,
                    faults: FaultPlan::healthy(),
                },
                ProcessSpec {
                    name: "cache".into(),
                    workload: cache,
                    faults: FaultPlan::healthy(),
                },
            ],
            seed,
        }
    }

    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an empty or
    /// duplicate-named process list and propagates member validation.
    pub fn validate(&self) -> Result<()> {
        self.machine.validate()?;
        if self.processes.is_empty() {
            return Err(Error::invalid("processes", "must not be empty"));
        }
        let mut names = std::collections::BTreeSet::new();
        for p in &self.processes {
            if !names.insert(&p.name) {
                return Err(Error::invalid(
                    "processes",
                    format!("duplicate process name `{}`", p.name),
                ));
            }
            p.workload.validate()?;
            p.faults.validate()?;
        }
        Ok(())
    }
}

#[derive(Debug)]
struct ProcessState {
    name: String,
    sampler: WorkloadSampler,
    faults: FaultState,
    fault_plan: FaultPlan,
    memory: MemorySubsystem,
    alloc_bytes_this_step: f64,
}

impl ProcessState {
    fn private_bytes(&self) -> Bytes {
        self.memory.live() + self.faults.leaked() + self.faults.handle_bytes()
    }
}

/// A running multi-process machine.
#[derive(Debug)]
pub struct MultiMachine {
    config: MachineConfig,
    paging: PagingModel,
    processes: Vec<ProcessState>,
    rng: StdRng,
    step_index: u64,
    steps_per_sample: u64,
    thrash_secs: f64,
    alloc_bytes_since_sample: f64,
    log: MonitorLog,
    private_series: BTreeMap<String, Vec<f64>>,
    crashed: Option<CrashEvent>,
    restarts: BTreeMap<String, usize>,
}

impl MultiMachine {
    /// Boots the machine.
    ///
    /// # Errors
    ///
    /// Propagates [`MultiScenario::validate`] failures.
    pub fn boot(scenario: &MultiScenario) -> Result<Self> {
        scenario.validate()?;
        let steps_per_sample =
            (scenario.machine.sample_period_secs / scenario.machine.step_secs).round() as u64;
        let processes = scenario
            .processes
            .iter()
            .map(|spec| {
                Ok(ProcessState {
                    name: spec.name.clone(),
                    sampler: WorkloadSampler::new(spec.workload.clone())?,
                    faults: FaultState::new(spec.faults.clone())?,
                    fault_plan: spec.faults.clone(),
                    memory: MemorySubsystem::new(&scenario.machine)?,
                    alloc_bytes_this_step: 0.0,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let private_series = scenario
            .processes
            .iter()
            .map(|p| (p.name.clone(), Vec::new()))
            .collect();
        Ok(MultiMachine {
            config: scenario.machine.clone(),
            paging: PagingModel::of(&scenario.machine),
            processes,
            rng: StdRng::seed_from_u64(scenario.seed),
            step_index: 0,
            steps_per_sample,
            thrash_secs: 0.0,
            alloc_bytes_since_sample: 0.0,
            log: MonitorLog::new(scenario.machine.sample_period_secs)?,
            private_series,
            crashed: None,
            restarts: BTreeMap::new(),
        })
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs(self.step_index as f64 * self.config.step_secs)
    }

    /// Whether the machine has crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed.is_some()
    }

    /// The aggregate monitor log.
    pub fn log(&self) -> &MonitorLog {
        &self.log
    }

    /// Process names, in scenario order.
    pub fn process_names(&self) -> Vec<&str> {
        self.processes.iter().map(|p| p.name.as_str()).collect()
    }

    /// The private-bytes series of one process (sampled on the monitor
    /// grid).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an unknown process and
    /// [`Error::Empty`] before the first sample.
    pub fn private_bytes_series(&self, process: &str) -> Result<TimeSeries> {
        let values = self
            .private_series
            .get(process)
            .ok_or_else(|| Error::invalid("process", format!("unknown process `{process}`")))?;
        if values.is_empty() {
            return Err(Error::Empty);
        }
        TimeSeries::from_values(0.0, self.config.sample_period_secs, values.clone())
    }

    /// Number of restarts performed per process.
    pub fn restarts(&self, process: &str) -> usize {
        self.restarts.get(process).copied().unwrap_or(0)
    }

    /// Total commit charge across processes plus OS overhead.
    fn committed(&self) -> Bytes {
        let process_bytes: Bytes = self.processes.iter().map(|p| p.private_bytes()).sum();
        self.config.os_overhead + process_bytes
    }

    /// Advances one step; returns the crash event if the machine died.
    pub fn step(&mut self) -> Option<CrashEvent> {
        if self.crashed.is_some() {
            return self.crashed;
        }
        let dt = self.config.step_secs;
        let now = self.step_index as f64 * dt;

        let mut step_alloc = 0.0;
        for p in &mut self.processes {
            p.alloc_bytes_this_step = 0.0;
            for req in p.sampler.step(now, dt, &mut self.rng) {
                let expiry = self.step_index + 1 + (req.lifetime_secs / dt).ceil() as u64;
                p.memory.allocate(req.bytes, expiry);
                p.alloc_bytes_this_step += req.bytes.as_f64();
            }
            p.memory.expire(self.step_index);
            p.faults.step(now, dt, &mut self.rng);
            step_alloc += p.alloc_bytes_this_step;
        }
        self.alloc_bytes_since_sample += step_alloc;

        let committed = self.committed();
        if self.paging.is_oom(committed) {
            let event = CrashEvent {
                time: self.now(),
                cause: CrashCause::OutOfMemory,
            };
            self.log.record_crash(event);
            self.crashed = Some(event);
            return self.crashed;
        }
        // Worst fragmentation across process heaps dominates machine-level
        // effectiveness.
        let frag = self
            .processes
            .iter()
            .map(|p| p.faults.fragmentation_fraction())
            .fold(0.0, f64::max);
        let live_total: Bytes = self.processes.iter().map(|p| p.memory.live()).sum();
        let jitter: f64 = self.rng.gen_range(0.0..1.0);
        let metrics = self
            .paging
            .metrics(committed, live_total, frag, step_alloc / dt, jitter);
        if metrics.thrashing {
            self.thrash_secs += dt;
            if self.thrash_secs >= self.config.thrash_crash_secs {
                let event = CrashEvent {
                    time: self.now(),
                    cause: CrashCause::Thrashing,
                };
                self.log.record_crash(event);
                self.crashed = Some(event);
                return self.crashed;
            }
        } else {
            self.thrash_secs = 0.0;
        }

        if self.step_index % self.steps_per_sample == self.steps_per_sample - 1 {
            let handle_count: u64 = self.processes.iter().map(|p| p.faults.handle_count()).sum();
            let sample = Sample {
                time: self.now(),
                available: metrics.available,
                used_swap: metrics.used_swap,
                committed: metrics.committed,
                live_heap: metrics.live_heap,
                page_faults_per_sec: metrics.page_faults_per_sec,
                handle_count,
                alloc_rate: self.alloc_bytes_since_sample / self.config.sample_period_secs,
            };
            self.log.record(&sample);
            for p in &self.processes {
                self.private_series
                    .get_mut(&p.name)
                    .expect("initialised at boot")
                    .push(p.private_bytes().as_f64());
            }
            self.alloc_bytes_since_sample = 0.0;
        }
        self.step_index += 1;
        None
    }

    /// Runs for up to `secs` simulated seconds, stopping early on a crash.
    pub fn run_for(&mut self, secs: f64) -> Option<CrashEvent> {
        let steps = (secs / self.config.step_secs).ceil() as u64;
        for _ in 0..steps {
            if let Some(crash) = self.step() {
                return Some(crash);
            }
        }
        None
    }

    /// Restarts one process only: clears its heap, leaks and handles. The
    /// other processes keep running — the selective "micro-rejuvenation".
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an unknown process name.
    pub fn restart_process(&mut self, process: &str) -> Result<()> {
        let p = self
            .processes
            .iter_mut()
            .find(|p| p.name == process)
            .ok_or_else(|| Error::invalid("process", format!("unknown process `{process}`")))?;
        p.memory.clear_live();
        p.faults = FaultState::new(p.fault_plan.clone()).expect("plan validated at boot");
        *self.restarts.entry(process.to_string()).or_insert(0) += 1;
        // A process restart relieves pressure; clear the thrash clock and
        // revive the machine if it was hung (reboot-equivalent).
        self.thrash_secs = 0.0;
        self.crashed = None;
        Ok(())
    }

    /// The process whose private bytes grew fastest over the sampled
    /// history (Sen's slope) — the leak suspect.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooShort`] when fewer than 16 samples exist.
    pub fn leak_suspect(&self) -> Result<&str> {
        let mut best: Option<(&str, f64)> = None;
        for p in &self.processes {
            let series = self.private_bytes_series(&p.name)?;
            if series.len() < 16 {
                return Err(Error::TooShort {
                    required: 16,
                    actual: series.len(),
                });
            }
            let sen = aging_timeseries::trend::SenSlope::estimate(series.values(), series.dt())?;
            if best.is_none_or(|(_, s)| sen.slope > s) {
                best = Some((p.name.as_str(), sen.slope));
            }
        }
        Ok(best.expect("validated non-empty").0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Counter;

    fn tiny_multi(seed: u64, leak: f64) -> MultiScenario {
        let mut s = MultiScenario::leaky_app_with_neighbours(seed, leak);
        s.machine = MachineConfig::tiny_test();
        for p in &mut s.processes {
            p.workload = WorkloadConfig::tiny_test();
            // Scale rates down so three processes fit the tiny machine.
            p.workload.base_rate = 6.0;
            p.workload.batch_bytes = Bytes::ZERO;
        }
        s
    }

    #[test]
    fn validation() {
        assert!(MultiScenario::leaky_app_with_neighbours(1, 10.0)
            .validate()
            .is_ok());
        let mut dup = MultiScenario::leaky_app_with_neighbours(1, 10.0);
        dup.processes[1].name = "app".into();
        assert!(dup.validate().is_err());
        let mut empty = MultiScenario::leaky_app_with_neighbours(1, 10.0);
        empty.processes.clear();
        assert!(empty.validate().is_err());
    }

    #[test]
    fn aggregate_counters_and_private_series_align() {
        let scenario = tiny_multi(1, 64.0);
        let mut m = MultiMachine::boot(&scenario).unwrap();
        m.run_for(1200.0);
        assert_eq!(m.log().len(), 240); // 5 s sampling
        for name in ["app", "db", "cache"] {
            let s = m.private_bytes_series(name).unwrap();
            assert_eq!(s.len(), 240, "{name}");
        }
        assert!(m.private_bytes_series("nope").is_err());
        // Committed ≥ sum of process private bytes sampled last.
        let committed = m.log().values(Counter::CommittedBytes);
        let last_committed = committed[committed.len() - 1];
        let sum_private: f64 = ["app", "db", "cache"]
            .iter()
            .map(|n| {
                let s = m.private_bytes_series(n).unwrap();
                s.values()[s.len() - 1]
            })
            .sum();
        assert!(last_committed >= sum_private);
    }

    #[test]
    fn leak_suspect_is_the_leaky_process() {
        let scenario = tiny_multi(2, 128.0);
        let mut m = MultiMachine::boot(&scenario).unwrap();
        m.run_for(1800.0);
        assert_eq!(m.leak_suspect().unwrap(), "app");
    }

    #[test]
    fn restarting_the_leaky_process_extends_life() {
        // Without intervention the machine crashes (96 MiB/h against
        // ~110 MiB of headroom ≈ 70 min to OOM); restarting the leak
        // suspect every 30 minutes keeps it alive.
        let horizon = 6.0 * 3600.0;
        let mut untreated = MultiMachine::boot(&tiny_multi(3, 96.0)).unwrap();
        let crash = untreated.run_for(horizon);
        assert!(crash.is_some(), "untreated machine must crash");

        let mut treated = MultiMachine::boot(&tiny_multi(3, 96.0)).unwrap();
        let mut crashed = false;
        for _ in 0..12 {
            if treated.run_for(horizon / 12.0).is_some() {
                crashed = true;
                break;
            }
            let suspect = treated.leak_suspect().unwrap().to_string();
            treated.restart_process(&suspect).unwrap();
        }
        assert!(!crashed, "treated machine must survive");
        assert!(treated.restarts("app") >= 10, "app restarted selectively");
        assert_eq!(treated.restarts("db") + treated.restarts("cache"), 0);
    }

    #[test]
    fn restart_unknown_process_is_error() {
        let mut m = MultiMachine::boot(&tiny_multi(4, 10.0)).unwrap();
        assert!(m.restart_process("ghost").is_err());
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut m = MultiMachine::boot(&tiny_multi(5, 64.0)).unwrap();
            m.run_for(900.0);
            m.log().values(Counter::AvailableBytes).to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crashed_machine_stops() {
        let mut m = MultiMachine::boot(&tiny_multi(6, 2048.0)).unwrap();
        let crash = m.run_for(4.0 * 3600.0).expect("fast leak crashes");
        assert!(m.is_crashed());
        assert_eq!(m.step(), Some(crash));
        // Restarting the culprit revives it.
        m.restart_process("app").unwrap();
        assert!(!m.is_crashed());
    }
}
