//! Wavelet-transform modulus-maxima (WTMM) partition function — the
//! multifractal formalism of Muzy, Bacry & Arneodo that the target paper's
//! era of analysis toolboxes (FracLab) implemented.
//!
//! The CWT is computed on a dyadic scale grid; at each scale the local
//! modulus maxima are extracted and the partition function
//! `Z(q, s) = Σ_maxima |W(s, t)|^q` is regressed against scale to obtain
//! `τ(q)`. For a monofractal signal with exponent `H`, `τ(q) = qH − 1`.
//!
//! This implementation uses per-scale maxima with a supremum link to the
//! previous (finer) scale for stability, and restricts `q ≥ 0`
//! (negative moments require full maxima-line chaining to be stable, which
//! the leader formalism in [`crate::spectrum`] covers more robustly).

// `!(x > 0)`-style comparisons below are deliberate: unlike `x <= 0`,
// they also reject NaN, which is exactly what parameter validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
use crate::spectrum::{legendre, ScalingExponents, SpectrumPoint};
use aging_par::Pool;
use aging_timeseries::regression::ols;
use aging_timeseries::{Error, Result};
use aging_wavelet::cwt::{cwt_in, CwtWavelet};

/// Configuration of the WTMM analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct WtmmConfig {
    /// Analysing wavelet.
    pub wavelet: CwtWavelet,
    /// Smallest scale in samples (≥ 1).
    pub min_scale: f64,
    /// Number of dyadic scales (`min_scale · 2^k`, `k < num_scales`).
    pub num_scales: usize,
    /// Non-negative moment orders.
    pub qs: Vec<f64>,
    /// Modulus threshold below which maxima are ignored (relative to the
    /// scale's maximum modulus).
    pub relative_threshold: f64,
}

impl Default for WtmmConfig {
    fn default() -> Self {
        WtmmConfig {
            wavelet: CwtWavelet::MexicanHat,
            min_scale: 2.0,
            num_scales: 6,
            qs: vec![0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0],
            relative_threshold: 1e-4,
        }
    }
}

impl WtmmConfig {
    /// Starts a fluent builder seeded with the defaults; finish with
    /// [`WtmmConfigBuilder::build`], which validates the result.
    ///
    /// # Examples
    ///
    /// ```
    /// use aging_fractal::wtmm::WtmmConfig;
    ///
    /// # fn main() -> Result<(), aging_timeseries::Error> {
    /// let config = WtmmConfig::builder()
    ///     .min_scale(4.0)
    ///     .num_scales(5)
    ///     .qs(vec![0.0, 1.0, 2.0, 3.0])
    ///     .build()?;
    /// assert_eq!(config.num_scales, 5);
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder() -> WtmmConfigBuilder {
        WtmmConfigBuilder {
            config: WtmmConfig::default(),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if !(self.min_scale >= 1.0) {
            return Err(Error::invalid("min_scale", "must be at least 1"));
        }
        if self.num_scales < 3 {
            return Err(Error::invalid("num_scales", "must be at least 3"));
        }
        if self.qs.is_empty() {
            return Err(Error::invalid("qs", "must not be empty"));
        }
        if self.qs.iter().any(|&q| q < 0.0) {
            return Err(Error::invalid(
                "qs",
                "this WTMM variant supports q >= 0 only (use wavelet leaders for q < 0)",
            ));
        }
        if !(0.0..1.0).contains(&self.relative_threshold) {
            return Err(Error::invalid("relative_threshold", "must lie in [0, 1)"));
        }
        Ok(())
    }
}

/// Fluent builder for [`WtmmConfig`]; see [`WtmmConfig::builder`].
#[derive(Debug, Clone)]
pub struct WtmmConfigBuilder {
    config: WtmmConfig,
}

impl WtmmConfigBuilder {
    /// Sets the analysing wavelet.
    #[must_use]
    pub fn wavelet(mut self, wavelet: CwtWavelet) -> Self {
        self.config.wavelet = wavelet;
        self
    }

    /// Sets the smallest scale in samples.
    #[must_use]
    pub fn min_scale(mut self, min_scale: f64) -> Self {
        self.config.min_scale = min_scale;
        self
    }

    /// Sets the number of dyadic scales.
    #[must_use]
    pub fn num_scales(mut self, num_scales: usize) -> Self {
        self.config.num_scales = num_scales;
        self
    }

    /// Sets the moment orders.
    #[must_use]
    pub fn qs(mut self, qs: Vec<f64>) -> Self {
        self.config.qs = qs;
        self
    }

    /// Sets the relative modulus threshold for maxima.
    #[must_use]
    pub fn relative_threshold(mut self, relative_threshold: f64) -> Self {
        self.config.relative_threshold = relative_threshold;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] describing the first violated
    /// constraint, exactly like [`WtmmConfig::validate`].
    pub fn build(self) -> Result<WtmmConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Result of a WTMM analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct WtmmResult {
    /// Scaling exponents `τ(q)`.
    pub tau: ScalingExponents,
    /// Singularity spectrum from the Legendre transform.
    pub spectrum: Vec<SpectrumPoint>,
    /// Number of maxima found per scale.
    pub maxima_counts: Vec<usize>,
}

impl WtmmResult {
    /// `τ(2)/2 + 1/2`-style Hurst proxy: the slope `dτ/dq` at `q = 2` via
    /// the spectrum point, i.e. `α(2)`.
    pub fn alpha_at(&self, q: f64) -> Option<f64> {
        self.spectrum
            .iter()
            .find(|p| (p.q - q).abs() < 1e-9)
            .map(|p| p.alpha)
    }
}

/// Runs the WTMM partition-function analysis on `data`.
///
/// # Errors
///
/// Propagates configuration and CWT failures; returns
/// [`Error::Numerical`] when too few maxima survive to regress.
pub fn wtmm(data: &[f64], config: &WtmmConfig) -> Result<WtmmResult> {
    wtmm_in(data, config, Pool::global())
}

/// [`wtmm`] on an explicit pool: the CWT rows and the per-scale maxima
/// extraction are parallelised over scales, so the result is bit-identical
/// to the sequential analysis for any pool size.
///
/// # Errors
///
/// Same failure modes as [`wtmm`].
pub fn wtmm_in(data: &[f64], config: &WtmmConfig, pool: &Pool) -> Result<WtmmResult> {
    config.validate()?;
    Error::require_len(data, 128)?;
    let scales: Vec<f64> = (0..config.num_scales)
        .map(|k| config.min_scale * (1u64 << k) as f64)
        .collect();
    let res = cwt_in(data, config.wavelet, &scales, pool)?;

    // Per-scale modulus maxima. For q >= 0 the classical partition
    // function uses the raw maxima moduli per scale (the supremum-link of
    // the full maxima-line formalism is only needed to stabilise q < 0,
    // and propagating one anomalously large fine-scale coefficient up the
    // hierarchy flattens tau(q) at large q — the known "linearisation"
    // artefact).
    let maxima_per_scale: Vec<Vec<f64>> = pool.map_indexed(scales.len(), |si| {
        let row = res.row(si);
        let peak = row.iter().map(|v| v.abs()).fold(0.0, f64::max);
        let threshold = peak * config.relative_threshold;
        let positions = res.modulus_maxima(si, threshold);
        // Exclude the cone of influence: near the boundary the truncated
        // wavelet loses its zero mean and |W| reflects the raw signal
        // level, producing enormous spurious maxima.
        let margin = (config.wavelet.support_radius() * scales[si]).ceil() as usize;
        // Convert to L1 normalisation (|W| ~ s^h for a local exponent h):
        // the CWT itself is L2-normalised (|W| ~ s^{h + 1/2}).
        let l1 = 1.0 / scales[si].sqrt();
        positions
            .iter()
            .filter(|&&t| t >= margin && t + margin < data.len())
            .map(|&t| row[t].abs() * l1)
            .collect()
    });
    let maxima_counts: Vec<usize> = maxima_per_scale.iter().map(Vec::len).collect();

    // Partition function per q.
    let mut exponents = Vec::with_capacity(config.qs.len());
    let mut r2 = Vec::with_capacity(config.qs.len());
    for &q in &config.qs {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (si, moduli) in maxima_per_scale.iter().enumerate() {
            if moduli.len() < 3 {
                continue;
            }
            let z: f64 = moduli
                .iter()
                .filter(|&&m| m > 0.0)
                .map(|&m| m.powf(q))
                .sum();
            if z > 0.0 && z.is_finite() {
                xs.push(scales[si].ln());
                ys.push(z.ln());
            }
        }
        if xs.len() < 3 {
            return Err(Error::Numerical(format!(
                "not enough scales with maxima for q={q}"
            )));
        }
        let fit = ols(&xs, &ys)?;
        exponents.push(fit.slope);
        r2.push(fit.r_squared);
    }
    let tau = ScalingExponents {
        qs: config.qs.clone(),
        exponents,
        r_squared: r2,
    };
    let spectrum = legendre(&tau.qs, &tau.exponents)?;
    Ok(WtmmResult {
        tau,
        spectrum,
        maxima_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn config_validation() {
        assert!(WtmmConfig::default().validate().is_ok());
        let bad = |f: fn(&mut WtmmConfig)| {
            let mut c = WtmmConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.min_scale = 0.5));
        assert!(bad(|c| c.num_scales = 2));
        assert!(bad(|c| c.qs.clear()));
        assert!(bad(|c| c.qs = vec![-1.0, 1.0]));
        assert!(bad(|c| c.relative_threshold = 1.0));
    }

    #[test]
    fn builder_round_trips_and_validates() {
        let built = WtmmConfig::builder().build().unwrap();
        assert_eq!(built, WtmmConfig::default());

        let custom = WtmmConfig::builder()
            .wavelet(CwtWavelet::MorletReal)
            .min_scale(4.0)
            .num_scales(5)
            .qs(vec![0.0, 2.0])
            .relative_threshold(1e-3)
            .build()
            .unwrap();
        assert_eq!(custom.wavelet, CwtWavelet::MorletReal);
        assert_eq!(custom.min_scale, 4.0);
        assert_eq!(custom.num_scales, 5);
        assert_eq!(custom.qs, vec![0.0, 2.0]);
        assert_eq!(custom.relative_threshold, 1e-3);

        assert!(WtmmConfig::builder().min_scale(0.25).build().is_err());
        assert!(WtmmConfig::builder().qs(vec![-2.0]).build().is_err());
    }

    #[test]
    fn tau_roughly_linear_for_fbm() {
        let x = generate::fbm(4096, 0.6, 1).unwrap();
        let res = wtmm(&x, &WtmmConfig::default()).unwrap();
        // τ(q) ≈ qH − 1 for q in the stable range: check the increments.
        let qs = &res.tau.qs;
        let tau = &res.tau.exponents;
        let i1 = qs.iter().position(|&q| q == 1.0).unwrap();
        let i3 = qs.iter().position(|&q| q == 3.0).unwrap();
        let slope = (tau[i3] - tau[i1]) / 2.0;
        assert!((slope - 0.6).abs() < 0.2, "slope {slope}");
    }

    #[test]
    fn tau_is_nondecreasing_and_concave_in_q() {
        let x = generate::fbm(4096, 0.5, 2).unwrap();
        let res = wtmm(&x, &WtmmConfig::default()).unwrap();
        let tau = &res.tau.exponents;
        for w in tau.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "tau must be nondecreasing");
        }
        // Concavity: second differences non-positive (within noise).
        let qs = &res.tau.qs;
        for i in 1..tau.len() - 1 {
            let d1 = (tau[i] - tau[i - 1]) / (qs[i] - qs[i - 1]);
            let d2 = (tau[i + 1] - tau[i]) / (qs[i + 1] - qs[i]);
            assert!(d2 <= d1 + 0.1, "strong convexity at q={}", qs[i]);
        }
    }

    #[test]
    fn maxima_counts_decrease_with_scale() {
        let x = generate::white_noise(4096, 3).unwrap();
        let res = wtmm(&x, &WtmmConfig::default()).unwrap();
        assert!(res.maxima_counts[0] > *res.maxima_counts.last().unwrap());
    }

    #[test]
    fn alpha_accessor() {
        let x = generate::fbm(2048, 0.5, 4).unwrap();
        let res = wtmm(&x, &WtmmConfig::default()).unwrap();
        assert!(res.alpha_at(2.0).is_some());
        assert!(res.alpha_at(99.0).is_none());
    }

    #[test]
    fn guards() {
        let x = generate::white_noise(64, 5).unwrap();
        assert!(wtmm(&x, &WtmmConfig::default()).is_err()); // too short
    }
}
