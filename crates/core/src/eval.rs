//! Scoring harness: runs predictors over simulated monitor logs and scores
//! alarms against ground-truth crash times.
//!
//! Semantics follow the failure-prediction literature: a log is split into
//! *segments* ending at each crash (the machine reboots between crashes);
//! each segment is scored independently with a fresh predictor.
//!
//! - **detected**: the predictor alarmed before the segment's crash;
//!   the **lead time** is crash time − alarm time.
//! - **missed**: the segment crashed with no prior alarm.
//! - **false alarm**: the predictor alarmed in a segment that never
//!   crashed.

use crate::baseline::{
    AgingPredictor, CusumPredictor, OlsPredictor, ResourceDirection, SenSlopePredictor,
    ThresholdPredictor, TrendPredictorConfig,
};
use crate::detector::{DetectorConfig, HolderDimensionDetector};
use aging_memsim::{Counter, SimReport};
use aging_par::Pool;
use aging_timeseries::{stats, Error, Result};

/// A buildable predictor description (so experiments can be declared as
/// data and rebuilt per segment).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum PredictorSpec {
    /// The paper's Hölder-dimension detector.
    HolderDimension(DetectorConfig),
    /// Mann–Kendall + Sen slope extrapolation.
    SenSlope(TrendPredictorConfig),
    /// OLS extrapolation.
    Ols(TrendPredictorConfig),
    /// Naive threshold.
    Threshold {
        /// Alarm level.
        level: f64,
        /// Exhaustion direction.
        direction: ResourceDirection,
    },
    /// CUSUM level-shift detection.
    Cusum {
        /// CUSUM configuration.
        config: aging_timeseries::changepoint::CusumConfig,
        /// Exhaustion direction.
        direction: ResourceDirection,
    },
}

impl PredictorSpec {
    /// Instantiates a fresh predictor.
    ///
    /// # Errors
    ///
    /// Propagates the constructor's validation failures.
    pub fn build(&self) -> Result<Box<dyn AgingPredictor>> {
        Ok(match self {
            PredictorSpec::HolderDimension(c) => Box::new(HolderDimensionDetector::new(c.clone())?),
            PredictorSpec::SenSlope(c) => Box::new(SenSlopePredictor::new(c.clone())?),
            PredictorSpec::Ols(c) => Box::new(OlsPredictor::new(c.clone())?),
            PredictorSpec::Threshold { level, direction } => {
                Box::new(ThresholdPredictor::new(*level, *direction)?)
            }
            PredictorSpec::Cusum { config, direction } => {
                Box::new(CusumPredictor::new(*config, *direction)?)
            }
        })
    }

    /// The built predictor's name.
    pub fn name(&self) -> &'static str {
        match self {
            PredictorSpec::HolderDimension(_) => "holder-dimension",
            PredictorSpec::SenSlope(_) => "mann-kendall-sen",
            PredictorSpec::Ols(_) => "ols-extrapolation",
            PredictorSpec::Threshold { .. } => "threshold",
            PredictorSpec::Cusum { .. } => "cusum",
        }
    }
}

/// Outcome of one predictor on one crash-delimited segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentOutcome {
    /// Scenario the segment came from.
    pub scenario: String,
    /// Segment index within the log.
    pub segment: usize,
    /// Segment duration in seconds.
    pub duration_secs: f64,
    /// Crash time (seconds, absolute in the log), if the segment crashed.
    pub crash_secs: Option<f64>,
    /// First alarm time (seconds, absolute), if the predictor fired.
    pub alarm_secs: Option<f64>,
    /// Lead time (crash − alarm), when both exist and the alarm preceded
    /// the crash.
    pub lead_secs: Option<f64>,
}

impl SegmentOutcome {
    /// Whether this segment's crash was predicted in time.
    pub fn detected(&self) -> bool {
        self.crash_secs.is_some() && self.lead_secs.is_some()
    }

    /// Whether this segment's crash was missed.
    pub fn missed(&self) -> bool {
        self.crash_secs.is_some() && self.lead_secs.is_none()
    }

    /// Whether the predictor alarmed on a crash-free segment.
    pub fn false_alarm(&self) -> bool {
        self.crash_secs.is_none() && self.alarm_secs.is_some()
    }
}

/// Runs `spec` over every crash-delimited segment of `report`'s `counter`
/// series.
///
/// # Errors
///
/// Returns [`Error::Empty`] when the report holds no samples and
/// propagates predictor failures.
pub fn evaluate(
    spec: &PredictorSpec,
    report: &SimReport,
    counter: Counter,
) -> Result<Vec<SegmentOutcome>> {
    let series = report.log.series(counter)?;
    let dt = series.dt();
    let values = series.values();

    // Segment boundaries: sample index just after each crash.
    let mut boundaries = Vec::new();
    let mut crash_times = Vec::new();
    for crash in report.log.crashes() {
        let t = crash.time.as_secs();
        // Sample index covering the crash instant.
        let idx = ((t / dt).ceil() as usize).min(values.len());
        boundaries.push(idx);
        crash_times.push(t);
    }
    boundaries.push(values.len());

    let mut outcomes = Vec::new();
    let mut start = 0usize;
    for (segment, &end) in boundaries.iter().enumerate() {
        if end <= start {
            start = end;
            continue;
        }
        let crash_secs = crash_times.get(segment).copied();
        let mut predictor = spec.build()?;
        let mut alarm_secs = None;
        for (i, &v) in values[start..end].iter().enumerate() {
            if predictor.push(v)? && alarm_secs.is_none() {
                alarm_secs = Some(series.time_at(start + i));
            }
        }
        let lead_secs = match (crash_secs, alarm_secs) {
            (Some(c), Some(a)) if a <= c => Some(c - a),
            _ => None,
        };
        outcomes.push(SegmentOutcome {
            scenario: report.scenario_name.clone(),
            segment,
            duration_secs: (end - start) as f64 * dt,
            crash_secs,
            alarm_secs,
            lead_secs,
        });
        start = end;
    }
    if outcomes.is_empty() {
        return Err(Error::Empty);
    }
    Ok(outcomes)
}

/// Aggregated comparison row for one predictor across many segments
/// (one line of the paper's comparison table).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Predictor name.
    pub predictor: String,
    /// Crash-terminated segments scored.
    pub crashes: usize,
    /// Crashes predicted with positive lead time.
    pub detected: usize,
    /// Crashes missed.
    pub missed: usize,
    /// Alarms raised on crash-free segments.
    pub false_alarms: usize,
    /// Crash-free segments scored.
    pub healthy_segments: usize,
    /// Mean lead time over detected crashes (seconds).
    pub mean_lead_secs: Option<f64>,
    /// Median lead time over detected crashes (seconds).
    pub median_lead_secs: Option<f64>,
}

impl ComparisonRow {
    /// Detection coverage in `[0, 1]` (detected / crashes).
    pub fn coverage(&self) -> f64 {
        if self.crashes == 0 {
            return 1.0;
        }
        self.detected as f64 / self.crashes as f64
    }
}

impl std::fmt::Display for ComparisonRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<20} crashes={:<3} detected={:<3} missed={:<3} false={:<3} mean_lead={} median_lead={}",
            self.predictor,
            self.crashes,
            self.detected,
            self.missed,
            self.false_alarms,
            self.mean_lead_secs
                .map_or("-".into(), |v| format!("{:.0}s", v)),
            self.median_lead_secs
                .map_or("-".into(), |v| format!("{:.0}s", v)),
        )
    }
}

/// Scores one predictor spec across a fleet of reports and aggregates.
///
/// # Errors
///
/// Propagates per-report evaluation failures.
pub fn compare(
    spec: &PredictorSpec,
    reports: &[SimReport],
    counter: Counter,
) -> Result<ComparisonRow> {
    compare_in(spec, reports, counter, Pool::global())
}

/// [`compare`] on an explicit pool: reports are evaluated in parallel and
/// their outcomes aggregated in fleet order, so the row is bit-identical
/// to the sequential run for any pool size.
///
/// # Errors
///
/// Same failure modes as [`compare`].
pub fn compare_in(
    spec: &PredictorSpec,
    reports: &[SimReport],
    counter: Counter,
    pool: &Pool,
) -> Result<ComparisonRow> {
    let per_report = pool.try_map(reports, |report| evaluate(spec, report, counter))?;
    let mut crashes = 0;
    let mut detected = 0;
    let mut missed = 0;
    let mut false_alarms = 0;
    let mut healthy = 0;
    let mut leads = Vec::new();
    for outcomes in per_report {
        for outcome in outcomes {
            if outcome.crash_secs.is_some() {
                crashes += 1;
                if outcome.detected() {
                    detected += 1;
                    leads.push(outcome.lead_secs.expect("detected implies lead"));
                } else {
                    missed += 1;
                }
            } else {
                healthy += 1;
                if outcome.false_alarm() {
                    false_alarms += 1;
                }
            }
        }
    }
    let (mean_lead_secs, median_lead_secs) = if leads.is_empty() {
        (None, None)
    } else {
        (Some(stats::mean(&leads)?), Some(stats::median(&leads)?))
    };
    Ok(ComparisonRow {
        predictor: spec.name().to_string(),
        crashes,
        detected,
        missed,
        false_alarms,
        healthy_segments: healthy,
        mean_lead_secs,
        median_lead_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_memsim::{simulate, simulate_with_reboots, Scenario};

    fn fast_detector() -> DetectorConfig {
        DetectorConfig {
            holder_radius: 16,
            holder_max_lag: 4,
            dimension_window: 64,
            dimension_stride: 8,
            baseline_windows: 4,
            ..DetectorConfig::default()
        }
    }

    fn tiny_trend(dt: f64) -> TrendPredictorConfig {
        TrendPredictorConfig {
            window: 60,
            refit_every: 4,
            alarm_horizon_secs: 900.0,
            exhaustion_level: 2.0 * 1024.0 * 1024.0,
            ..TrendPredictorConfig::depleting(dt)
        }
    }

    #[test]
    fn threshold_detects_simulated_crash() {
        let report = simulate(&Scenario::tiny_aging(1, 512.0), 4.0 * 3600.0).unwrap();
        assert!(report.first_crash().is_some());
        let spec = PredictorSpec::Threshold {
            level: 8.0 * 1024.0 * 1024.0,
            direction: ResourceDirection::Depleting,
        };
        let outcomes = evaluate(&spec, &report, Counter::AvailableBytes).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].detected(), "{:?}", outcomes[0]);
        assert!(outcomes[0].lead_secs.unwrap() > 0.0);
    }

    #[test]
    fn sen_slope_detects_simulated_crash() {
        let report = simulate(&Scenario::tiny_aging(2, 512.0), 4.0 * 3600.0).unwrap();
        let dt = report.log.sample_period();
        let spec = PredictorSpec::SenSlope(tiny_trend(dt));
        let outcomes = evaluate(&spec, &report, Counter::AvailableBytes).unwrap();
        assert!(outcomes[0].detected(), "{:?}", outcomes[0]);
    }

    #[test]
    fn healthy_run_scores_as_crash_free_segment() {
        let report = simulate(&Scenario::tiny_aging(3, 0.0), 1800.0).unwrap();
        let spec = PredictorSpec::Threshold {
            level: 1024.0,
            direction: ResourceDirection::Depleting,
        };
        let outcomes = evaluate(&spec, &report, Counter::AvailableBytes).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].crash_secs.is_none());
        assert!(!outcomes[0].false_alarm());
        assert!(!outcomes[0].detected());
    }

    #[test]
    fn reboot_log_produces_one_segment_per_crash() {
        let report = simulate_with_reboots(&Scenario::tiny_aging(4, 1024.0), 6.0 * 3600.0).unwrap();
        let crashes = report.log.crashes().len();
        assert!(crashes >= 2);
        let spec = PredictorSpec::Threshold {
            level: 8.0 * 1024.0 * 1024.0,
            direction: ResourceDirection::Depleting,
        };
        let outcomes = evaluate(&spec, &report, Counter::AvailableBytes).unwrap();
        let crash_segments = outcomes.iter().filter(|o| o.crash_secs.is_some()).count();
        assert_eq!(crash_segments, crashes);
        // Segments are ordered and labelled.
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.segment, i);
        }
    }

    #[test]
    fn compare_aggregates_across_fleet() {
        let reports: Vec<_> = (0..3)
            .map(|s| simulate(&Scenario::tiny_aging(s, 512.0), 4.0 * 3600.0).unwrap())
            .collect();
        let spec = PredictorSpec::Threshold {
            level: 8.0 * 1024.0 * 1024.0,
            direction: ResourceDirection::Depleting,
        };
        let row = compare(&spec, &reports, Counter::AvailableBytes).unwrap();
        assert_eq!(row.crashes, 3);
        assert_eq!(row.detected + row.missed, 3);
        assert!(row.coverage() > 0.5);
        assert!(row.mean_lead_secs.is_some());
        assert!(!row.to_string().is_empty());
    }

    #[test]
    fn holder_detector_spec_builds_and_runs() {
        let report = simulate(&Scenario::tiny_aging(5, 256.0), 2.0 * 3600.0).unwrap();
        let spec = PredictorSpec::HolderDimension(fast_detector());
        let outcomes = evaluate(&spec, &report, Counter::AvailableBytes).unwrap();
        assert!(!outcomes.is_empty());
    }

    #[test]
    fn spec_names() {
        assert_eq!(
            PredictorSpec::HolderDimension(DetectorConfig::default()).name(),
            "holder-dimension"
        );
        assert_eq!(
            PredictorSpec::Threshold {
                level: 0.0,
                direction: ResourceDirection::Depleting
            }
            .name(),
            "threshold"
        );
    }
}
