//! Least-squares and robust regression.
//!
//! Every scaling-law estimator in the workspace ultimately reduces to a
//! straight-line fit (often in log–log coordinates), so the fit result also
//! carries goodness-of-fit diagnostics that the estimators surface to their
//! callers.

use crate::error::{Error, Result};

/// The result of a straight-line fit `y ≈ intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Estimated slope.
    pub slope: f64,
    /// Estimated intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 when the fit is perfect;
    /// defined as 1 for a perfectly constant response).
    pub r_squared: f64,
    /// Standard error of the slope estimate (0 when `n == 2`).
    pub slope_std_error: f64,
    /// Number of points used.
    pub n: usize,
}

impl LineFit {
    /// Predicted response at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// The `x` at which the fitted line reaches `y`, or `None` when the
    /// slope is (numerically) zero.
    pub fn solve_for(&self, y: f64) -> Option<f64> {
        if self.slope.abs() <= f64::EPSILON {
            None
        } else {
            Some((y - self.intercept) / self.slope)
        }
    }
}

/// Ordinary least-squares fit of `y` against `x`.
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] for unequal inputs,
/// [`Error::TooShort`] for fewer than two points, [`Error::NonFinite`] for
/// NaN/infinite input, and [`Error::Numerical`] when all `x` coincide.
///
/// # Examples
///
/// ```
/// use aging_timeseries::regression::ols;
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let fit = ols(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0])?;
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn ols(x: &[f64], y: &[f64]) -> Result<LineFit> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    Error::require_len(x, 2)?;
    Error::require_finite(x)?;
    Error::require_finite(y)?;

    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|&v| (v - mx) * (v - mx)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(&a, &b)| (a - mx) * (b - my)).sum();
    let syy: f64 = y.iter().map(|&v| (v - my) * (v - my)).sum();

    if sxx <= f64::EPSILON * n {
        return Err(Error::Numerical("degenerate x in linear fit".into()));
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;

    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(&a, &b)| {
            let r = b - (intercept + slope * a);
            r * r
        })
        .sum();
    let r_squared = if syy <= f64::EPSILON {
        1.0
    } else {
        (1.0 - ss_res / syy).clamp(0.0, 1.0)
    };
    let slope_std_error = if x.len() > 2 {
        (ss_res / (n - 2.0) / sxx).sqrt()
    } else {
        0.0
    };
    Ok(LineFit {
        slope,
        intercept,
        r_squared,
        slope_std_error,
        n: x.len(),
    })
}

/// OLS in log–log coordinates: fits `ln y ≈ intercept + slope * ln x`.
///
/// Pairs where `x <= 0` or `y <= 0` are rejected (scaling laws are defined
/// on positive quantities).
///
/// # Errors
///
/// Same failure modes as [`ols`], plus [`Error::InvalidParameter`] when any
/// input is non-positive.
pub fn log_log_fit(x: &[f64], y: &[f64]) -> Result<LineFit> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if let Some(i) = x.iter().position(|&v| v <= 0.0) {
        return Err(Error::invalid(
            "x",
            format!("log-log fit requires positive x, got {} at {i}", x[i]),
        ));
    }
    if let Some(i) = y.iter().position(|&v| v <= 0.0) {
        return Err(Error::invalid(
            "y",
            format!("log-log fit requires positive y, got {} at {i}", y[i]),
        ));
    }
    // Small fits — every rolling-window estimator lands here — stay on
    // the stack: this sits on the streaming detectors' emission path,
    // which must not allocate.
    if x.len() <= 64 {
        let mut lx = [0.0f64; 64];
        let mut ly = [0.0f64; 64];
        for (i, (&a, &b)) in x.iter().zip(y).enumerate() {
            lx[i] = a.ln();
            ly[i] = b.ln();
        }
        return ols(&lx[..x.len()], &ly[..x.len()]);
    }
    let lx: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|v| v.ln()).collect();
    ols(&lx, &ly)
}

/// Fits a polynomial of degree `degree` by least squares, returning the
/// coefficients `c[0] + c[1] x + … + c[degree] x^degree`.
///
/// Solves the normal equations by Gaussian elimination with partial
/// pivoting; intended for the small degrees (≤ 4) used in detrending.
///
/// # Errors
///
/// Returns [`Error::TooShort`] when `n < degree + 1`,
/// [`Error::InvalidParameter`] for `degree > 8`, and [`Error::Numerical`]
/// when the normal equations are singular.
pub fn polyfit(x: &[f64], y: &[f64], degree: usize) -> Result<Vec<f64>> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if degree > 8 {
        return Err(Error::invalid("degree", "polyfit supports degree <= 8"));
    }
    Error::require_len(x, degree + 1)?;
    Error::require_finite(x)?;
    Error::require_finite(y)?;

    let m = degree + 1;
    // Normal equations A c = b where A[i][j] = Σ x^(i+j), b[i] = Σ y x^i.
    let mut pow_sums = vec![0.0; 2 * m - 1];
    for &xv in x {
        let mut p = 1.0;
        for s in pow_sums.iter_mut() {
            *s += p;
            p *= xv;
        }
    }
    let mut a = vec![vec![0.0; m]; m];
    for (i, row) in a.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = pow_sums[i + j];
        }
    }
    let mut b = vec![0.0; m];
    for (&xv, &yv) in x.iter().zip(y) {
        let mut p = 1.0;
        for bi in b.iter_mut() {
            *bi += yv * p;
            p *= xv;
        }
    }
    solve_linear(&mut a, &mut b)?;
    Ok(b)
}

/// Evaluates a polynomial with coefficients in ascending-power order.
pub fn polyval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Gaussian elimination with partial pivoting; `b` is overwritten with the
/// solution.
fn solve_linear(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<()> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(Error::Numerical("singular normal equations".into()));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate.
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back-substitute.
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * b[k];
        }
        b[col] = acc / a[col][col];
    }
    Ok(())
}

/// Maximum number of pairwise slopes evaluated exactly by
/// [`theil_sen`]; longer inputs use a strided subsample of pairs.
pub const THEIL_SEN_EXACT_LIMIT: usize = 1500;

/// Theil–Sen robust slope estimator: the median of pairwise slopes, with the
/// intercept chosen as `median(y) - slope * median(x)`.
///
/// For `n` beyond [`THEIL_SEN_EXACT_LIMIT`] the full `O(n²)` pair set is
/// replaced by a deterministic strided subsample to bound cost.
///
/// # Errors
///
/// Same failure modes as [`ols`].
pub fn theil_sen(x: &[f64], y: &[f64]) -> Result<LineFit> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    Error::require_len(x, 2)?;
    Error::require_finite(x)?;
    Error::require_finite(y)?;

    let n = x.len();
    let stride = if n > THEIL_SEN_EXACT_LIMIT {
        n / THEIL_SEN_EXACT_LIMIT + 1
    } else {
        1
    };
    let mut slopes = Vec::new();
    let mut i = 0;
    while i < n {
        let mut j = i + stride;
        while j < n {
            let dx = x[j] - x[i];
            if dx.abs() > f64::EPSILON {
                slopes.push((y[j] - y[i]) / dx);
            }
            j += stride;
        }
        i += stride;
    }
    if slopes.is_empty() {
        return Err(Error::Numerical("degenerate x in Theil-Sen".into()));
    }
    let slope = crate::stats::median(&slopes)?;
    let intercept = crate::stats::median(y)? - slope * crate::stats::median(x)?;

    // Diagnostics relative to the robust line.
    let my = y.iter().sum::<f64>() / n as f64;
    let syy: f64 = y.iter().map(|&v| (v - my) * (v - my)).sum();
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(&a, &b)| {
            let r = b - (intercept + slope * a);
            r * r
        })
        .sum();
    let r_squared = if syy <= f64::EPSILON {
        1.0
    } else {
        (1.0 - ss_res / syy).clamp(0.0, 1.0)
    };
    Ok(LineFit {
        slope,
        intercept,
        r_squared,
        slope_std_error: 0.0,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ols_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 2.0).collect();
        let fit = ols(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.slope_std_error < 1e-10);
    }

    #[test]
    fn ols_noisy_line_diagnostics() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * v + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = ols(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.01);
        assert!(fit.r_squared > 0.99);
        assert!(fit.slope_std_error > 0.0);
    }

    #[test]
    fn ols_rejects_degenerate() {
        assert!(ols(&[1.0, 1.0], &[0.0, 5.0]).is_err());
        assert!(ols(&[1.0], &[2.0]).is_err());
        assert!(ols(&[1.0, 2.0], &[0.0]).is_err());
        assert!(ols(&[1.0, f64::NAN], &[0.0, 1.0]).is_err());
    }

    #[test]
    fn predict_and_solve() {
        let fit = ols(&[0.0, 1.0], &[1.0, 3.0]).unwrap();
        assert!((fit.predict(2.0) - 5.0).abs() < 1e-12);
        assert!((fit.solve_for(5.0).unwrap() - 2.0).abs() < 1e-12);
        let flat = LineFit {
            slope: 0.0,
            intercept: 1.0,
            r_squared: 1.0,
            slope_std_error: 0.0,
            n: 2,
        };
        assert_eq!(flat.solve_for(2.0), None);
    }

    #[test]
    fn log_log_recovers_power_law() {
        let x = [1.0, 2.0, 4.0, 8.0, 16.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| 3.0 * v.powf(0.7)).collect();
        let fit = log_log_fit(&x, &y).unwrap();
        assert!((fit.slope - 0.7).abs() < 1e-10);
        assert!((fit.intercept - 3.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn log_log_rejects_nonpositive() {
        assert!(log_log_fit(&[1.0, -1.0], &[1.0, 1.0]).is_err());
        assert!(log_log_fit(&[1.0, 2.0], &[0.0, 1.0]).is_err());
    }

    #[test]
    fn polyfit_quadratic() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 1.0 - 2.0 * v + 0.5 * v * v).collect();
        let c = polyfit(&x, &y, 2).unwrap();
        assert!((c[0] - 1.0).abs() < 1e-8);
        assert!((c[1] + 2.0).abs() < 1e-8);
        assert!((c[2] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn polyfit_degree_zero_is_mean() {
        let c = polyfit(&[0.0, 1.0, 2.0], &[3.0, 5.0, 7.0], 0).unwrap();
        assert!((c[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn polyfit_guards() {
        assert!(polyfit(&[0.0, 1.0], &[1.0, 2.0], 9).is_err());
        assert!(polyfit(&[0.0], &[1.0], 1).is_err());
        // Duplicate x values make a degree-2 system singular.
        assert!(polyfit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0], 2).is_err());
    }

    #[test]
    fn polyval_ascending_order() {
        // 2 + 3x + x^2 at x = 2 → 2 + 6 + 4 = 12.
        assert_eq!(polyval(&[2.0, 3.0, 1.0], 2.0), 12.0);
        assert_eq!(polyval(&[], 3.0), 0.0);
    }

    #[test]
    fn theil_sen_ignores_outliers() {
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut y: Vec<f64> = x.iter().map(|v| 1.5 * v + 2.0).collect();
        // Corrupt 20 % of points badly.
        y[3] += 500.0;
        y[11] -= 800.0;
        y[20] += 300.0;
        let robust = theil_sen(&x, &y).unwrap();
        assert!((robust.slope - 1.5).abs() < 0.05, "slope {}", robust.slope);
        let lsq = ols(&x, &y).unwrap();
        assert!((lsq.slope - 1.5).abs() > (robust.slope - 1.5).abs());
    }

    #[test]
    fn theil_sen_subsamples_long_input() {
        let n = 4000;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -0.25 * v + 10.0).collect();
        let fit = theil_sen(&x, &y).unwrap();
        assert!((fit.slope + 0.25).abs() < 1e-9);
    }

    #[test]
    fn theil_sen_degenerate_x() {
        assert!(theil_sen(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_err());
    }
}
