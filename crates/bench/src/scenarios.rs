//! Shared experiment scenario builders (the simulated counterpart of the
//! paper's two instrumented testbed machines and their stress campaigns).

use aging_memsim::{FaultPlan, LeakMode, LeakSpec, MachineConfig, Scenario, WorkloadConfig};

/// "Machine A": the NT4-class workstation under the web-server stress mix
/// with the canonical aging plan (linear leak + fragmentation + handle
/// leak).
pub fn machine_a(seed: u64) -> Scenario {
    Scenario {
        name: format!("machine-a-nt4-{seed}"),
        machine: MachineConfig::workstation_nt4(),
        workload: WorkloadConfig::web_server(),
        faults: FaultPlan::aging(24.0),
        seed,
    }
}

/// "Machine B": the W2K-class server under a heavier mix with a faster
/// leak.
pub fn machine_b(seed: u64) -> Scenario {
    let mut workload = WorkloadConfig::web_server();
    workload.base_rate = 35.0;
    Scenario {
        name: format!("machine-b-w2k-{seed}"),
        machine: MachineConfig::server_w2k(),
        workload,
        faults: FaultPlan::aging(48.0),
        seed,
    }
}

/// A healthy NT4 control machine (no aging faults).
pub fn healthy_control(seed: u64) -> Scenario {
    let mut s = Scenario::healthy_web_server(seed);
    s.name = format!("healthy-nt4-{seed}");
    s
}

/// A leak shape: name plus a builder from the long-run leak rate.
type LeakShape = (&'static str, fn(f64) -> FaultPlan);

/// The E4 aging fleet: NT4 machines with diverse leak shapes — linear,
/// step (periodic lump), bursty (error-path) and late-onset — so the
/// comparison covers aging dynamics where plain trend extrapolation is
/// both easy and hard.
pub fn aging_fleet(count: usize) -> Vec<Scenario> {
    let shapes: [LeakShape; 4] = [
        ("linear", |rate| FaultPlan::aging(rate)),
        ("step", |rate| FaultPlan {
            leaks: vec![LeakSpec {
                bytes_per_hour: rate * 1024.0 * 1024.0,
                mode: LeakMode::Step {
                    period_secs: 2.0 * 3600.0,
                },
                start_secs: 0.0,
            }],
            ..FaultPlan::aging(0.0)
        }),
        ("bursty", |rate| FaultPlan {
            leaks: vec![LeakSpec {
                bytes_per_hour: rate * 1024.0 * 1024.0,
                mode: LeakMode::Bursty { p: 0.002 },
                start_secs: 0.0,
            }],
            ..FaultPlan::aging(0.0)
        }),
        ("late-onset", |rate| FaultPlan {
            leaks: vec![LeakSpec {
                // Doubled rate, but starting only after 10 h of uptime.
                bytes_per_hour: 2.0 * rate * 1024.0 * 1024.0,
                mode: LeakMode::Linear,
                start_secs: 10.0 * 3600.0,
            }],
            ..FaultPlan::aging(0.0)
        }),
    ];
    (0..count)
        .map(|i| {
            let (shape_name, build) = shapes[i % shapes.len()];
            let rate = 20.0 + 6.0 * (i / shapes.len()) as f64;
            Scenario {
                name: format!("aging-{shape_name}-{i}"),
                machine: MachineConfig::workstation_nt4(),
                workload: WorkloadConfig::web_server(),
                faults: build(rate),
                seed: 1000 + i as u64,
            }
        })
        .collect()
}

/// A calm workload for the E17 spectrum experiment: no burst
/// modulation, near-homogeneous allocation sizes and no heavy-tailed
/// lifetime class, so the committed-bytes texture is close to
/// monofractal and the rolling f(α) width Δα(t) starts narrow. Against
/// this baseline, aging-injected heterogeneity is visible instead of
/// being drowned by the web-server mix's own multifractality.
fn calm_workload() -> WorkloadConfig {
    WorkloadConfig {
        burst_sigma: 0.0,
        alloc_sigma_log: 0.3,
        lifetime_mix: (0.9, 0.1, 0.0),
        long_alpha: 2.5,
        batch_bytes: aging_memsim::Bytes::ZERO,
        ..WorkloadConfig::web_server()
    }
}

/// The E17 aging machine: the calm NT4 workstation accumulating
/// *escalating* error-path leaks — three bursty leaks (rare, large
/// allocations) switching on at 6 h, 10 h and 14 h of uptime — so the
/// committed-bytes increments become an increasingly heterogeneous
/// small/large mixture as the machine ages: exactly the multifractal
/// widening the paper associates with aging, and eventually a commit
/// exhaustion crash.
pub fn spectrum_aging(seed: u64) -> Scenario {
    let mib = 1024.0 * 1024.0;
    let burst_at = |hours: f64| LeakSpec {
        bytes_per_hour: 12.0 * mib,
        mode: LeakMode::Bursty { p: 0.01 },
        start_secs: hours * 3600.0,
    };
    let mut machine = MachineConfig::workstation_nt4();
    machine.sample_period_secs = 10.0;
    Scenario {
        name: format!("spectrum-aging-{seed}"),
        machine,
        workload: calm_workload(),
        faults: FaultPlan {
            leaks: vec![burst_at(6.0), burst_at(10.0), burst_at(14.0)],
            ..FaultPlan::aging(0.0)
        },
        seed,
    }
}

/// The E17 healthy control: the same calm machine with no faults.
pub fn spectrum_healthy(seed: u64) -> Scenario {
    let mut machine = MachineConfig::workstation_nt4();
    machine.sample_period_secs = 10.0;
    Scenario {
        name: format!("spectrum-healthy-{seed}"),
        machine,
        workload: calm_workload(),
        faults: FaultPlan::healthy(),
        seed,
    }
}

/// The E4 healthy fleet.
pub fn healthy_fleet(count: usize) -> Vec<Scenario> {
    (0..count)
        .map(|i| healthy_control(2000 + i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_are_valid() {
        machine_a(1).machine.validate().unwrap();
        machine_b(1).machine.validate().unwrap();
        for s in [spectrum_aging(1), spectrum_healthy(1)] {
            s.machine.validate().unwrap();
            s.workload.validate().unwrap();
            s.faults.validate().unwrap();
        }
        for s in aging_fleet(8) {
            s.machine.validate().unwrap();
            s.workload.validate().unwrap();
            s.faults.validate().unwrap();
        }
        for s in healthy_fleet(3) {
            s.faults.validate().unwrap();
        }
    }

    #[test]
    fn fleet_names_are_unique() {
        let fleet = aging_fleet(12);
        let names: std::collections::BTreeSet<_> = fleet.iter().map(|s| &s.name).collect();
        assert_eq!(names.len(), 12);
        // All four shapes appear.
        assert!(fleet.iter().any(|s| s.name.contains("linear")));
        assert!(fleet.iter().any(|s| s.name.contains("step")));
        assert!(fleet.iter().any(|s| s.name.contains("bursty")));
        assert!(fleet.iter().any(|s| s.name.contains("late-onset")));
    }

    #[test]
    fn fleet_seeds_are_distinct() {
        let fleet = aging_fleet(6);
        let seeds: std::collections::BTreeSet<_> = fleet.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), 6);
    }
}
