//! Regenerates the paper's (reconstructed) tables and figures.
//!
//! Usage:
//!   repro [e1 e2 … | all] [--quick] [--no-csv] [--trajectory | --no-trajectory]
//!
//! CSV outputs land in ./bench_results/. Trajectory appends to the
//! committed `BENCH_<id>.json` perf histories are on by default for full
//! runs and **off for `--quick`** (quick probe entries are not comparable
//! to full-horizon runs); `--trajectory` forces the append on, and
//! `--no-trajectory` forces it off.

use aging_bench::experiments::{run_experiment_with, ALL_EXPERIMENTS};
use aging_bench::util::results_dir;

/// Resolves whether to append trajectory entries: explicit flags win,
/// otherwise quick runs skip the append so they cannot pollute the
/// committed full-horizon histories.
fn trajectory_enabled(quick: bool, trajectory_flag: bool, no_trajectory_flag: bool) -> bool {
    if no_trajectory_flag {
        false
    } else if trajectory_flag {
        true
    } else {
        !quick
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_csv = args.iter().any(|a| a == "--no-csv");
    let trajectory_flag = args.iter().any(|a| a == "--trajectory");
    let no_trajectory_flag = args.iter().any(|a| a == "--no-trajectory");
    let trajectory = trajectory_enabled(quick, trajectory_flag, no_trajectory_flag);
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_ascii_lowercase())
        .collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    let dir = results_dir();
    let out = if no_csv { None } else { Some(dir.as_path()) };
    println!(
        "holder-aging experiment reproduction ({} mode, CSV: {})",
        if quick { "quick" } else { "full" },
        if no_csv {
            "off".to_string()
        } else {
            dir.display().to_string()
        },
    );

    let started = std::time::Instant::now();
    let mut failures = 0;
    for id in &ids {
        if let Err(e) = run_experiment_with(id, quick, out, trajectory) {
            eprintln!("experiment {id} failed: {e}");
            failures += 1;
        }
    }
    println!(
        "\ncompleted {} experiment(s) in {:.1}s ({failures} failure(s))",
        ids.len(),
        started.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::trajectory_enabled;

    #[test]
    fn quick_implies_no_trajectory_unless_forced() {
        // Full runs append by default; quick runs don't.
        assert!(trajectory_enabled(false, false, false));
        assert!(!trajectory_enabled(true, false, false));
        // --trajectory forces the append back on for quick probes.
        assert!(trajectory_enabled(true, true, false));
        // --no-trajectory always wins.
        assert!(!trajectory_enabled(false, false, true));
        assert!(!trajectory_enabled(true, true, true));
    }
}
