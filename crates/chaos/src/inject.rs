//! The per-stream injection engine: turns a [`ChaosPlan`] into a
//! deterministic sample-by-sample perturbation.
//!
//! One [`ChaosEngine`] owns one stream's generator and injector state.
//! Its seed mixes the plan seed with a caller-chosen stream key, so every
//! stream in a fleet draws an independent — but individually reproducible
//! — fault sequence, no matter how streams are scheduled across threads.

use std::collections::VecDeque;

use aging_stream::StreamSample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::plan::{ChaosPlan, InjectorSpec, REPLAY_BUFFER};

/// What the engine did, per defect class. `offered` is raw samples in,
/// `emitted` is perturbed samples out; the identity
/// `emitted == offered - stalled + duplicated + replayed` always holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionCounters {
    /// Raw samples fed in.
    pub offered: u64,
    /// Samples pushed out (primaries + duplicates + replays).
    pub emitted: u64,
    /// Values overwritten with NaN/±Inf.
    pub non_finite: u64,
    /// Extra duplicate deliveries emitted.
    pub duplicated: u64,
    /// Stale replays emitted.
    pub replayed: u64,
    /// Samples whose clock carried a step offset.
    pub clock_stepped: u64,
    /// Samples whose clock was skewed.
    pub clock_skewed: u64,
    /// Values spiked.
    pub spiked: u64,
    /// Values wrapped by a modulus.
    pub wrapped: u64,
    /// Samples swallowed by a stall.
    pub stalled: u64,
}

impl InjectionCounters {
    /// Component-wise accumulation (for fleet-level totals).
    pub fn merge(&mut self, other: &InjectionCounters) {
        self.offered += other.offered;
        self.emitted += other.emitted;
        self.non_finite += other.non_finite;
        self.duplicated += other.duplicated;
        self.replayed += other.replayed;
        self.clock_stepped += other.clock_stepped;
        self.clock_skewed += other.clock_skewed;
        self.spiked += other.spiked;
        self.wrapped += other.wrapped;
        self.stalled += other.stalled;
    }

    /// Total samples corrupted, delayed or dropped in some way.
    pub fn injected(&self) -> u64 {
        self.non_finite
            + self.duplicated
            + self.replayed
            + self.clock_stepped
            + self.clock_skewed
            + self.spiked
            + self.wrapped
            + self.stalled
    }
}

/// Mutable per-injector state (burst/stall run lengths).
#[derive(Debug, Clone, Copy, Default)]
struct SpecState {
    /// Remaining samples in an active burst or stall run.
    remaining: u32,
}

/// Applies one plan to one stream of samples, deterministically.
#[derive(Debug, Clone)]
pub struct ChaosEngine {
    specs: Vec<InjectorSpec>,
    state: Vec<SpecState>,
    rng: StdRng,
    counters: InjectionCounters,
    /// Recent primary emissions, newest last (replay material).
    recent: VecDeque<StreamSample>,
}

impl ChaosEngine {
    /// Builds the engine for one stream.
    ///
    /// `stream_key` distinguishes streams sharing a plan (e.g.
    /// `(machine_index << 8) | counter_index` in a fleet); the generator
    /// seed is a mix of the plan seed and the key.
    pub fn new(plan: &ChaosPlan, stream_key: u64) -> Self {
        let seed = plan
            .seed
            .wrapping_add(stream_key.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        ChaosEngine {
            specs: plan.injectors.clone(),
            state: vec![SpecState::default(); plan.injectors.len()],
            rng: StdRng::seed_from_u64(seed),
            counters: InjectionCounters::default(),
            recent: VecDeque::with_capacity(REPLAY_BUFFER),
        }
    }

    /// What the engine has done so far.
    pub fn counters(&self) -> &InjectionCounters {
        &self.counters
    }

    /// Draws one non-finite stand-in value.
    fn non_finite_value(rng: &mut StdRng) -> f64 {
        match rng.gen_range(0u32..3) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        }
    }

    fn emit(&mut self, s: StreamSample, out: &mut Vec<StreamSample>) {
        self.counters.emitted += 1;
        out.push(s);
    }

    /// Feeds one raw sample through every injector, pushing the resulting
    /// zero or more perturbed samples into `out` (which is *not* cleared).
    ///
    /// Activation windows are evaluated against the raw sample clock, so
    /// injected clock defects never shift other injectors. Injectors run
    /// in plan order; value and clock corruptions compose onto the same
    /// primary sample, stalls swallow it, duplicates and replays append
    /// extra deliveries after it.
    pub fn feed(&mut self, raw: StreamSample, out: &mut Vec<StreamSample>) {
        self.counters.offered += 1;
        let raw_t = raw.time_secs;
        let mut s = raw;
        let mut stalled = false;
        let mut extra_copies = 0u32;
        let mut replay_age: Option<usize> = None;

        for (i, spec) in self.specs.iter().enumerate() {
            match *spec {
                InjectorSpec::ClockStep {
                    at_secs,
                    offset_secs,
                } => {
                    if raw_t >= at_secs {
                        s.time_secs += offset_secs;
                        self.counters.clock_stepped += 1;
                    }
                }
                InjectorSpec::ClockSkew { factor, ref window } => {
                    if window.contains(raw_t) {
                        s.time_secs =
                            window.onset_secs + (s.time_secs - window.onset_secs) * factor;
                        self.counters.clock_skewed += 1;
                    }
                }
                InjectorSpec::CounterWrap {
                    modulus,
                    ref window,
                } => {
                    if window.contains(raw_t) && s.value.is_finite() {
                        let wrapped = s.value.rem_euclid(modulus);
                        if wrapped != s.value {
                            s.value = wrapped;
                            self.counters.wrapped += 1;
                        }
                    }
                }
                InjectorSpec::Spike {
                    rate,
                    magnitude,
                    ref window,
                } => {
                    if window.contains(raw_t) && self.rng.gen_bool(rate) {
                        if self.rng.gen_bool(0.5) {
                            s.value *= magnitude;
                        } else {
                            s.value /= magnitude;
                        }
                        self.counters.spiked += 1;
                    }
                }
                InjectorSpec::NonFiniteBurst {
                    rate,
                    max_len,
                    ref window,
                } => {
                    if self.state[i].remaining > 0 {
                        self.state[i].remaining -= 1;
                        s.value = Self::non_finite_value(&mut self.rng);
                        self.counters.non_finite += 1;
                    } else if window.contains(raw_t) && self.rng.gen_bool(rate) {
                        // This sample starts the burst; the rest follow.
                        self.state[i].remaining = self.rng.gen_range(1..=max_len) - 1;
                        s.value = Self::non_finite_value(&mut self.rng);
                        self.counters.non_finite += 1;
                    }
                }
                InjectorSpec::Stall {
                    rate,
                    max_len,
                    ref window,
                } => {
                    if self.state[i].remaining > 0 {
                        self.state[i].remaining -= 1;
                        stalled = true;
                        self.counters.stalled += 1;
                    } else if window.contains(raw_t) && self.rng.gen_bool(rate) {
                        self.state[i].remaining = self.rng.gen_range(1..=max_len) - 1;
                        stalled = true;
                        self.counters.stalled += 1;
                    }
                }
                InjectorSpec::Duplicate {
                    rate,
                    max_copies,
                    ref window,
                } => {
                    if window.contains(raw_t) && self.rng.gen_bool(rate) {
                        extra_copies += self.rng.gen_range(1..=max_copies);
                    }
                }
                InjectorSpec::Replay {
                    rate,
                    max_age,
                    ref window,
                } => {
                    if window.contains(raw_t) && self.rng.gen_bool(rate) {
                        replay_age = Some(self.rng.gen_range(1..=max_age) as usize);
                    }
                }
            }
        }

        if stalled {
            // The reading never arrives — nothing downstream, and it is
            // not replay material either.
            return;
        }

        self.emit(s, out);
        if self.recent.len() == REPLAY_BUFFER {
            self.recent.pop_front();
        }
        self.recent.push_back(s);

        for _ in 0..extra_copies {
            self.counters.duplicated += 1;
            self.emit(s, out);
        }
        if let Some(age) = replay_age {
            // `recent` ends with the sample just emitted (age 0).
            if self.recent.len() > age {
                let stale = self.recent[self.recent.len() - 1 - age];
                self.counters.replayed += 1;
                self.emit(stale, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(n: usize, dt: f64) -> Vec<StreamSample> {
        (0..n)
            .map(|i| StreamSample {
                time_secs: i as f64 * dt,
                value: 1e6 - i as f64,
            })
            .collect()
    }

    fn run(plan: &ChaosPlan, key: u64, input: &[StreamSample]) -> (Vec<StreamSample>, ChaosEngine) {
        let mut engine = ChaosEngine::new(plan, key);
        let mut out = Vec::new();
        for &s in input {
            engine.feed(s, &mut out);
        }
        (out, engine)
    }

    /// Bit-pattern view, so injected NaNs compare equal to themselves.
    fn bits(samples: &[StreamSample]) -> Vec<(u64, u64)> {
        samples
            .iter()
            .map(|s| (s.time_secs.to_bits(), s.value.to_bits()))
            .collect()
    }

    #[test]
    fn empty_plan_is_identity() {
        let input = samples(100, 5.0);
        let (out, engine) = run(&ChaosPlan::new(1), 0, &input);
        assert_eq!(out, input);
        let c = engine.counters();
        assert_eq!(c.offered, 100);
        assert_eq!(c.emitted, 100);
        assert_eq!(c.injected(), 0);
    }

    #[test]
    fn same_seed_and_key_is_bit_identical() {
        let input = samples(2000, 5.0);
        let plan = ChaosPlan::nasty(42);
        let (a, ea) = run(&plan, 7, &input);
        let (b, eb) = run(&plan, 7, &input);
        assert_eq!(bits(&a), bits(&b));
        assert_eq!(ea.counters(), eb.counters());
        // A different stream key draws a different fault sequence.
        let (c, _) = run(&plan, 8, &input);
        assert_ne!(bits(&a), bits(&c));
    }

    #[test]
    fn counters_reconcile_with_emissions() {
        let input = samples(5000, 5.0);
        let (out, engine) = run(&ChaosPlan::nasty(3), 1, &input);
        let c = engine.counters();
        assert_eq!(c.offered, 5000);
        assert_eq!(c.emitted as usize, out.len());
        assert_eq!(c.emitted, c.offered - c.stalled + c.duplicated + c.replayed);
        assert!(c.non_finite > 0 && c.stalled > 0 && c.duplicated > 0 && c.replayed > 0);
    }

    #[test]
    fn nan_bursts_are_bounded_runs() {
        let plan = ChaosPlan::new(11).with(InjectorSpec::nan_bursts(0.05, 4));
        let (out, engine) = run(&plan, 0, &samples(4000, 5.0));
        assert_eq!(out.len(), 4000);
        let c = engine.counters();
        assert!(c.non_finite > 0);
        // Every corruption is accounted for (adjacent bursts may chain,
        // so run lengths are not bounded by max_len — but counts are
        // exact).
        assert_eq!(
            c.non_finite as usize,
            out.iter().filter(|s| !s.value.is_finite()).count()
        );
        // Timestamps still advance: corruption hits values, not clocks.
        assert!(out.windows(2).all(|w| w[1].time_secs > w[0].time_secs));
    }

    #[test]
    fn duplicates_and_replays_reuse_real_samples() {
        let plan = ChaosPlan::new(5)
            .with(InjectorSpec::duplicates(0.1, 2))
            .with(InjectorSpec::replays(0.1, 8));
        let input = samples(2000, 5.0);
        let (out, engine) = run(&plan, 0, &input);
        let c = engine.counters();
        assert!(c.duplicated > 0 && c.replayed > 0);
        assert_eq!(out.len(), 2000 + (c.duplicated + c.replayed) as usize);
        // Every emitted sample is some true input sample, unmodified.
        for s in &out {
            assert!(input.contains(s));
        }
    }

    #[test]
    fn negative_clock_step_regresses_timestamps() {
        let plan = ChaosPlan::new(9).with(InjectorSpec::clock_step(500.0, -100.0));
        let (out, engine) = run(&plan, 0, &samples(200, 5.0));
        // Before the step: untouched. After: shifted back 100 s.
        assert_eq!(out[99].time_secs, 495.0);
        assert_eq!(out[100].time_secs, 400.0);
        assert_eq!(out[199].time_secs, 895.0);
        assert_eq!(engine.counters().clock_stepped, 100);
    }

    #[test]
    fn clock_skew_dilates_from_onset() {
        let plan = ChaosPlan::new(9).with(InjectorSpec::clock_skew(2.0).with_window(100.0, 200.0));
        let (out, _) = run(&plan, 0, &samples(100, 5.0));
        assert_eq!(out[19].time_secs, 95.0); // before onset
        assert_eq!(out[20].time_secs, 100.0); // onset is the fixed point
        assert_eq!(out[30].time_secs, 200.0); // 100 + (150-100)*2
        assert_eq!(out[70].time_secs, 350.0); // window over at raw t=300
    }

    #[test]
    fn counter_wrap_folds_large_values() {
        let plan = ChaosPlan::new(2).with(InjectorSpec::counter_wrap(1000.0));
        let input = vec![
            StreamSample {
                time_secs: 0.0,
                value: 999.0,
            },
            StreamSample {
                time_secs: 5.0,
                value: 1001.0,
            },
        ];
        let (out, engine) = run(&plan, 0, &input);
        assert_eq!(out[0].value, 999.0);
        assert_eq!(out[1].value, 1.0);
        assert_eq!(engine.counters().wrapped, 1);
    }

    #[test]
    fn windows_confine_injection() {
        let plan =
            ChaosPlan::new(77).with(InjectorSpec::nan_bursts(0.5, 1).with_window(1000.0, 500.0));
        let (out, _) = run(&plan, 0, &samples(1000, 5.0));
        for s in &out {
            let armed = (1000.0..1500.0).contains(&s.time_secs);
            assert!(s.value.is_finite() || armed, "NaN at t={}", s.time_secs);
        }
        assert!(out.iter().any(|s| !s.value.is_finite()));
    }

    #[test]
    fn stalls_drop_bounded_runs() {
        let plan = ChaosPlan::new(4).with(InjectorSpec::stalls(0.05, 3));
        let (out, engine) = run(&plan, 0, &samples(3000, 5.0));
        let c = engine.counters();
        assert!(c.stalled > 0);
        assert_eq!(out.len(), 3000 - c.stalled as usize);
        // Survivors keep their order and true timestamps.
        assert!(out.windows(2).all(|w| w[1].time_secs > w[0].time_secs));
    }
}
