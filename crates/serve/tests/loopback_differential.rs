//! The E14 hard gate, test-sized: the alarm history produced by feeding
//! a fleet over loopback TCP must be **byte-identical** (under the
//! canonical event codec) to an offline
//! [`FleetSupervisor`](aging_stream::supervisor::FleetSupervisor) run of
//! the same scenarios — at every `AGING_THREADS` setting, since both
//! sides pin the same `(time, machine, emission)` order.
//!
//! ci.sh runs this file under `AGING_THREADS=1` and `=4`.

use aging_core::baseline::TrendPredictorConfig;
use aging_memsim::{Counter, Scenario};
use aging_serve::loadgen::{drive, BatchMode, LoadgenConfig};
use aging_serve::protocol::{encode_events, ServeEvent};
use aging_serve::{ServeConfig, Server};
use aging_stream::detector::DetectorSpec;
use aging_stream::supervisor::{CounterDetector, FleetConfig, FleetSupervisor};
use aging_stream::GateConfig;

fn fleet_config() -> FleetConfig {
    let detectors = vec![CounterDetector {
        counter: Counter::AvailableBytes,
        spec: DetectorSpec::Trend(TrendPredictorConfig {
            window: 120,
            refit_every: 8,
            alarm_horizon_secs: 900.0,
            ..TrendPredictorConfig::depleting(5.0)
        }),
    }];
    let mut cfg = FleetConfig::new(detectors, 8.0 * 3600.0);
    cfg.gate = GateConfig {
        nominal_period_secs: 5.0,
        ..GateConfig::default()
    };
    cfg
}

fn scenarios(seed: u64) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = (0..3)
        .map(|i| Scenario::tiny_aging(seed + i, 192.0))
        .collect();
    out.push(Scenario::tiny_aging(seed + 3, 0.0)); // healthy control
    out
}

/// Offline events in the server's address space (machine id = scenario
/// index).
fn offline_events(cfg: &FleetConfig, fleet: &[Scenario]) -> Vec<ServeEvent> {
    let report = FleetSupervisor::new(cfg.clone())
        .expect("offline supervisor")
        .run(fleet)
        .expect("offline run");
    report
        .events
        .iter()
        .map(|e| ServeEvent {
            machine_id: e.machine_index as u64,
            time_secs: e.time_secs,
            level: e.level,
            kind: e.kind,
        })
        .collect()
}

fn online_events(cfg: &FleetConfig, fleet: &[Scenario], mode: BatchMode) -> Vec<ServeEvent> {
    let mut serve_cfg = ServeConfig::from_fleet(cfg);
    // Pin the global release order: without the fleet-size hold, a fast
    // feeder's early alarms could be released before a slow feeder's
    // machine registers, permuting the history.
    serve_cfg.expected_machines = Some(fleet.len() as u64);
    let server = Server::bind("127.0.0.1:0", serve_cfg).expect("bind server");
    let loadgen = LoadgenConfig {
        connections: 2,
        batch_records: 32,
        rate_records_per_sec: 0.0,
        poll_alarms_ms: 0,
        counters: vec![Counter::AvailableBytes],
        mode,
    };
    let report =
        drive(server.local_addr(), fleet, cfg.horizon_secs, &loadgen).expect("loadgen drive");
    assert!(report.records_sent > 0, "loadgen fed nothing");
    assert_eq!(
        report.records_sent, report.records_accepted,
        "every record must be acked as accepted"
    );
    let outcome = server.shutdown();
    assert_eq!(outcome.wire.session_panics, 0, "server must not panic");
    assert_eq!(
        outcome.wire.quarantined, 0,
        "clean clients must not be quarantined"
    );
    // The polled history from drive() must be a consistent prefix of —
    // here, with every machine done, identical to — the drained history.
    assert_eq!(
        encode_events(&report.alarms),
        encode_events(&outcome.events),
        "queried history and drained history disagree"
    );
    outcome.events
}

fn assert_parity(mode: BatchMode) {
    for seed in [0x00c0_ffee_u64, 42] {
        let cfg = fleet_config();
        let fleet = scenarios(seed);
        let offline = offline_events(&cfg, &fleet);
        let online = online_events(&cfg, &fleet, mode);
        assert!(
            !offline.is_empty(),
            "seed {seed:#x}: expected alarms from leaky machines"
        );
        assert_eq!(
            encode_events(&offline),
            encode_events(&online),
            "seed {seed:#x} ({mode:?} mode): TCP-path alarm history diverged from the offline \
             supervisor (offline {} events, online {})",
            offline.len(),
            online.len()
        );
    }
}

#[test]
fn tcp_alarm_stream_is_byte_identical_to_offline_supervisor() {
    assert_parity(BatchMode::Record);
}

#[test]
fn columnar_tcp_alarm_stream_is_byte_identical_to_offline_supervisor() {
    assert_parity(BatchMode::Columnar);
}
