//! Autocorrelation analysis: ACF vectors, partial autocorrelation and the
//! Ljung–Box whiteness test.
//!
//! Used throughout the workspace to characterise memory-counter dynamics
//! (long-range dependence shows up as slowly decaying ACF) and to verify
//! that surrogate/whitening operations actually produced white residuals.

use crate::error::{Error, Result};
use crate::stats;
use crate::trend::normal_sf;

/// The autocorrelation function at lags `0..=max_lag`.
///
/// # Errors
///
/// Returns [`Error::TooShort`] when `max_lag + 2 > n`,
/// [`Error::NonFinite`] for NaN input, and [`Error::Numerical`] for
/// constant data.
pub fn acf(data: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    Error::require_len(data, max_lag + 2)?;
    Error::require_finite(data)?;
    (0..=max_lag)
        .map(|k| stats::autocorrelation(data, k))
        .collect()
}

/// Partial autocorrelation at lags `1..=max_lag` via the Durbin–Levinson
/// recursion.
///
/// # Errors
///
/// Same failure modes as [`acf`].
pub fn pacf(data: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    if max_lag == 0 {
        return Err(Error::invalid("max_lag", "must be at least 1"));
    }
    let rho = acf(data, max_lag)?;
    // Durbin–Levinson on the autocorrelation sequence.
    let mut phi_prev: Vec<f64> = Vec::new();
    let mut out = Vec::with_capacity(max_lag);
    let mut v: f64 = 1.0;
    for k in 1..=max_lag {
        let num = rho[k]
            - phi_prev
                .iter()
                .enumerate()
                .map(|(j, &p)| p * rho[k - 1 - j])
                .sum::<f64>();
        if v.abs() <= f64::EPSILON {
            return Err(Error::Numerical("degenerate PACF recursion".into()));
        }
        let kappa = num / v;
        let mut phi = Vec::with_capacity(k);
        for j in 0..k - 1 {
            phi.push(phi_prev[j] - kappa * phi_prev[k - 2 - j]);
        }
        phi.push(kappa);
        v *= 1.0 - kappa * kappa;
        out.push(kappa);
        phi_prev = phi;
    }
    Ok(out)
}

/// Result of a Ljung–Box whiteness test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LjungBox {
    /// The Q statistic.
    pub q: f64,
    /// Degrees of freedom (number of lags tested).
    pub lags: usize,
    /// Approximate p-value (Wilson–Hilferty chi-square approximation).
    pub p_value: f64,
}

impl LjungBox {
    /// Whether whiteness is rejected at level `alpha`.
    pub fn is_correlated(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Ljung–Box test over lags `1..=lags`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for `lags == 0` and propagates
/// [`acf`] failures.
pub fn ljung_box(data: &[f64], lags: usize) -> Result<LjungBox> {
    if lags == 0 {
        return Err(Error::invalid("lags", "must be at least 1"));
    }
    let rho = acf(data, lags)?;
    let n = data.len() as f64;
    let q = n
        * (n + 2.0)
        * rho[1..]
            .iter()
            .enumerate()
            .map(|(i, &r)| r * r / (n - (i + 1) as f64))
            .sum::<f64>();
    // Wilson–Hilferty: chi2_k upper tail via a normal transform.
    let k = lags as f64;
    let z = ((q / k).powf(1.0 / 3.0) - (1.0 - 2.0 / (9.0 * k))) / (2.0 / (9.0 * k)).sqrt();
    Ok(LjungBox {
        q,
        lags,
        p_value: normal_sf(z),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) - 0.5
            })
            .collect()
    }

    fn ar1(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let e = noise(n, seed);
        let mut x = Vec::with_capacity(n);
        let mut prev = 0.0;
        for &v in &e {
            prev = phi * prev + v;
            x.push(prev);
        }
        x
    }

    #[test]
    fn acf_lag0_is_one_and_decays_for_ar1() {
        let x = ar1(8192, 0.7, 1);
        let r = acf(&x, 5).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!((r[1] - 0.7).abs() < 0.05, "rho1 {}", r[1]);
        assert!((r[2] - 0.49).abs() < 0.06, "rho2 {}", r[2]);
        assert!(r[1] > r[2] && r[2] > r[3]);
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag_one() {
        let x = ar1(8192, 0.6, 2);
        let p = pacf(&x, 5).unwrap();
        assert!((p[0] - 0.6).abs() < 0.05, "pacf1 {}", p[0]);
        for (i, &v) in p[1..].iter().enumerate() {
            assert!(v.abs() < 0.07, "pacf{} = {v}", i + 2);
        }
    }

    #[test]
    fn ljung_box_rejects_ar1_accepts_white() {
        let correlated = ar1(2048, 0.5, 3);
        let lb = ljung_box(&correlated, 10).unwrap();
        assert!(lb.is_correlated(0.01), "q {} p {}", lb.q, lb.p_value);

        let white = noise(2048, 4);
        let lb = ljung_box(&white, 10).unwrap();
        assert!(!lb.is_correlated(0.01), "q {} p {}", lb.q, lb.p_value);
    }

    #[test]
    fn guards() {
        let x = noise(64, 5);
        assert!(acf(&x[..4], 10).is_err());
        assert!(pacf(&x, 0).is_err());
        assert!(ljung_box(&x, 0).is_err());
        assert!(acf(&vec![2.0; 32], 4).is_err()); // constant
        let mut bad = x.clone();
        bad[1] = f64::NAN;
        assert!(acf(&bad, 4).is_err());
    }
}
