//! Consistent-hash router: maps machine ids to shard indices.
//!
//! The ring places `vnodes_per_shard` pseudo-random points per shard on
//! a `u64` circle (points are hashes of `(seed, shard, vnode)` — never
//! of the shard *count*), and routes a machine id to the shard owning
//! the first point at or clockwise of the id's own hash. Two properties
//! follow by construction:
//!
//! - **Determinism**: the mapping is a pure function of
//!   `(seed, shards, vnodes_per_shard)`. Replaying a fleet drive with
//!   the same ring parameters partitions it identically, which is what
//!   lets a sharded run be compared byte-for-byte against an offline
//!   single-process run.
//! - **Rebalancing locality**: growing the ring from `n` to `n + 1`
//!   shards leaves every existing point in place and only inserts the
//!   new shard's points, so a machine either keeps its shard or moves
//!   to the *new* shard — never between old shards.
//!
//! The hash is a splitmix64 finalizer — dependency-free, well mixed,
//! and stable across platforms (everything is explicit u64 arithmetic).

use aging_timeseries::{Error, Result};

/// splitmix64 finalizer: a cheap, statistically solid 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seed-deterministic consistent-hash ring over `shards` shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    shards: u64,
    vnodes_per_shard: u32,
    seed: u64,
    /// Sorted `(point_hash, shard)` pairs; ties broken by shard index so
    /// the ring is a total order even under hash collisions.
    points: Vec<(u64, u64)>,
}

impl HashRing {
    /// Default virtual nodes per shard: enough to keep the per-shard
    /// load imbalance within a few percent for realistic shard counts.
    pub const DEFAULT_VNODES: u32 = 64;

    /// Builds the ring.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for zero shards or zero
    /// virtual nodes.
    pub fn new(shards: u64, vnodes_per_shard: u32, seed: u64) -> Result<HashRing> {
        if shards == 0 {
            return Err(Error::invalid("shards", "must be at least 1"));
        }
        if vnodes_per_shard == 0 {
            return Err(Error::invalid("vnodes_per_shard", "must be at least 1"));
        }
        let mut points =
            Vec::with_capacity((shards as usize).saturating_mul(vnodes_per_shard as usize));
        for shard in 0..shards {
            for vnode in 0..u64::from(vnodes_per_shard) {
                // Hash (seed, shard, vnode) only — independence from the
                // shard count is what gives rebalancing locality.
                let h = mix64(seed ^ mix64(shard ^ mix64(vnode)));
                points.push((h, shard));
            }
        }
        points.sort_unstable();
        Ok(HashRing {
            shards,
            vnodes_per_shard,
            seed,
            points,
        })
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> u64 {
        self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes_per_shard(&self) -> u32 {
        self.vnodes_per_shard
    }

    /// The ring seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Routes a machine id to its shard: the shard owning the first ring
    /// point at or clockwise of `mix(seed, machine_id)`, wrapping.
    pub fn shard_of(&self, machine_id: u64) -> u64 {
        let h = mix64(self.seed ^ mix64(machine_id));
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let idx = if idx == self.points.len() { 0 } else { idx };
        self.points[idx].1
    }

    /// Partitions `machine_ids` into per-shard groups, preserving the
    /// input order inside each group. `out[s]` holds the *positions*
    /// into `machine_ids` owned by shard `s`, so callers can carry any
    /// parallel arrays (scenarios, ids) through the split.
    pub fn partition_indices(&self, machine_ids: &[u64]) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); self.shards as usize];
        for (pos, &id) in machine_ids.iter().enumerate() {
            out[self.shard_of(id) as usize].push(pos);
        }
        out
    }

    /// Partitions `machine_ids` into per-shard id groups (input order
    /// preserved inside each group).
    pub fn partition(&self, machine_ids: &[u64]) -> Vec<Vec<u64>> {
        self.partition_indices(machine_ids)
            .into_iter()
            .map(|group| group.into_iter().map(|pos| machine_ids[pos]).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_maps_to_a_valid_shard() {
        let ring = HashRing::new(4, 16, 7).unwrap();
        for id in 0..1_000u64 {
            assert!(ring.shard_of(id) < 4);
        }
    }

    #[test]
    fn mapping_is_seed_deterministic() {
        let a = HashRing::new(5, 32, 0xdead_beef).unwrap();
        let b = HashRing::new(5, 32, 0xdead_beef).unwrap();
        for id in 0..2_000u64 {
            assert_eq!(a.shard_of(id), b.shard_of(id));
        }
        let c = HashRing::new(5, 32, 0xdead_beef + 1).unwrap();
        let moved = (0..2_000u64)
            .filter(|&id| a.shard_of(id) != c.shard_of(id))
            .count();
        assert!(moved > 0, "a different seed should permute the mapping");
    }

    #[test]
    fn growing_the_ring_only_moves_ids_to_the_new_shard() {
        let old = HashRing::new(4, 64, 42).unwrap();
        let new = HashRing::new(5, 64, 42).unwrap();
        let mut moved = 0usize;
        for id in 0..10_000u64 {
            let (a, b) = (old.shard_of(id), new.shard_of(id));
            if a != b {
                assert_eq!(b, 4, "id {id} moved to old shard {b}, not the new one");
                moved += 1;
            }
        }
        // Expected share: 1/5 of keys, with slack for hash variance.
        assert!(moved > 10_000 / 10, "rebalance moved too few ids: {moved}");
        assert!(moved < 10_000 / 3, "rebalance moved too many ids: {moved}");
    }

    #[test]
    fn partition_covers_every_id_exactly_once() {
        let ring = HashRing::new(3, 64, 9).unwrap();
        let ids: Vec<u64> = (0..500).collect();
        let parts = ring.partition(&ids);
        assert_eq!(parts.len(), 3);
        let mut seen: Vec<u64> = parts.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, ids);
        for (shard, part) in parts.iter().enumerate() {
            for &id in part {
                assert_eq!(ring.shard_of(id), shard as u64);
            }
        }
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(HashRing::new(0, 8, 1).is_err());
        assert!(HashRing::new(2, 0, 1).is_err());
    }
}
