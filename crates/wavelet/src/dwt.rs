//! Decimated discrete wavelet transform (DWT) with periodic boundary
//! handling, and its inverse.
//!
//! The DWT underlies the wavelet-leader machinery: detail coefficients
//! `d(j, k)` quantify the signal's local fluctuation at scale `2^j` around
//! position `k · 2^j`, and their decay across scales encodes local
//! regularity.

use crate::filters::Wavelet;
use aging_timeseries::{Error, Result};

/// One analysis step: splits `signal` into approximation and detail
/// coefficients at half the rate, using periodic extension.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when the signal length is odd or
/// shorter than two samples.
pub fn analyze_level(signal: &[f64], wavelet: Wavelet) -> Result<(Vec<f64>, Vec<f64>)> {
    let n = signal.len();
    if n < 2 || !n.is_multiple_of(2) {
        return Err(Error::invalid(
            "signal",
            format!("length must be even and >= 2, got {n}"),
        ));
    }
    let h = wavelet.scaling_filter();
    let g = wavelet.wavelet_filter();
    let half = n / 2;
    let mut approx = vec![0.0; half];
    let mut detail = vec![0.0; half];
    for k in 0..half {
        let mut a = 0.0;
        let mut d = 0.0;
        for (m, (&hm, &gm)) in h.iter().zip(&g).enumerate() {
            let idx = (2 * k + m) % n;
            a += hm * signal[idx];
            d += gm * signal[idx];
        }
        approx[k] = a;
        detail[k] = d;
    }
    Ok((approx, detail))
}

/// One synthesis step: rebuilds the signal from approximation and detail
/// coefficients (inverse of [`analyze_level`]).
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] when the two coefficient arrays differ
/// in length and [`Error::Empty`] when they are empty.
pub fn synthesize_level(approx: &[f64], detail: &[f64], wavelet: Wavelet) -> Result<Vec<f64>> {
    if approx.len() != detail.len() {
        return Err(Error::LengthMismatch {
            left: approx.len(),
            right: detail.len(),
        });
    }
    Error::require_len(approx, 1)?;
    let h = wavelet.scaling_filter();
    let g = wavelet.wavelet_filter();
    let n = approx.len() * 2;
    let mut signal = vec![0.0; n];
    for k in 0..approx.len() {
        for (m, (&hm, &gm)) in h.iter().zip(&g).enumerate() {
            let idx = (2 * k + m) % n;
            signal[idx] += hm * approx[k] + gm * detail[k];
        }
    }
    Ok(signal)
}

/// A multi-level DWT decomposition.
///
/// `detail(1)` is the finest scale (scale `2¹` in samples); the stored
/// approximation is the residual at the coarsest analysed scale.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    wavelet: Wavelet,
    details: Vec<Vec<f64>>,
    approx: Vec<f64>,
}

impl Decomposition {
    /// Wavelet family used by the decomposition.
    pub fn wavelet(&self) -> Wavelet {
        self.wavelet
    }

    /// Number of analysed levels.
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Detail coefficients at `level` (1-based; 1 is the finest scale).
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds [`Decomposition::levels`].
    pub fn detail(&self, level: usize) -> &[f64] {
        assert!(
            level >= 1 && level <= self.details.len(),
            "level {level} out of range 1..={}",
            self.details.len()
        );
        &self.details[level - 1]
    }

    /// All detail bands, finest first.
    pub fn details(&self) -> &[Vec<f64>] {
        &self.details
    }

    /// Replaces the detail band at `level` (1-based) — the hook used by
    /// coefficient-domain processing such as shrinkage denoising.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `level` is out of range and
    /// [`Error::LengthMismatch`] when the replacement band has the wrong
    /// length.
    pub fn set_detail(&mut self, level: usize, band: Vec<f64>) -> Result<()> {
        if level == 0 || level > self.details.len() {
            return Err(Error::invalid(
                "level",
                format!("must lie in 1..={}", self.details.len()),
            ));
        }
        if band.len() != self.details[level - 1].len() {
            return Err(Error::LengthMismatch {
                left: band.len(),
                right: self.details[level - 1].len(),
            });
        }
        self.details[level - 1] = band;
        Ok(())
    }

    /// Approximation coefficients at the coarsest level.
    pub fn approx(&self) -> &[f64] {
        &self.approx
    }

    /// Total energy (sum of squares) across all coefficients. For an
    /// orthogonal wavelet this equals the energy of the original signal
    /// (Parseval).
    pub fn energy(&self) -> f64 {
        let detail_energy: f64 = self
            .details
            .iter()
            .flat_map(|d| d.iter())
            .map(|v| v * v)
            .sum();
        let approx_energy: f64 = self.approx.iter().map(|v| v * v).sum();
        detail_energy + approx_energy
    }

    /// Reconstructs the original signal (exact up to rounding for
    /// orthogonal filters).
    ///
    /// # Errors
    ///
    /// Propagates synthesis failures (which cannot occur for a decomposition
    /// produced by [`dwt`]).
    pub fn reconstruct(&self) -> Result<Vec<f64>> {
        let mut current = self.approx.clone();
        for detail in self.details.iter().rev() {
            current = synthesize_level(&current, detail, self.wavelet)?;
        }
        Ok(current)
    }
}

/// Maximum number of DWT levels applicable to a signal of length `n`
/// (how many times `n` can be halved while staying even and at least as
/// long as one filter application).
pub fn max_levels(n: usize) -> usize {
    let mut levels = 0;
    let mut len = n;
    while len >= 2 && len.is_multiple_of(2) {
        levels += 1;
        len /= 2;
    }
    levels
}

/// Multi-level DWT of `signal`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `levels == 0` or when the
/// signal length is not divisible by `2^levels`.
///
/// # Examples
///
/// ```
/// use aging_wavelet::{dwt, Wavelet};
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let signal: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
/// let dec = dwt(&signal, Wavelet::Daubechies4, 3)?;
/// assert_eq!(dec.levels(), 3);
/// assert_eq!(dec.detail(1).len(), 32);
/// let back = dec.reconstruct()?;
/// assert!(signal.iter().zip(&back).all(|(a, b)| (a - b).abs() < 1e-9));
/// # Ok(())
/// # }
/// ```
pub fn dwt(signal: &[f64], wavelet: Wavelet, levels: usize) -> Result<Decomposition> {
    if levels == 0 {
        return Err(Error::invalid("levels", "must be at least 1"));
    }
    let needed = 1usize
        .checked_shl(levels as u32)
        .ok_or_else(|| Error::invalid("levels", "too many levels"))?;
    if signal.len() < needed || !signal.len().is_multiple_of(needed) {
        return Err(Error::invalid(
            "levels",
            format!("signal length {} not divisible by 2^{levels}", signal.len()),
        ));
    }
    Error::require_finite(signal)?;

    let mut details = Vec::with_capacity(levels);
    let mut current = signal.to_vec();
    for _ in 0..levels {
        let (a, d) = analyze_level(&current, wavelet)?;
        details.push(d);
        current = a;
    }
    Ok(Decomposition {
        wavelet,
        details,
        approx: current,
    })
}

/// Truncates a signal to the largest prefix usable for a `levels`-deep DWT
/// (length divisible by `2^levels`), returning the truncated slice.
///
/// # Errors
///
/// Returns [`Error::TooShort`] when even one window of `2^levels` samples
/// does not fit.
pub fn dyadic_prefix(signal: &[f64], levels: usize) -> Result<&[f64]> {
    let block = 1usize
        .checked_shl(levels as u32)
        .ok_or_else(|| Error::invalid("levels", "too many levels"))?;
    let n = (signal.len() / block) * block;
    if n == 0 {
        return Err(Error::TooShort {
            required: block,
            actual: signal.len(),
        });
    }
    Ok(&signal[..n])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn haar_level_on_known_signal() {
        // Haar: a[k] = (x[2k]+x[2k+1])/√2, d[k] = (x[2k]-x[2k+1])/√2.
        let x = [4.0, 2.0, 5.0, 7.0];
        let (a, d) = analyze_level(&x, Wavelet::Haar).unwrap();
        let s = std::f64::consts::SQRT_2;
        assert_close(&a, &[6.0 / s, 12.0 / s], 1e-12);
        assert_close(&d, &[2.0 / s, -2.0 / s], 1e-12);
    }

    #[test]
    fn analyze_rejects_odd_length() {
        assert!(analyze_level(&[1.0, 2.0, 3.0], Wavelet::Haar).is_err());
        assert!(analyze_level(&[1.0], Wavelet::Haar).is_err());
    }

    #[test]
    fn single_level_round_trip_all_wavelets() {
        let signal: Vec<f64> = (0..32)
            .map(|i| (i as f64 * 0.7).sin() + 0.2 * (i as f64 * 2.3).cos())
            .collect();
        for w in Wavelet::ALL {
            let (a, d) = analyze_level(&signal, w).unwrap();
            let back = synthesize_level(&a, &d, w).unwrap();
            assert_close(&signal, &back, 1e-10);
        }
    }

    #[test]
    fn multi_level_round_trip() {
        let signal: Vec<f64> = (0..128).map(|i| ((i * i) % 17) as f64).collect();
        for w in Wavelet::ALL {
            let dec = dwt(&signal, w, 4).unwrap();
            assert_eq!(dec.levels(), 4);
            assert_eq!(dec.detail(1).len(), 64);
            assert_eq!(dec.detail(4).len(), 8);
            assert_eq!(dec.approx().len(), 8);
            let back = dec.reconstruct().unwrap();
            assert_close(&signal, &back, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let signal: Vec<f64> = (0..64).map(|i| (i as f64 * 0.13).sin() * 3.0).collect();
        let original_energy: f64 = signal.iter().map(|v| v * v).sum();
        for w in Wavelet::ALL {
            let dec = dwt(&signal, w, 3).unwrap();
            assert!(
                (dec.energy() - original_energy).abs() < 1e-8 * original_energy,
                "{w}"
            );
        }
    }

    #[test]
    fn constant_signal_has_zero_details() {
        let signal = vec![5.0; 64];
        for w in Wavelet::ALL {
            let dec = dwt(&signal, w, 3).unwrap();
            for level in 1..=3 {
                for &d in dec.detail(level) {
                    assert!(d.abs() < 1e-10, "{w} level {level}: {d}");
                }
            }
        }
    }

    #[test]
    fn db2_annihilates_linear_ramp_interior() {
        // db2 has 2 vanishing moments; a linear signal has zero detail
        // coefficients except where the periodic wrap-around breaks
        // linearity.
        let signal: Vec<f64> = (0..64).map(|i| 3.0 * i as f64).collect();
        let (_, d) = analyze_level(&signal, Wavelet::Daubechies4).unwrap();
        // Wrap affects the final filter support: last (filter_len/2) outputs.
        for (k, &dv) in d.iter().enumerate().take(d.len() - 2) {
            assert!(dv.abs() < 1e-9, "k={k}: {dv}");
        }
        // Boundary coefficients are non-zero — confirming the wrap is real.
        assert!(d[d.len() - 1].abs() > 1e-6);
    }

    #[test]
    fn dwt_rejects_bad_inputs() {
        let signal = vec![0.0; 48]; // 48 = 16*3: divisible by 16 but not 32
        assert!(dwt(&signal, Wavelet::Haar, 0).is_err());
        assert!(dwt(&signal, Wavelet::Haar, 5).is_err());
        assert!(dwt(&signal, Wavelet::Haar, 4).is_ok());
        assert!(dwt(&[1.0, f64::NAN], Wavelet::Haar, 1).is_err());
    }

    #[test]
    fn max_levels_counts_factor_of_two() {
        assert_eq!(max_levels(64), 6);
        assert_eq!(max_levels(48), 4);
        assert_eq!(max_levels(3), 0);
        assert_eq!(max_levels(0), 0);
    }

    #[test]
    fn dyadic_prefix_truncates() {
        let signal: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(dyadic_prefix(&signal, 3).unwrap().len(), 48);
        assert_eq!(dyadic_prefix(&signal, 5).unwrap().len(), 32);
        assert!(dyadic_prefix(&signal[..3], 5).is_err());
    }

    #[test]
    fn synthesize_rejects_mismatch() {
        assert!(synthesize_level(&[1.0], &[1.0, 2.0], Wavelet::Haar).is_err());
        assert!(synthesize_level(&[], &[], Wavelet::Haar).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn detail_level_bounds_panic() {
        let dec = dwt(&[0.0; 8], Wavelet::Haar, 2).unwrap();
        let _ = dec.detail(3);
    }
}
