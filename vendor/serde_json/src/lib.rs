//! Offline vendored subset of the [`serde_json`](https://docs.rs/serde_json)
//! API: renders and parses the vendored `serde` [`Value`] tree as JSON.
//!
//! Mirrors upstream behaviour where it matters to this workspace:
//!
//! - numbers print in shortest round-trip form (Rust's `{}` for `f64`),
//! - non-finite floats serialize as `null` (and parse back as NaN),
//! - strings are escaped per RFC 8259,
//! - `from_str` is strict: trailing garbage and malformed input error.

#![warn(missing_docs)]

pub use serde::Value;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] for unrepresentable values (currently none — kept for
/// API compatibility).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Same conditions as [`to_string`].
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some("  "), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] for malformed JSON or a shape mismatch.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T> {
    let value = parse_value_strict(text)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Reconstructs a deserializable type from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on shape mismatch.
pub fn from_value<T: serde::de::DeserializeOwned>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip form; force a decimal point so
                // integral floats stay floats through a round trip.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_strict(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at offset {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a plain UTF-8 run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if !self.literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v: Value = parse_value_strict(json).unwrap();
            assert_eq!(to_string(&Wrapper(v.clone())).unwrap(), json);
        }
    }

    struct Wrapper(Value);
    impl serde::Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn containers_round_trip() {
        let json = r#"{"a":[1,2.5,null],"b":{"nested":"x\ny"}}"#;
        let v = parse_value_strict(json).unwrap();
        assert_eq!(to_string(&Wrapper(v)).unwrap(), json);
    }

    #[test]
    fn float_values_round_trip_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 1e300, -2.5e-8, 123456789.123456] {
            let rendered = to_string(&x).unwrap();
            let back: f64 = from_str(&rendered).unwrap();
            assert_eq!(back, x, "{rendered}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let rendered = to_string(&2.0f64).unwrap();
        assert_eq!(rendered, "2.0");
        let back: f64 = from_str(&rendered).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<f64>("not json").is_err());
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<f64>>("[1,]").is_err());
    }

    #[test]
    fn vec_round_trip() {
        let xs = vec![1.5f64, -2.0, 0.0];
        let json = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let xs = vec![1.0f64, 2.0];
        let pretty = to_string_pretty(&xs).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<f64> = from_str(&pretty).unwrap();
        assert_eq!(back, xs);
    }
}
