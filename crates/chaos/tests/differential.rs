//! The differential robustness suite CI runs at two fixed seeds: a small
//! mixed fleet (three aging machines, one healthy) through the full
//! supervisor, clean vs. chaos-wrapped, with every clause of the
//! robustness contract hard-asserted by [`run_differential`].

use aging_chaos::{run_differential, ChaosPlan, Tolerance};
use aging_core::baseline::TrendPredictorConfig;
use aging_memsim::{Counter, Scenario};
use aging_stream::detector::DetectorSpec;
use aging_stream::{CounterDetector, FleetConfig};

/// Three aggressively-leaking machines (they crash well inside the
/// horizon) plus one healthy control.
fn fleet() -> Vec<Scenario> {
    let mut scenarios: Vec<Scenario> = (0..3)
        .map(|i| Scenario::tiny_aging(500 + i, 192.0 + 32.0 * i as f64))
        .collect();
    scenarios.push(Scenario::tiny_aging(900, 0.0));
    scenarios
}

/// The supervisor tuning the streaming tests use for the 5-second
/// tiny-machine feed, plus gate quarantine armed — chaos drop bursts
/// must trigger the degradation path, not just single-sample drops.
fn config() -> FleetConfig {
    let mut cfg = FleetConfig::new(
        vec![CounterDetector {
            counter: Counter::AvailableBytes,
            spec: DetectorSpec::Trend(TrendPredictorConfig {
                window: 120,
                refit_every: 8,
                alarm_horizon_secs: 900.0,
                ..TrendPredictorConfig::depleting(5.0)
            }),
        }],
        8.0 * 3600.0,
    );
    cfg.gate.nominal_period_secs = 5.0;
    cfg.gate.quarantine_after = 8;
    cfg.status_every_secs = 600.0;
    cfg.shards = 2;
    cfg
}

fn sweep(seed: u64) {
    let scenarios = fleet();
    let report = run_differential(
        &scenarios,
        &config(),
        &ChaosPlan::nasty(seed),
        &Tolerance::default(),
    )
    .expect("robustness contract must hold");

    // The plan actually attacked the streams.
    assert!(report.injected.injected() > 0, "nothing was injected");
    assert!(report.chaos.status.ingestion.dropped() > 0);

    // Every aging machine crashed and still alarmed ahead of the crash
    // under injection; the healthy control survived.
    for row in &report.rows[..3] {
        assert!(row.crash_time_secs.is_some(), "{} survived", row.scenario);
        let lead = row.chaos_lead_secs.expect("alarm lost under chaos");
        assert!(lead > 0.0, "{}: non-positive lead {lead}", row.scenario);
    }
    assert!(report.rows[3].crash_time_secs.is_none());
    println!("seed {seed}:\n{}", report.table());
}

#[test]
fn robustness_contract_holds_at_seed_a() {
    sweep(0x00c0_ffee);
}

#[test]
fn robustness_contract_holds_at_seed_b() {
    sweep(42);
}
