//! Streaming-kernel benchmarks: the bounded-memory online detector
//! against the naive alternative of re-running the batch detector from
//! scratch on every new sample.
//!
//! The streaming detector does O(window) work per sample; the
//! re-run-from-scratch baseline does O(history × window), so at a
//! dimension window of 512 the amortized per-sample throughput gap is
//! well over an order of magnitude (the `streaming-throughput` test in
//! this file's sibling experiment, `repro e11`, asserts the ≥10× floor).

use aging_core::detector::{DetectorConfig, HolderDimensionDetector};
use aging_memsim::{simulate, Counter, Scenario};
use aging_stream::detector::StreamingHolderDimension;
use aging_timeseries::trend::{MannKendall, StreamingMannKendall};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn wide_config() -> DetectorConfig {
    DetectorConfig {
        dimension_window: 512,
        dimension_stride: 64,
        ..DetectorConfig::default()
    }
}

fn trace(n_hours: f64) -> Vec<f64> {
    let report = simulate(&Scenario::aging_web_server(9), n_hours * 3600.0).unwrap();
    report
        .log
        .series(Counter::AvailableBytes)
        .unwrap()
        .values()
        .to_vec()
}

fn bench_streaming_vs_rescratch(c: &mut Criterion) {
    // ~1560 samples at the NT4 30 s period.
    let values = trace(13.0);
    let n = values.len();

    let mut group = c.benchmark_group("streaming/window-512");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut det = StreamingHolderDimension::new(wide_config()).unwrap();
            for &v in &values {
                let _ = det.push(std::hint::black_box(v)).unwrap();
            }
            det.is_alarmed()
        })
    });
    group.bench_function("rescratch-per-sample", |b| {
        b.iter(|| {
            // The naive online alternative: no retained state, so every
            // arriving sample replays the whole history through a fresh
            // batch detector.
            let mut alarmed = false;
            for i in 1..=n {
                let mut det = HolderDimensionDetector::new(wide_config()).unwrap();
                for &v in &values[..i] {
                    let _ = det.push(std::hint::black_box(v)).unwrap();
                }
                alarmed = det.is_alarmed();
            }
            alarmed
        })
    });
    group.finish();
}

fn bench_streaming_mann_kendall(c: &mut Criterion) {
    let values = trace(13.0);
    let n = values.len();
    let window = 512;

    let mut group = c.benchmark_group("streaming/mann-kendall-512");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("incremental-s", |b| {
        b.iter(|| {
            let mut mk = StreamingMannKendall::new(window).unwrap();
            let mut last = 0i64;
            for &v in &values {
                mk.push(std::hint::black_box(v)).unwrap();
                last = mk.s();
            }
            last
        })
    });
    group.bench_function("recompute-window", |b| {
        b.iter(|| {
            // O(window²) recomputation on every slide.
            let mut last = 0i64;
            for i in window..=n {
                let mk = MannKendall::test(&values[i - window..i]).unwrap();
                last = mk.s;
            }
            last
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_streaming_vs_rescratch,
    bench_streaming_mann_kendall
);
criterion_main!(benches);
