//! Rejuvenation policies and the controller configuration.

use aging_timeseries::{Error, Result};

/// When to issue planned restarts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejuvPolicy {
    /// Never restart proactively. Crashes still force a repair reboot,
    /// so this is the fair no-op baseline for availability comparisons.
    None,
    /// Restart every machine on a fixed wall-clock interval since its
    /// last restart (or boot), regardless of health — the cron-style
    /// baseline alarm-driven rejuvenation must beat.
    Periodic {
        /// Seconds between planned restarts of one machine.
        period_secs: f64,
    },
    /// Restart a machine when its fused detector vote has latched an
    /// alarm — the closed loop. The controller still enforces the
    /// cooldown and the fleet-wide budget, so alarm storms cannot
    /// restart the whole fleet at once.
    AlarmTriggered,
}

impl RejuvPolicy {
    /// Short display name used in reports and decision logs.
    pub fn name(&self) -> &'static str {
        match self {
            RejuvPolicy::None => "none",
            RejuvPolicy::Periodic { .. } => "periodic",
            RejuvPolicy::AlarmTriggered => "alarm-triggered",
        }
    }

    /// Stable wire code for the policy kind (the periodic interval is
    /// not carried — the code identifies the family only).
    pub fn code(&self) -> u8 {
        match self {
            RejuvPolicy::None => 0,
            RejuvPolicy::Periodic { .. } => 1,
            RejuvPolicy::AlarmTriggered => 2,
        }
    }
}

/// Controller configuration: the policy plus the costs and guardrails
/// every policy shares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RejuvConfig {
    /// The planned-restart policy.
    pub policy: RejuvPolicy,
    /// Minimum seconds between restarts of the *same* machine. Boot
    /// counts as a restart epoch: no planned restart is granted before
    /// `cooldown_secs` of uptime. This is also what rides out the
    /// post-restart refill transient — a freshly restarted machine's
    /// caches refill for a while and must not immediately re-trigger.
    pub cooldown_secs: f64,
    /// Seconds a planned restart keeps the machine down.
    pub restart_downtime_secs: f64,
    /// Seconds a crash keeps the machine down before its repair reboot
    /// completes. Crashes are unplanned, so this is typically much
    /// larger than `restart_downtime_secs` — that gap is exactly what
    /// rejuvenation buys.
    pub crash_repair_secs: f64,
    /// Fleet-wide cap on machines restarting/repairing at once. A
    /// planned restart that would exceed it is denied
    /// ([`crate::DenyReason::Budget`]) and the machine retries later.
    pub max_concurrent_restarts: usize,
}

impl Default for RejuvConfig {
    /// Alarm-triggered policy with a one-hour cooldown, 30-second
    /// planned restarts, 15-minute crash repairs and a budget of one
    /// concurrent restart.
    fn default() -> Self {
        RejuvConfig {
            policy: RejuvPolicy::AlarmTriggered,
            cooldown_secs: 3600.0,
            restart_downtime_secs: 30.0,
            crash_repair_secs: 900.0,
            max_concurrent_restarts: 1,
        }
    }
}

impl RejuvConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on a non-finite or negative
    /// cooldown, non-positive downtime/repair cost, zero restart
    /// budget, or a non-positive periodic interval.
    pub fn validate(&self) -> Result<()> {
        if !(self.cooldown_secs >= 0.0) || !self.cooldown_secs.is_finite() {
            return Err(Error::invalid(
                "cooldown_secs",
                "must be finite and non-negative",
            ));
        }
        if !(self.restart_downtime_secs > 0.0) || !self.restart_downtime_secs.is_finite() {
            return Err(Error::invalid(
                "restart_downtime_secs",
                "must be finite and positive",
            ));
        }
        if !(self.crash_repair_secs > 0.0) || !self.crash_repair_secs.is_finite() {
            return Err(Error::invalid(
                "crash_repair_secs",
                "must be finite and positive",
            ));
        }
        if self.max_concurrent_restarts == 0 {
            return Err(Error::invalid(
                "max_concurrent_restarts",
                "must be at least 1",
            ));
        }
        if let RejuvPolicy::Periodic { period_secs } = self.policy {
            if !(period_secs > 0.0) || !period_secs.is_finite() {
                return Err(Error::invalid("period_secs", "must be finite and positive"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        RejuvConfig::default().validate().unwrap();
    }

    #[test]
    fn guards_reject_bad_parameters() {
        let ok = RejuvConfig::default();
        for bad in [
            RejuvConfig {
                cooldown_secs: -1.0,
                ..ok
            },
            RejuvConfig {
                cooldown_secs: f64::NAN,
                ..ok
            },
            RejuvConfig {
                restart_downtime_secs: 0.0,
                ..ok
            },
            RejuvConfig {
                restart_downtime_secs: f64::INFINITY,
                ..ok
            },
            RejuvConfig {
                crash_repair_secs: -5.0,
                ..ok
            },
            RejuvConfig {
                max_concurrent_restarts: 0,
                ..ok
            },
            RejuvConfig {
                policy: RejuvPolicy::Periodic { period_secs: 0.0 },
                ..ok
            },
            RejuvConfig {
                policy: RejuvPolicy::Periodic {
                    period_secs: f64::NAN,
                },
                ..ok
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn policy_names_are_stable() {
        // Decision logs and bench reports key on these strings.
        assert_eq!(RejuvPolicy::None.name(), "none");
        assert_eq!(
            RejuvPolicy::Periodic { period_secs: 1.0 }.name(),
            "periodic"
        );
        assert_eq!(RejuvPolicy::AlarmTriggered.name(), "alarm-triggered");
    }
}
