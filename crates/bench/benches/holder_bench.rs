//! Hölder-trace estimation benchmarks (the per-sample cost that bounds the
//! streaming detector's throughput).

use aging_fractal::generate;
use aging_fractal::holder::{holder_trace, increment_exponent, HolderEstimator};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_holder(c: &mut Criterion) {
    let signal = generate::fbm(4096, 0.6, 2).unwrap();
    let mut group = c.benchmark_group("holder");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("trace/local-increment", |b| {
        b.iter(|| {
            holder_trace(
                std::hint::black_box(&signal),
                &HolderEstimator::local_increment(),
            )
            .unwrap()
        })
    });
    group.bench_function("trace/oscillation", |b| {
        b.iter(|| {
            holder_trace(
                std::hint::black_box(&signal),
                &HolderEstimator::oscillation(),
            )
            .unwrap()
        })
    });
    group.bench_function("trace/wavelet-leader", |b| {
        b.iter(|| {
            holder_trace(
                std::hint::black_box(&signal),
                &HolderEstimator::wavelet_leader(),
            )
            .unwrap()
        })
    });
    group.finish();

    c.bench_function("generate/mbm-2048", |b| {
        b.iter(|| aging_fractal::generate::mbm(2048, |u| 0.8 - 0.5 * u, 1).unwrap())
    });

    let window = &signal[..65];
    c.bench_function("holder/point-estimate-65", |b| {
        b.iter(|| increment_exponent(std::hint::black_box(window), 8, 2.0).unwrap())
    });
}

criterion_group!(benches, bench_holder);
criterion_main!(benches);
