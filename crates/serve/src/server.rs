//! The ingestion/query server: thread-per-connection sessions feeding a
//! shared engine of per-machine [`MachinePipeline`]s.
//!
//! # Architecture
//!
//! ```text
//!  clients ──TCP──► session threads ──► Engine (mutex)
//!                     │ decode+CRC        ├─ MachinePipeline per machine_id
//!                     │ quarantine        ├─ WatermarkMerger (time, id, seq)
//!                     └ acks/replies      └─ released alarm history
//! ```
//!
//! Each connection gets its own session thread; the only shared state is
//! the engine behind one mutex, entered per *batch* (not per byte), so a
//! slow or stalled peer never blocks another session's socket I/O.
//!
//! # Watermarked history
//!
//! Events enter a single-source
//! [`WatermarkMerger`](aging_stream::merge::WatermarkMerger) keyed
//! `(time, machine_id, emission seq)` — the same shared merge the
//! in-process [`FleetSupervisor`](aging_stream::supervisor::FleetSupervisor)
//! and the `aging-cluster` aggregator use — and move to the released
//! history only once every unfinished machine's pipeline watermark
//! ([`MachinePipeline::completed_time_secs`]) has passed them. Query
//! replies therefore only ever show a prefix of the final ordered
//! history, and the E14 parity gate can demand byte-identity with the
//! offline supervisor run. `QueryAlarms` replies advertise the release
//! frontier (and the server's [`ServeConfig::shard_id`]), so an
//! aggregator merging several shards knows exactly which prefix of
//! global time each shard has promised never to extend.
//!
//! A consequence the operator must know: one stalled feeder holds back
//! the *global* released history (its machine's watermark stops
//! advancing). The stall timeout exists precisely to bound that damage —
//! a session idle past [`ServeConfig::stall_timeout_ms`] is closed and
//! its machines' feeds finished, restoring the watermark.
//!
//! # Client misbehaviour
//!
//! | Fault | Consequence |
//! |---|---|
//! | frame fails CRC / bad length prefix | framing lost → immediate quarantine (connection dropped) |
//! | intact frame, malformed payload | `Error` reply + strike; [`ServeConfig::quarantine_after`] consecutive strikes → quarantine |
//! | EOF or stall mid-frame | truncation → quarantine |
//! | idle past the stall timeout | session closed, machines finished |
//! | byzantine timestamps/values | confined to that machine's own streams by its [`SampleGate`] — the per-machine pipeline is the trust boundary |
//!
//! The strike rule deliberately mirrors [`SampleGate`] quarantine
//! semantics: consecutive failures count toward a threshold and any good
//! frame resets the run. Sessions run under `catch_unwind`, so a bug in
//! frame handling converts to a counted, quarantined close
//! ([`WireCounters::session_panics`]) instead of a dead server.
//!
//! [`SampleGate`]: aging_stream::gate::SampleGate

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use aging_core::detector::AlertLevel;
use aging_core::fusion::FusionRule;
use aging_rejuv::{RejuvConfig, RejuvController, RejuvPolicy, RestartReason, RestartRequest};
use aging_store::{Recovery, Store, StoreConfig};
use aging_stream::gate::GateConfig;
use aging_stream::merge::{MergeKey, WatermarkMerger};
use aging_stream::pipeline::{MachinePipeline, PipelineEvent};
use aging_stream::source::StreamSample;
use aging_stream::supervisor::{AlarmKind, CounterDetector, FleetConfig};
use aging_stream::telemetry::{LatencyHistogram, MachineSnapshot, Snapshot, StageCounters};
use aging_timeseries::{persist, Error, Result};
use serde::{Deserialize, Serialize};

use aging_memsim::Counter;
use aging_stream::sink::IngestSink;

use crate::codec::{parse_text_line, FrameDecoder, TextCommand};
use crate::protocol::{
    counter_code, counter_from_code, decode_event, decode_events, encode_event, encode_events,
    encode_frame, expand_column_times, Frame, Reader as EventReader, Record, ServeEvent,
    DEFAULT_MAX_FRAME, ERR_MALFORMED, ERR_QUARANTINED, ERR_STORE, ERR_VERSION, PROTOCOL_VERSION,
    PROTOCOL_VERSION_V2, TEXT_PREAMBLE,
};

/// Journal entry kind: a binary [`Frame::Batch`] (replay counts a batch).
const ENTRY_BATCH: u8 = 1;
/// Journal entry kind: one machine's feed was declared complete.
const ENTRY_FINISH: u8 = 2;
/// Journal entry kind: a text-mode sample (replay counts records only).
const ENTRY_TEXT: u8 = 3;
/// Journal entry kind: a columnar batch ([`Frame::BatchColumnar`]),
/// stored with expanded timestamps so replay applies the exact `f64`
/// column the live engine saw.
const ENTRY_COLUMN: u8 = 4;
/// Version byte leading every engine snapshot blob.
const SNAPSHOT_VERSION: u8 = 1;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Detectors instantiated per connected machine (one per counter).
    pub detectors: Vec<CounterDetector>,
    /// How per-counter alarm votes fuse into a machine-level alarm.
    pub fusion: FusionRule,
    /// Defect gate applied to every (machine, counter) stream.
    pub gate: GateConfig,
    /// Maximum accepted frame payload, bytes.
    pub max_frame_bytes: u32,
    /// Credit window advertised in the handshake: max unacked batches a
    /// client may keep in flight before it must wait.
    pub window: u16,
    /// Consecutive malformed frames (or text lines) before a client is
    /// quarantined — the wire-level analogue of
    /// [`GateConfig::quarantine_after`].
    pub quarantine_after: u32,
    /// Socket read poll interval, ms (bounds shutdown latency).
    pub read_poll_ms: u64,
    /// A session idle this long is closed and its machines finished; if
    /// it stalls *mid-frame* it is quarantined as truncated.
    pub stall_timeout_ms: u64,
    /// Socket write timeout, ms (a peer that stops reading its replies
    /// cannot wedge a session thread forever).
    pub write_timeout_ms: u64,
    /// Max events per `AlarmsReply` chunk (keeps replies under the frame
    /// size limit).
    pub alarm_chunk: u16,
    /// Hold all alarm releases until this many distinct machines have
    /// registered (sent their first record). `None` releases freely.
    ///
    /// The global watermark is the minimum completed tick over machines
    /// the server *knows about* — a machine that has not yet sent
    /// anything cannot hold it down, so with concurrent feeders a fast
    /// client could get its early alarms released before a slow client's
    /// first record arrives, permuting the global history order. Parity
    /// and benchmark runs that know their fleet size up front set this
    /// to pin the release order exactly; [`Server::shutdown`]'s drain
    /// ignores the hold.
    pub expected_machines: Option<u64>,
    /// Shard identity advertised in `AlarmsReply` frames. Standalone
    /// servers keep the default `0`; a cluster launcher assigns each
    /// shard its ring index so aggregators and operators can attribute
    /// replies. Purely advisory — it never affects engine behaviour.
    pub shard_id: u64,
    /// Crash-safe persistence. When set, every accepted batch is
    /// journaled to this store *before* its ack goes out (acked ⇒
    /// durable) and [`Server::bind`] replays whatever snapshot + journal
    /// suffix it finds in the directory, reconstructing the engine
    /// bit-identically. `None` (the default) serves purely in memory.
    pub store: Option<StoreConfig>,
    /// Rejuvenation policy answered by `QueryRejuv` (protocol v2). The
    /// serve tier never restarts anything itself — the closed loop lives
    /// in the stream supervisor — so this only drives the shadow
    /// advisory replayed over each machine's released alarm history.
    /// `None` (the default) answers with the `none` policy.
    pub rejuv: Option<RejuvConfig>,
}

impl ServeConfig {
    /// A config with library defaults around the given detectors.
    pub fn new(detectors: Vec<CounterDetector>) -> Self {
        ServeConfig {
            detectors,
            fusion: FusionRule::Majority,
            gate: GateConfig::default(),
            max_frame_bytes: DEFAULT_MAX_FRAME,
            window: 32,
            quarantine_after: 3,
            read_poll_ms: 20,
            stall_timeout_ms: 10_000,
            write_timeout_ms: 5_000,
            alarm_chunk: 256,
            expected_machines: None,
            shard_id: 0,
            store: None,
            rejuv: None,
        }
    }

    /// Adopts the detection parameters (detectors, fusion, gate) of an
    /// offline fleet config, so a server and a
    /// [`FleetSupervisor`](aging_stream::supervisor::FleetSupervisor)
    /// run the identical pipeline — the E14 parity setup.
    pub fn from_fleet(fleet: &FleetConfig) -> Self {
        let mut cfg = ServeConfig::new(fleet.detectors.clone());
        cfg.fusion = fleet.fusion;
        cfg.gate = fleet.gate;
        cfg
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an empty detector list, a
    /// too-small frame limit, a zero window/threshold/chunk, and
    /// propagates gate/detector validation.
    pub fn validate(&self) -> Result<()> {
        // Instantiating a probe pipeline surfaces every detector/gate
        // error before any thread or socket exists; sessions may then
        // construct pipelines infallibly.
        MachinePipeline::new(&self.detectors, self.fusion, self.gate)?;
        if self.max_frame_bytes < 64 {
            return Err(Error::invalid("max_frame_bytes", "must be at least 64"));
        }
        if self.window == 0 {
            return Err(Error::invalid("window", "must be at least 1"));
        }
        if self.quarantine_after == 0 {
            return Err(Error::invalid("quarantine_after", "must be at least 1"));
        }
        if self.alarm_chunk == 0 {
            return Err(Error::invalid("alarm_chunk", "must be at least 1"));
        }
        if let Some(store) = &self.store {
            store
                .validate()
                .map_err(|e| Error::invalid("store", e.to_string()))?;
        }
        if let Some(rejuv) = &self.rejuv {
            rejuv.validate()?;
        }
        Ok(())
    }

    /// Starts a validated builder around the given detectors — the same
    /// pattern as `DetectorConfig`/`WtmmConfig` in `aging-core`. The
    /// plain-struct literal (`ServeConfig { .. }`) keeps working; the
    /// builder's [`build`](ServeConfigBuilder::build) runs
    /// [`ServeConfig::validate`], so a builder-made config cannot reach
    /// [`Server::bind`] invalid.
    pub fn builder(detectors: Vec<CounterDetector>) -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: ServeConfig::new(detectors),
        }
    }
}

/// Builder for [`ServeConfig`] — see [`ServeConfig::builder`].
///
/// ```
/// use aging_serve::server::ServeConfig;
/// use aging_stream::supervisor::CounterDetector;
/// use aging_stream::detector::DetectorSpec;
/// use aging_core::detector::DetectorConfig;
/// use aging_memsim::Counter;
///
/// let cfg = ServeConfig::builder(vec![CounterDetector {
///     counter: Counter::AvailableBytes,
///     spec: DetectorSpec::Holder(DetectorConfig::default()),
/// }])
/// .window(16)
/// .expected_machines(Some(4))
/// .build()
/// .unwrap();
/// assert_eq!(cfg.window, 16);
/// // Invalid tunings are caught at build time:
/// assert!(ServeConfig::builder(vec![]).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets the per-counter → machine alarm fusion rule.
    pub fn fusion(mut self, fusion: FusionRule) -> Self {
        self.cfg.fusion = fusion;
        self
    }

    /// Sets the defect gate applied to every stream.
    pub fn gate(mut self, gate: GateConfig) -> Self {
        self.cfg.gate = gate;
        self
    }

    /// Sets the maximum accepted frame payload, bytes.
    pub fn max_frame_bytes(mut self, bytes: u32) -> Self {
        self.cfg.max_frame_bytes = bytes;
        self
    }

    /// Sets the credit window (max unacked batches in flight).
    pub fn window(mut self, window: u16) -> Self {
        self.cfg.window = window;
        self
    }

    /// Sets the consecutive-malformed-frame quarantine threshold.
    pub fn quarantine_after(mut self, strikes: u32) -> Self {
        self.cfg.quarantine_after = strikes;
        self
    }

    /// Sets the socket read poll interval, ms.
    pub fn read_poll_ms(mut self, ms: u64) -> Self {
        self.cfg.read_poll_ms = ms;
        self
    }

    /// Sets the idle-session stall timeout, ms.
    pub fn stall_timeout_ms(mut self, ms: u64) -> Self {
        self.cfg.stall_timeout_ms = ms;
        self
    }

    /// Sets the socket write timeout, ms.
    pub fn write_timeout_ms(mut self, ms: u64) -> Self {
        self.cfg.write_timeout_ms = ms;
        self
    }

    /// Sets the max events per `AlarmsReply` chunk.
    pub fn alarm_chunk(mut self, chunk: u16) -> Self {
        self.cfg.alarm_chunk = chunk;
        self
    }

    /// Sets the release hold: alarm releases wait until this many
    /// machines have registered.
    pub fn expected_machines(mut self, machines: Option<u64>) -> Self {
        self.cfg.expected_machines = machines;
        self
    }

    /// Sets the shard identity advertised in `AlarmsReply` frames.
    pub fn shard_id(mut self, shard: u64) -> Self {
        self.cfg.shard_id = shard;
        self
    }

    /// Enables crash-safe persistence backed by the given store.
    pub fn store(mut self, store: Option<StoreConfig>) -> Self {
        self.cfg.store = store;
        self
    }

    /// Sets the rejuvenation policy answered by `QueryRejuv`.
    pub fn rejuv(mut self, rejuv: Option<RejuvConfig>) -> Self {
        self.cfg.rejuv = rejuv;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Everything [`ServeConfig::validate`] rejects: empty detectors,
    /// `max_frame_bytes < 64`, zero window/threshold/chunk, invalid
    /// gate/detector/store tunings.
    pub fn build(self) -> Result<ServeConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Wire-level counters, serialised inside [`ServeStatus`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCounters {
    /// Connections accepted.
    pub connections: u64,
    /// Sessions fully closed.
    pub sessions_closed: u64,
    /// Text-mode sessions among them.
    pub text_sessions: u64,
    /// CRC-verified frames received.
    pub frames: u64,
    /// Batch frames among them.
    pub batches: u64,
    /// Ingestion records received (batched or text).
    pub records: u64,
    /// Records rejected for an unknown counter code.
    pub records_rejected: u64,
    /// Acks sent.
    pub acks_sent: u64,
    /// Advisory `Busy` frames sent.
    pub busy_sent: u64,
    /// Intact frames (or text lines) whose payload failed to parse.
    pub malformed_frames: u64,
    /// Connections whose framing integrity was lost (bad length prefix,
    /// CRC mismatch, truncation).
    pub corrupt_streams: u64,
    /// Clients quarantined (corrupt stream or strike threshold).
    pub quarantined: u64,
    /// Sessions that panicked (caught; the server keeps serving).
    pub session_panics: u64,
    /// Query frames answered.
    pub queries: u64,
}

/// The JSON document answering a status query: wire counters plus the
/// same fleet [`Snapshot`] schema the in-process supervisor dumps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeStatus {
    /// Wire-level counters.
    pub wire: WireCounters,
    /// Fleet-level pipeline snapshot.
    pub fleet: Snapshot,
}

/// Durability counters for a store-backed server (E15's raw material).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistStats {
    /// Highest journal entry id ever assigned (monotonic across
    /// restarts of the same store directory).
    pub entries_journaled: u64,
    /// Journal bytes appended by *this* server process.
    pub journal_appended_bytes: u64,
    /// Snapshots committed by this server process.
    pub snapshots_committed: u64,
}

/// Everything a server produced, returned by [`Server::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The full released alarm history, globally ordered by
    /// `(time, machine_id, emission)`.
    pub events: Vec<ServeEvent>,
    /// Final fleet snapshot.
    pub status: Snapshot,
    /// Final wire counters.
    pub wire: WireCounters,
    /// Final per-machine snapshots, in machine-id order.
    pub machines: Vec<MachineSnapshot>,
    /// Durability counters, `None` for a memory-only server.
    pub persist: Option<PersistStats>,
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

struct MachineEntry {
    name: String,
    pipeline: MachinePipeline,
    /// Session currently feeding this machine; when that session closes
    /// the feed is finished (a later session may resume it).
    session: u64,
}

struct Engine {
    detectors: Vec<CounterDetector>,
    fusion: FusionRule,
    gate: GateConfig,
    /// Release hold until this many machines registered (see
    /// [`ServeConfig::expected_machines`]); cleared by the final drain.
    expected_machines: Option<u64>,
    machines: BTreeMap<u64, MachineEntry>,
    /// Single-source watermark merge: the fleet watermark (computed from
    /// the machine pipelines) advances source 0, and its monotone
    /// frontier doubles as the watermark advertised to aggregators.
    pending: WatermarkMerger<ServeEvent>,
    released: Vec<ServeEvent>,
    seq: u64,
    status_seq: u64,
    warnings: u64,
    alarms: u64,
    wire: WireCounters,
    scratch: Vec<PipelineEvent>,
    /// Crash-safe journal + snapshot backing; `None` = memory-only.
    store: Option<Store>,
    /// Shadow-advisory policy for `QueryRejuv` (never restarts anything).
    rejuv: Option<RejuvConfig>,
}

impl Engine {
    fn new(cfg: &ServeConfig) -> Engine {
        Engine {
            detectors: cfg.detectors.clone(),
            fusion: cfg.fusion,
            gate: cfg.gate,
            expected_machines: cfg.expected_machines,
            machines: BTreeMap::new(),
            pending: WatermarkMerger::new(1),
            released: Vec::new(),
            seq: 0,
            status_seq: 0,
            warnings: 0,
            alarms: 0,
            wire: WireCounters::default(),
            scratch: Vec::new(),
            store: None,
            rejuv: cfg.rejuv,
        }
    }

    /// Moves everything the last pipeline call emitted into the pending
    /// heap, stamping the global emission sequence.
    fn enqueue(&mut self, machine_id: u64) {
        for pe in self.scratch.drain(..) {
            self.seq += 1;
            self.pending.push(
                MergeKey {
                    time_secs: pe.time_secs,
                    lane: machine_id,
                    seq: self.seq,
                },
                ServeEvent {
                    machine_id,
                    time_secs: pe.time_secs,
                    level: pe.level,
                    kind: pe.kind,
                },
            );
        }
    }

    /// The machine's entry, created on first contact and re-owned by the
    /// feeding session.
    fn machine_entry(&mut self, session: u64, machine_id: u64) -> &mut MachineEntry {
        if !self.machines.contains_key(&machine_id) {
            // Validated at bind time, so construction cannot fail here.
            let pipeline = MachinePipeline::new(&self.detectors, self.fusion, self.gate)
                .expect("config validated at bind");
            self.machines.insert(
                machine_id,
                MachineEntry {
                    name: format!("m{machine_id:03}"),
                    pipeline,
                    session,
                },
            );
        }
        let entry = self
            .machines
            .get_mut(&machine_id)
            .expect("present or just inserted");
        entry.session = session;
        entry
    }

    /// Feeds one record; `false` when it was rejected (unknown counter
    /// code). Creates the machine's pipeline on first contact.
    fn ingest(&mut self, session: u64, rec: Record) -> bool {
        let Some(counter) = counter_from_code(rec.counter) else {
            self.wire.records_rejected += 1;
            return false;
        };
        let mut scratch = std::mem::take(&mut self.scratch);
        self.machine_entry(session, rec.machine_id).pipeline.ingest(
            counter,
            StreamSample {
                time_secs: rec.time_secs,
                value: rec.value,
            },
            &mut scratch,
        );
        self.scratch = scratch;
        self.enqueue(rec.machine_id);
        true
    }

    /// Applies one columnar batch — counters, the pipeline's slice-driven
    /// [`MachinePipeline::ingest_column`], release — and returns the
    /// accepted record count (`0` for an unknown counter code: a column
    /// carries one code, so rejection is all-or-nothing). Shared verbatim
    /// by the live wire path and [`ENTRY_COLUMN`] journal replay.
    fn apply_column(
        &mut self,
        session: u64,
        machine_id: u64,
        counter: u8,
        times: &[f64],
        values: &[f64],
    ) -> u16 {
        self.wire.batches += 1;
        let n = times.len().min(values.len());
        self.wire.records += n as u64;
        let Some(counter) = counter_from_code(counter) else {
            self.wire.records_rejected += n as u64;
            self.release();
            return 0;
        };
        let mut scratch = std::mem::take(&mut self.scratch);
        self.machine_entry(session, machine_id)
            .pipeline
            .ingest_column(counter, times, values, &mut scratch);
        self.scratch = scratch;
        self.enqueue(machine_id);
        self.release();
        n.min(usize::from(u16::MAX)) as u16
    }

    /// Applies one batch of records: counters, ingestion, release.
    /// Shared verbatim by the live wire path and journal replay, so a
    /// recovered engine reconstructs the exact same state (including the
    /// global emission sequence) the live run produced.
    fn apply_batch(&mut self, session: u64, records: &[Record], counts_batch: bool) -> u16 {
        if counts_batch {
            self.wire.batches += 1;
        }
        self.wire.records += records.len() as u64;
        let mut accepted = 0u16;
        for rec in records {
            if self.ingest(session, *rec) {
                accepted = accepted.saturating_add(1);
            }
        }
        self.release();
        accepted
    }

    /// Finishes one machine's feed (idempotent; shared by live path and
    /// journal replay).
    fn apply_finish(&mut self, machine_id: u64) {
        if let Some(entry) = self.machines.get_mut(&machine_id) {
            entry.pipeline.finish(&mut self.scratch);
            self.enqueue(machine_id);
        }
        self.release();
    }

    fn machine_done(&mut self, machine_id: u64) -> aging_store::Result<()> {
        self.apply_finish(machine_id);
        self.persist_finish(machine_id)
    }

    /// Finishes every machine the closing session was feeding, so a dead
    /// client cannot hold the global watermark hostage.
    fn session_closed(&mut self, session: u64) {
        let ids: Vec<u64> = self
            .machines
            .iter()
            .filter(|(_, e)| e.session == session && !e.pipeline.is_finished())
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            let entry = self.machines.get_mut(&id).expect("listed above");
            entry.pipeline.finish(&mut self.scratch);
            self.enqueue(id);
            // Best effort: there is no peer left to report a journal
            // failure to, and an unjournaled finish only re-opens the
            // feed on recovery (the resuming client finishes it again).
            let _ = self.persist_finish(id);
        }
        self.release();
    }

    // -- persistence ------------------------------------------------------

    /// Journals a record entry (no-op for a memory-only engine). Called
    /// *after* the records were applied and *before* the ack goes out.
    fn persist_records(&mut self, kind: u8, records: &[Record]) -> aging_store::Result<()> {
        let Some(store) = self.store.as_mut() else {
            return Ok(());
        };
        let mut payload = Vec::with_capacity(5 + records.len() * 25);
        persist::put_u8(&mut payload, kind);
        persist::put_u32(&mut payload, records.len() as u32);
        for rec in records {
            persist::put_u64(&mut payload, rec.machine_id);
            persist::put_u8(&mut payload, rec.counter);
            persist::put_u64(&mut payload, rec.time_secs.to_bits());
            persist::put_u64(&mut payload, rec.value.to_bits());
        }
        store.append(&payload)?;
        Ok(())
    }

    /// Journals a columnar batch (no-op for a memory-only engine) with
    /// its timestamps already expanded, so replay feeds
    /// [`Engine::apply_column`] the identical `f64` column. Called after
    /// apply, before the ack — same discipline as
    /// [`Engine::persist_records`].
    fn persist_column(
        &mut self,
        machine_id: u64,
        counter: u8,
        times: &[f64],
        values: &[f64],
    ) -> aging_store::Result<()> {
        let Some(store) = self.store.as_mut() else {
            return Ok(());
        };
        let n = times.len().min(values.len());
        let mut payload = Vec::with_capacity(14 + n * 16);
        persist::put_u8(&mut payload, ENTRY_COLUMN);
        persist::put_u64(&mut payload, machine_id);
        persist::put_u8(&mut payload, counter);
        persist::put_u32(&mut payload, n as u32);
        for (&t, &v) in times[..n].iter().zip(&values[..n]) {
            persist::put_u64(&mut payload, t.to_bits());
            persist::put_u64(&mut payload, v.to_bits());
        }
        store.append(&payload)?;
        Ok(())
    }

    /// Journals a feed-finish entry (no-op for a memory-only engine).
    fn persist_finish(&mut self, machine_id: u64) -> aging_store::Result<()> {
        let Some(store) = self.store.as_mut() else {
            return Ok(());
        };
        let mut payload = Vec::with_capacity(9);
        persist::put_u8(&mut payload, ENTRY_FINISH);
        persist::put_u64(&mut payload, machine_id);
        store.append(&payload)?;
        Ok(())
    }

    /// Commits a snapshot when the journal cadence says one is due. A
    /// failed commit is tolerated: the journal remains authoritative and
    /// recovery just replays a longer suffix.
    fn maybe_snapshot(&mut self) {
        if !self.store.as_ref().is_some_and(Store::snapshot_due) {
            return;
        }
        let blob = self.encode_snapshot_blob();
        if let Some(store) = self.store.as_mut() {
            let _ = store.commit_snapshot(&blob);
        }
    }

    /// Serialises the complete engine state — machines, pending heap,
    /// released history, sequence counters, wire counters — into one
    /// deterministic blob (pending events sorted by their release order).
    fn encode_snapshot_blob(&self) -> Vec<u8> {
        let mut out = Vec::new();
        persist::put_u8(&mut out, SNAPSHOT_VERSION);
        persist::put_u64(&mut out, self.machines.len() as u64);
        let mut state = Vec::new();
        for (&id, entry) in &self.machines {
            persist::put_u64(&mut out, id);
            persist::put_str(&mut out, &entry.name);
            state.clear();
            entry.pipeline.encode_state(&mut state);
            persist::put_bytes(&mut out, &state);
        }
        let mut pend: Vec<(&MergeKey, &ServeEvent)> = self.pending.iter().collect();
        pend.sort_by(|(a, _), (b, _)| {
            a.time_secs
                .total_cmp(&b.time_secs)
                .then_with(|| a.lane.cmp(&b.lane))
                .then_with(|| a.seq.cmp(&b.seq))
        });
        persist::put_u64(&mut out, pend.len() as u64);
        for (key, event) in pend {
            persist::put_u64(&mut out, key.seq);
            state.clear();
            encode_event(event, &mut state);
            persist::put_bytes(&mut out, &state);
        }
        persist::put_bytes(&mut out, &encode_events(&self.released));
        persist::put_u64(&mut out, self.seq);
        persist::put_u64(&mut out, self.status_seq);
        persist::put_u64(&mut out, self.warnings);
        persist::put_u64(&mut out, self.alarms);
        let w = &self.wire;
        for v in [
            w.connections,
            w.sessions_closed,
            w.text_sessions,
            w.frames,
            w.batches,
            w.records,
            w.records_rejected,
            w.acks_sent,
            w.busy_sent,
            w.malformed_frames,
            w.corrupt_streams,
            w.quarantined,
            w.session_panics,
            w.queries,
        ] {
            persist::put_u64(&mut out, v);
        }
        out
    }

    /// Rebuilds the engine from a snapshot blob. Restored machines carry
    /// session id 0 (live sessions start at 1), so no running session
    /// owns them until a resuming client sends its next record.
    fn restore_snapshot(&mut self, blob: &[u8]) -> std::result::Result<(), String> {
        fn ps<T>(r: Result<T>) -> std::result::Result<T, String> {
            r.map_err(|e| e.to_string())
        }
        let mut r = persist::Reader::new(blob);
        let version = ps(r.u8())?;
        if version != SNAPSHOT_VERSION {
            return Err(format!("unsupported snapshot version {version}"));
        }
        let machines = ps(r.u64())?;
        self.machines.clear();
        for _ in 0..machines {
            let id = ps(r.u64())?;
            let name = ps(r.str_())?;
            let state = ps(r.bytes())?;
            let mut pipeline = MachinePipeline::new(&self.detectors, self.fusion, self.gate)
                .map_err(|e| e.to_string())?;
            let mut sr = persist::Reader::new(state);
            pipeline.restore_state(&mut sr).map_err(|e| e.to_string())?;
            ps(sr.finish())?;
            self.machines.insert(
                id,
                MachineEntry {
                    name,
                    pipeline,
                    session: 0,
                },
            );
        }
        let pending = ps(r.u64())?;
        self.pending = WatermarkMerger::new(1);
        for _ in 0..pending {
            let seq = ps(r.u64())?;
            let bytes = ps(r.bytes())?;
            let mut er = EventReader::new(bytes);
            let event = decode_event(&mut er)?;
            if er.remaining() != 0 {
                return Err("trailing bytes after pending event".into());
            }
            self.pending.push(
                MergeKey {
                    time_secs: event.time_secs,
                    lane: event.machine_id,
                    seq,
                },
                event,
            );
        }
        self.released = decode_events(ps(r.bytes())?)?;
        self.seq = ps(r.u64())?;
        self.status_seq = ps(r.u64())?;
        self.warnings = ps(r.u64())?;
        self.alarms = ps(r.u64())?;
        let mut w = WireCounters::default();
        for field in [
            &mut w.connections,
            &mut w.sessions_closed,
            &mut w.text_sessions,
            &mut w.frames,
            &mut w.batches,
            &mut w.records,
            &mut w.records_rejected,
            &mut w.acks_sent,
            &mut w.busy_sent,
            &mut w.malformed_frames,
            &mut w.corrupt_streams,
            &mut w.quarantined,
            &mut w.session_panics,
            &mut w.queries,
        ] {
            *field = ps(r.u64())?;
        }
        self.wire = w;
        ps(r.finish())?;
        Ok(())
    }

    /// Replays one journal entry through the same `apply_*` paths the
    /// live wire uses.
    fn apply_journal_entry(&mut self, payload: &[u8]) -> std::result::Result<(), String> {
        fn ps<T>(r: Result<T>) -> std::result::Result<T, String> {
            r.map_err(|e| e.to_string())
        }
        let mut r = persist::Reader::new(payload);
        let kind = ps(r.u8())?;
        match kind {
            ENTRY_BATCH | ENTRY_TEXT => {
                let n = ps(r.u32())?;
                let mut records = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let machine_id = ps(r.u64())?;
                    let counter = ps(r.u8())?;
                    let time_secs = f64::from_bits(ps(r.u64())?);
                    let value = f64::from_bits(ps(r.u64())?);
                    records.push(Record {
                        machine_id,
                        counter,
                        time_secs,
                        value,
                    });
                }
                ps(r.finish())?;
                self.apply_batch(0, &records, kind == ENTRY_BATCH);
            }
            ENTRY_COLUMN => {
                let machine_id = ps(r.u64())?;
                let counter = ps(r.u8())?;
                let n = ps(r.u32())? as usize;
                let mut times = Vec::with_capacity(n);
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    times.push(f64::from_bits(ps(r.u64())?));
                    values.push(f64::from_bits(ps(r.u64())?));
                }
                ps(r.finish())?;
                self.apply_column(0, machine_id, counter, &times, &values);
            }
            ENTRY_FINISH => {
                let machine_id = ps(r.u64())?;
                ps(r.finish())?;
                self.apply_finish(machine_id);
            }
            other => return Err(format!("unknown journal entry kind {other}")),
        }
        Ok(())
    }

    /// Rebuilds engine state from what [`Store::open`] found on disk:
    /// snapshot first (if any), then the surviving journal suffix in
    /// entry order.
    fn recover(&mut self, recovery: &Recovery) -> std::result::Result<(), String> {
        if let Some(blob) = &recovery.snapshot {
            self.restore_snapshot(blob)
                .map_err(|e| format!("snapshot: {e}"))?;
        }
        for entry in &recovery.entries {
            self.apply_journal_entry(&entry.payload)
                .map_err(|e| format!("journal entry {}: {e}", entry.id))?;
        }
        Ok(())
    }

    fn persist_stats(&self) -> Option<PersistStats> {
        self.store.as_ref().map(|s| PersistStats {
            entries_journaled: s.last_entry_id(),
            journal_appended_bytes: s.appended_bytes(),
            snapshots_committed: s.snapshots_committed(),
        })
    }

    /// Moves every pending event at or below the fleet watermark (the
    /// minimum completed tick over unfinished machines) into the
    /// released history.
    fn release(&mut self) {
        // With a fleet-size expectation, the watermark is meaningless
        // until everyone has checked in — a machine the server has never
        // heard from cannot hold it down.
        if self
            .expected_machines
            .is_some_and(|n| (self.machines.len() as u64) < n)
        {
            return;
        }
        // No expectation and no machine yet: an empty minimum would read
        // as +inf, which is not a promise this server can keep (the first
        // feeder may start anywhere in time). Keep the frontier at -inf.
        if self.machines.is_empty() && self.expected_machines.is_none() {
            return;
        }
        let watermark = self
            .machines
            .values()
            .filter(|e| !e.pipeline.is_finished())
            .map(|e| e.pipeline.completed_time_secs())
            .fold(f64::INFINITY, f64::min);
        // The merger keeps the running maximum, so a recovered engine
        // (whose pipelines replay from an older completed tick) cannot
        // regress the advertised frontier.
        self.pending.advance(0, watermark);
        while let Some(event) = self.pending.pop_ready() {
            match event.level {
                AlertLevel::Warning => self.warnings += 1,
                AlertLevel::Alarm => self.alarms += 1,
            }
            self.released.push(event);
        }
    }

    /// The release frontier advertised in `AlarmsReply`: all released
    /// events at or below it are already in `released`, and no future
    /// release will be at or below it. `-inf` while the expected-machines
    /// hold is active (or nothing registered); `+inf` once every known
    /// feed has finished — the per-shard drain barrier.
    fn advertised_watermark(&self) -> f64 {
        self.pending.frontier()
    }

    /// Finishes every feed and releases everything — shutdown drain.
    fn drain_all(&mut self) {
        // The drain must empty the heap even if fewer machines than
        // expected ever showed up.
        self.expected_machines = None;
        let ids: Vec<u64> = self.machines.keys().copied().collect();
        for id in ids {
            let entry = self.machines.get_mut(&id).expect("listed above");
            entry.pipeline.finish(&mut self.scratch);
            self.enqueue(id);
        }
        self.release();
        debug_assert!(self.pending.is_empty());
    }

    fn snapshot(&mut self) -> Snapshot {
        self.status_seq += 1;
        let mut ingestion = StageCounters::default();
        let mut latency = LatencyHistogram::default();
        let mut detector_errors = 0u64;
        let mut live = 0usize;
        let mut finished = 0usize;
        let mut t = 0.0f64;
        for e in self.machines.values() {
            ingestion.merge(&e.pipeline.counters());
            latency.merge(e.pipeline.latency());
            detector_errors += e.pipeline.detector_errors();
            if e.pipeline.is_finished() {
                finished += 1;
            } else {
                live += 1;
            }
            let machine_t = e
                .pipeline
                .tick_time_secs()
                .unwrap_or_else(|| e.pipeline.completed_time_secs());
            if machine_t.is_finite() {
                t = t.max(machine_t);
            }
        }
        Snapshot {
            sequence: self.status_seq,
            stream_time_secs: t,
            machines_live: live,
            machines_finished: finished,
            ingestion,
            detector_latency: latency,
            warnings_emitted: self.warnings,
            alarms_emitted: self.alarms,
            alarm_queue_depth: self.pending.len(),
            telemetry_dropped: 0,
            // The serve tier observes; restarts are issued by the
            // stream supervisor's closed loop, never by this engine.
            restarts_granted: 0,
            restarts_denied: 0,
            detector_errors,
        }
    }

    fn machine_snapshot(&self, machine_id: u64) -> Option<MachineSnapshot> {
        self.machines
            .get(&machine_id)
            .map(|e| e.pipeline.snapshot(machine_id, &e.name))
    }

    /// Shadow rejuvenation advisory for one machine: replays the
    /// configured policy over the machine's released alarm history
    /// through a real [`RejuvController`] and reports
    /// `(policy code, restarts, denied, last restart time)`. `None`
    /// when the machine is unknown. Purely observational — nothing is
    /// restarted; operators use this to vet a policy against live
    /// alarms before enabling it in the supervisor's closed loop.
    fn rejuv_advice(&self, machine_id: u64) -> Option<(u8, u64, u64, Option<f64>)> {
        let entry = self.machines.get(&machine_id)?;
        let Some(cfg) = self.rejuv else {
            return Some((RejuvPolicy::None.code(), 0, 0, None));
        };
        // Validated at bind time, so construction cannot fail here.
        let mut controller = RejuvController::new(cfg, 1).expect("rejuv config validated at bind");
        match cfg.policy {
            RejuvPolicy::None => {}
            RejuvPolicy::Periodic { period_secs } => {
                // One request per elapsed interval up to the machine's
                // completed tick (what the cron-style baseline would
                // have done by now).
                let end = entry
                    .pipeline
                    .tick_time_secs()
                    .unwrap_or_else(|| entry.pipeline.completed_time_secs());
                if end.is_finite() {
                    let mut t = period_secs;
                    while t <= end {
                        let _ = controller.decide(&RestartRequest {
                            machine_index: 0,
                            time_secs: t,
                            reason: RestartReason::Periodic,
                        });
                        t += period_secs;
                    }
                }
            }
            RejuvPolicy::AlarmTriggered => {
                for event in &self.released {
                    if event.machine_id == machine_id
                        && matches!(event.kind, AlarmKind::MachineAlarm { .. })
                    {
                        let _ = controller.decide(&RestartRequest {
                            machine_index: 0,
                            time_secs: event.time_secs,
                            reason: RestartReason::Alarm,
                        });
                    }
                }
            }
        }
        Some((
            cfg.policy.code(),
            controller.granted(),
            controller.denied_cooldown() + controller.denied_budget(),
            controller.last_restart_secs(0),
        ))
    }

    /// Latest streaming Δα per counter for one machine, in wire form
    /// (counter code, width). `None` when the machine is unknown.
    fn spectrum_widths(&self, machine_id: u64) -> Option<Vec<(u8, f64)>> {
        self.machines.get(&machine_id).map(|e| {
            e.pipeline
                .spectrum_widths()
                .into_iter()
                .map(|(counter, width)| (counter_code(counter), width))
                .collect()
        })
    }

    fn status_json(&mut self) -> String {
        let status = ServeStatus {
            wire: self.wire,
            fleet: self.snapshot(),
        };
        serde_json::to_string(&status).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    fn alarms_since(&self, since: u64, chunk: u16) -> (u64, Vec<ServeEvent>) {
        let total = self.released.len() as u64;
        let start = since.min(total) as usize;
        let end = (start + usize::from(chunk)).min(self.released.len());
        (total, self.released[start..end].to_vec())
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

struct Shared {
    cfg: ServeConfig,
    engine: Mutex<Engine>,
    shutdown: AtomicBool,
    /// Crash simulation: like `shutdown` but sessions stop *without*
    /// finishing feeds or counting closes — the state left behind is
    /// exactly what a killed process would leave.
    aborted: AtomicBool,
}

impl Shared {
    /// Locks the engine, recovering from poisoning: a panicked session
    /// (already counted) must not take the whole server down with it.
    fn engine(&self) -> MutexGuard<'_, Engine> {
        match self.engine.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A running ingestion/query server.
///
/// Bind with [`Server::bind`], connect clients to [`Server::local_addr`],
/// and call [`Server::shutdown`] to drain and collect the
/// [`ServeReport`].
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<Vec<std::thread::JoinHandle<()>>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener (use `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeConfig::validate`] failures and socket errors
    /// (as [`Error::Io`]).
    pub fn bind(addr: &str, cfg: ServeConfig) -> Result<Server> {
        cfg.validate()?;
        let mut engine = Engine::new(&cfg);
        if let Some(store_cfg) = &cfg.store {
            let (store, recovery) = Store::open(store_cfg.clone())
                .map_err(|e| Error::Io(format!("store open: {e}")))?;
            engine
                .recover(&recovery)
                .map_err(|e| Error::Io(format!("store recovery: {e}")))?;
            engine.store = Some(store);
        }
        let listener = TcpListener::bind(addr).map_err(io_err)?;
        listener.set_nonblocking(true).map_err(io_err)?;
        let local_addr = listener.local_addr().map_err(io_err)?;
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            cfg,
            shutdown: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(&accept_shared, &listener))
            .map_err(io_err)?;
        Ok(Server {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A live status document (same schema as the wire query reply).
    pub fn status(&self) -> ServeStatus {
        let mut engine = self.shared.engine();
        ServeStatus {
            wire: engine.wire,
            fleet: engine.snapshot(),
        }
    }

    /// Number of alarm-history events released so far.
    pub fn released_events(&self) -> usize {
        self.shared.engine().released.len()
    }

    /// Live durability counters, `None` for a memory-only server.
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.shared.engine().persist_stats()
    }

    /// Kills the server as a crash simulation: sessions stop immediately
    /// without acking buffered batches, finishing feeds, or draining the
    /// pending heap. Nothing is reported — whatever survives lives in
    /// the persistent store, and a subsequent [`Server::bind`] with the
    /// same [`ServeConfig::store`] must reconstruct it.
    pub fn abort(mut self) {
        self.shared.aborted.store(true, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            if let Ok(sessions) = accept.join() {
                for handle in sessions {
                    let _ = handle.join();
                }
            }
        }
    }

    /// Stops accepting, lets every session drain its buffered frames,
    /// finishes all feeds and returns the full report. Alarms from every
    /// acked batch are present — acks are only sent after the batch has
    /// been ingested by the engine.
    pub fn shutdown(mut self) -> ServeReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            match accept.join() {
                Ok(sessions) => {
                    for handle in sessions {
                        let _ = handle.join();
                    }
                }
                Err(_) => {
                    self.shared.engine().wire.session_panics += 1;
                }
            }
        }
        let mut engine = self.shared.engine();
        engine.drain_all();
        let machines = engine
            .machines
            .iter()
            .map(|(&id, e)| e.pipeline.snapshot(id, &e.name))
            .collect();
        ServeReport {
            events: std::mem::take(&mut engine.released),
            status: engine.snapshot(),
            wire: engine.wire,
            machines,
            persist: engine.persist_stats(),
        }
    }
}

/// In-process ingestion: a [`Server`] is itself an [`IngestSink`], so
/// feeders written against the trait can target the serve engine
/// directly — same apply/journal paths as the wire (records journal as
/// text-mode entries, columns as [`ENTRY_COLUMN`]), no socket. Samples
/// enter under session id `0` (no live session owns the machines), and
/// every call upholds the durability discipline: an `Ok` return means
/// the samples are applied *and* journaled.
impl IngestSink for Server {
    type Error = Error;

    fn ingest_record(
        &mut self,
        machine_id: u64,
        counter: Counter,
        time_secs: f64,
        value: f64,
    ) -> Result<()> {
        let rec = Record {
            machine_id,
            counter: counter_code(counter),
            time_secs,
            value,
        };
        let mut engine = self.shared.engine();
        engine.apply_batch(0, std::slice::from_ref(&rec), false);
        engine
            .persist_records(ENTRY_TEXT, std::slice::from_ref(&rec))
            .map_err(|e| Error::Io(format!("journal append failed: {e}")))?;
        engine.maybe_snapshot();
        Ok(())
    }

    fn ingest_column(
        &mut self,
        machine_id: u64,
        counter: Counter,
        times: &[f64],
        values: &[f64],
    ) -> Result<()> {
        let mut engine = self.shared.engine();
        engine.apply_column(0, machine_id, counter_code(counter), times, values);
        engine
            .persist_column(machine_id, counter_code(counter), times, values)
            .map_err(|e| Error::Io(format!("journal append failed: {e}")))?;
        engine.maybe_snapshot();
        Ok(())
    }

    fn machine_done(&mut self, machine_id: u64) -> Result<()> {
        let mut engine = self.shared.engine();
        engine
            .machine_done(machine_id)
            .map_err(|e| Error::Io(format!("journal append failed: {e}")))?;
        engine.maybe_snapshot();
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> Error {
    Error::Io(e.to_string())
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) -> Vec<std::thread::JoinHandle<()>> {
    let mut sessions = Vec::new();
    let mut session_id = 0u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                session_id += 1;
                let id = session_id;
                shared.engine().wire.connections += 1;
                let session_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(format!("serve-session-{id}"))
                    .spawn(move || session_thread(&session_shared, &stream, id));
                match handle {
                    Ok(h) => sessions.push(h),
                    Err(_) => {
                        shared.engine().wire.sessions_closed += 1;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    sessions
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// Why a session ended.
enum SessionEnd {
    /// Clean close (EOF, `Bye`, shutdown, idle timeout).
    Clean,
    /// The peer was quarantined; `corrupt` marks lost framing integrity
    /// (vs. a strike threshold reached on intact frames).
    Quarantined { corrupt: bool },
}

fn session_thread(shared: &Arc<Shared>, stream: &TcpStream, session_id: u64) {
    let end = catch_unwind(AssertUnwindSafe(|| run_session(shared, stream, session_id)));
    if shared.aborted.load(Ordering::SeqCst) {
        // Crash simulation: no close accounting, no feed finishing —
        // the machines this session fed stay unfinished, exactly as a
        // killed process would leave them.
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let mut engine = shared.engine();
    match end {
        Ok(SessionEnd::Clean) => {}
        Ok(SessionEnd::Quarantined { corrupt }) => {
            engine.wire.quarantined += 1;
            if corrupt {
                engine.wire.corrupt_streams += 1;
            }
        }
        Err(_) => {
            engine.wire.session_panics += 1;
            engine.wire.quarantined += 1;
        }
    }
    engine.session_closed(session_id);
    engine.wire.sessions_closed += 1;
    drop(engine);
    let _ = stream.shutdown(Shutdown::Both);
}

fn send_frame(mut stream: &TcpStream, frame: &Frame) -> std::io::Result<()> {
    stream.write_all(&encode_frame(frame))
}

fn send_line(mut stream: &TcpStream, line: &str) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(line.len() + 1);
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
    stream.write_all(&out)
}

enum ReadOutcome {
    Data(usize),
    Eof,
    Timeout,
    Err,
}

fn read_some(mut stream: &TcpStream, buf: &mut [u8]) -> ReadOutcome {
    match stream.read(buf) {
        Ok(0) => ReadOutcome::Eof,
        Ok(n) => ReadOutcome::Data(n),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            ReadOutcome::Timeout
        }
        Err(_) => ReadOutcome::Err,
    }
}

/// Reads the first bytes, decides binary vs text mode, then runs the
/// session to completion.
fn run_session(shared: &Arc<Shared>, stream: &TcpStream, session_id: u64) -> SessionEnd {
    let cfg = &shared.cfg;
    let poll = Duration::from_millis(cfg.read_poll_ms.max(1));
    let stall = Duration::from_millis(cfg.stall_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(poll));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms.max(1))));
    let _ = stream.set_nodelay(true);

    // Mode detection: accumulate until the prefix diverges from the text
    // preamble or covers it entirely.
    let mut first = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    let started = Instant::now();
    let is_text = loop {
        let matched = first
            .iter()
            .zip(TEXT_PREAMBLE.iter())
            .take_while(|(a, b)| a == b)
            .count();
        if matched < first.len().min(TEXT_PREAMBLE.len()) {
            break false; // diverged: binary framing
        }
        if first.len() >= TEXT_PREAMBLE.len() {
            break true; // full preamble matched
        }
        match read_some(stream, &mut buf) {
            ReadOutcome::Data(n) => first.extend_from_slice(&buf[..n]),
            ReadOutcome::Eof => return SessionEnd::Clean, // nothing useful sent
            ReadOutcome::Timeout => {
                if shared.shutdown.load(Ordering::SeqCst) || started.elapsed() >= stall {
                    return SessionEnd::Clean;
                }
            }
            ReadOutcome::Err => return SessionEnd::Clean,
        }
    };

    if is_text {
        shared.engine().wire.text_sessions += 1;
        let rest = first[TEXT_PREAMBLE.len()..].to_vec();
        run_text_session(shared, stream, session_id, &rest, &mut buf)
    } else {
        run_binary_session(shared, stream, session_id, &first, &mut buf)
    }
}

enum FrameOutcome {
    Continue,
    Close,
    /// An intact frame that violates session rules (e.g. a columnar
    /// batch on a v1-negotiated session): reported like a malformed
    /// payload, counting a strike.
    Malformed(String),
}

/// Per-session mutable state for a binary session.
struct SessionState {
    /// Negotiated protocol version. Starts at [`PROTOCOL_VERSION`] (v1)
    /// so a client that skips `Hello` gets baseline semantics; the
    /// handshake raises it to `min(client, PROTOCOL_VERSION_V2)`.
    version: u8,
    /// Reused expansion buffer for columnar timestamps.
    times: Vec<f64>,
}

fn run_binary_session(
    shared: &Arc<Shared>,
    stream: &TcpStream,
    session_id: u64,
    initial: &[u8],
    buf: &mut [u8],
) -> SessionEnd {
    let cfg = &shared.cfg;
    let stall = Duration::from_millis(cfg.stall_timeout_ms.max(1));
    let mut dec = FrameDecoder::new(cfg.max_frame_bytes);
    dec.feed(initial);
    maybe_busy(shared, stream, &dec);
    let mut sess = SessionState {
        version: PROTOCOL_VERSION,
        times: Vec::new(),
    };
    let mut strikes = 0u32;
    let mut last_activity = Instant::now();

    loop {
        // Drain every complete frame currently buffered.
        loop {
            match dec.next_payload_ref() {
                Err(corrupt) => {
                    let _ = send_frame(
                        stream,
                        &Frame::Error {
                            code: ERR_QUARANTINED,
                            message: corrupt.reason,
                        },
                    );
                    return SessionEnd::Quarantined { corrupt: true };
                }
                Ok(None) => break,
                Ok(Some(payload)) => {
                    shared.engine().wire.frames += 1;
                    match Frame::decode_payload(payload) {
                        Err(reason) => {
                            strikes += 1;
                            shared.engine().wire.malformed_frames += 1;
                            let _ = send_frame(
                                stream,
                                &Frame::Error {
                                    code: ERR_MALFORMED,
                                    message: reason,
                                },
                            );
                            if strikes >= cfg.quarantine_after {
                                let _ = send_frame(
                                    stream,
                                    &Frame::Error {
                                        code: ERR_QUARANTINED,
                                        message: format!("{strikes} consecutive malformed frames"),
                                    },
                                );
                                return SessionEnd::Quarantined { corrupt: false };
                            }
                        }
                        Ok(frame) => {
                            match handle_frame(shared, stream, session_id, &mut sess, frame) {
                                FrameOutcome::Continue => strikes = 0,
                                FrameOutcome::Close => return SessionEnd::Clean,
                                FrameOutcome::Malformed(reason) => {
                                    strikes += 1;
                                    shared.engine().wire.malformed_frames += 1;
                                    let _ = send_frame(
                                        stream,
                                        &Frame::Error {
                                            code: ERR_MALFORMED,
                                            message: reason,
                                        },
                                    );
                                    if strikes >= cfg.quarantine_after {
                                        let _ = send_frame(
                                            stream,
                                            &Frame::Error {
                                                code: ERR_QUARANTINED,
                                                message: format!(
                                                    "{strikes} consecutive malformed frames"
                                                ),
                                            },
                                        );
                                        return SessionEnd::Quarantined { corrupt: false };
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        match read_some(stream, buf) {
            ReadOutcome::Data(n) => {
                last_activity = Instant::now();
                dec.feed(&buf[..n]);
                maybe_busy(shared, stream, &dec);
            }
            ReadOutcome::Eof => {
                // All complete frames were processed above; dying with a
                // partial frame on the wire is a truncation.
                if dec.mid_frame() {
                    return SessionEnd::Quarantined { corrupt: true };
                }
                return SessionEnd::Clean;
            }
            ReadOutcome::Timeout => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Graceful drain: everything buffered was already
                    // processed and acked before we got here.
                    return SessionEnd::Clean;
                }
                if last_activity.elapsed() >= stall {
                    if dec.mid_frame() {
                        return SessionEnd::Quarantined { corrupt: true };
                    }
                    return SessionEnd::Clean;
                }
            }
            ReadOutcome::Err => return SessionEnd::Clean,
        }
    }
}

/// Sends an advisory `Busy` frame when a read burst left more complete
/// frames buffered than the advertised credit window.
fn maybe_busy(shared: &Arc<Shared>, stream: &TcpStream, dec: &FrameDecoder) {
    let backlog = dec.buffered_frames();
    if backlog > u32::from(shared.cfg.window) {
        let _ = send_frame(stream, &Frame::Busy { backlog });
        shared.engine().wire.busy_sent += 1;
    }
}

fn handle_frame(
    shared: &Arc<Shared>,
    stream: &TcpStream,
    session_id: u64,
    sess: &mut SessionState,
    frame: Frame,
) -> FrameOutcome {
    let cfg = &shared.cfg;
    if shared.aborted.load(Ordering::SeqCst) {
        // Crashing: stop processing buffered frames mid-stream so the
        // kill point lands between batches, not at a frame boundary the
        // graceful drain would have chosen.
        return FrameOutcome::Close;
    }
    match frame {
        Frame::Hello { version, name: _ } => {
            if version < PROTOCOL_VERSION {
                let _ = send_frame(
                    stream,
                    &Frame::Error {
                        code: ERR_VERSION,
                        message: format!(
                            "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION}..={PROTOCOL_VERSION_V2})"
                        ),
                    },
                );
                return FrameOutcome::Close;
            }
            // Negotiate down to the highest version both sides speak; a
            // future client above v2 is served at v2.
            sess.version = version.min(PROTOCOL_VERSION_V2);
            let _ = send_frame(
                stream,
                &Frame::HelloAck {
                    version: sess.version,
                    window: cfg.window,
                    max_frame: cfg.max_frame_bytes,
                },
            );
            FrameOutcome::Continue
        }
        Frame::Batch { seq, records } => {
            // Apply, then journal, then ack — all under one engine lock,
            // so the journal is a linearisation of engine mutations and
            // an acked batch is always durable. A journal failure closes
            // the session *without* acking: the client re-sends and the
            // gates dedup any records that did reach the journal.
            let outcome = {
                let mut engine = shared.engine();
                let accepted = engine.apply_batch(session_id, &records, true);
                match engine.persist_records(ENTRY_BATCH, &records) {
                    Ok(()) => {
                        engine.maybe_snapshot();
                        engine.wire.acks_sent += 1;
                        Ok(accepted)
                    }
                    Err(e) => Err(e.to_string()),
                }
            };
            match outcome {
                Ok(accepted) => {
                    let _ = send_frame(stream, &Frame::Ack { seq, accepted });
                    FrameOutcome::Continue
                }
                Err(msg) => {
                    let _ = send_frame(
                        stream,
                        &Frame::Error {
                            code: ERR_STORE,
                            message: format!("journal append failed: {msg}"),
                        },
                    );
                    FrameOutcome::Close
                }
            }
        }
        Frame::BatchColumnar {
            seq,
            machine_id,
            counter,
            t0,
            dt_units,
            values,
        } => {
            // Columnar frames are a v2 capability; on a v1 session they
            // are intact-but-invalid, i.e. a strike, not a quarantine.
            if sess.version < PROTOCOL_VERSION_V2 {
                return FrameOutcome::Malformed(format!(
                    "columnar batch requires protocol v{PROTOCOL_VERSION_V2} (session negotiated v{})",
                    sess.version
                ));
            }
            expand_column_times(t0, &dt_units, &mut sess.times);
            // Same apply → journal → ack discipline as `Frame::Batch`.
            let outcome = {
                let mut engine = shared.engine();
                let accepted =
                    engine.apply_column(session_id, machine_id, counter, &sess.times, &values);
                match engine.persist_column(machine_id, counter, &sess.times, &values) {
                    Ok(()) => {
                        engine.maybe_snapshot();
                        engine.wire.acks_sent += 1;
                        Ok(accepted)
                    }
                    Err(e) => Err(e.to_string()),
                }
            };
            match outcome {
                Ok(accepted) => {
                    let _ = send_frame(stream, &Frame::Ack { seq, accepted });
                    FrameOutcome::Continue
                }
                Err(msg) => {
                    let _ = send_frame(
                        stream,
                        &Frame::Error {
                            code: ERR_STORE,
                            message: format!("journal append failed: {msg}"),
                        },
                    );
                    FrameOutcome::Close
                }
            }
        }
        Frame::MachineDone { machine_id } => {
            let res = {
                let mut engine = shared.engine();
                let res = engine.machine_done(machine_id);
                if res.is_ok() {
                    engine.maybe_snapshot();
                }
                res
            };
            match res {
                Ok(()) => FrameOutcome::Continue,
                Err(e) => {
                    let _ = send_frame(
                        stream,
                        &Frame::Error {
                            code: ERR_STORE,
                            message: format!("journal append failed: {e}"),
                        },
                    );
                    FrameOutcome::Close
                }
            }
        }
        Frame::QueryStatus => {
            let json = {
                let mut engine = shared.engine();
                engine.wire.queries += 1;
                engine.status_json()
            };
            let _ = send_frame(stream, &Frame::StatusReply { json });
            FrameOutcome::Continue
        }
        Frame::QueryMachine { machine_id } => {
            let json = {
                let mut engine = shared.engine();
                engine.wire.queries += 1;
                engine.machine_snapshot(machine_id).map(|snap| {
                    serde_json::to_string(&snap)
                        .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
                })
            };
            let _ = send_frame(stream, &Frame::MachineReply { json });
            FrameOutcome::Continue
        }
        Frame::QuerySpectrum { machine_id } => {
            // Spectrum queries are a v2 capability; on a v1 session they
            // are intact-but-invalid, i.e. a strike, not a quarantine.
            if sess.version < PROTOCOL_VERSION_V2 {
                return FrameOutcome::Malformed(format!(
                    "spectrum query requires protocol v{PROTOCOL_VERSION_V2} (session negotiated v{})",
                    sess.version
                ));
            }
            let widths = {
                let mut engine = shared.engine();
                engine.wire.queries += 1;
                engine.spectrum_widths(machine_id)
            };
            let known = widths.is_some();
            let _ = send_frame(
                stream,
                &Frame::SpectrumReply {
                    machine_id,
                    known,
                    widths: widths.unwrap_or_default(),
                },
            );
            FrameOutcome::Continue
        }
        Frame::QueryRejuv { machine_id } => {
            // Rejuv queries are a v2 capability; on a v1 session they
            // are intact-but-invalid, i.e. a strike, not a quarantine.
            if sess.version < PROTOCOL_VERSION_V2 {
                return FrameOutcome::Malformed(format!(
                    "rejuv query requires protocol v{PROTOCOL_VERSION_V2} (session negotiated v{})",
                    sess.version
                ));
            }
            let advice = {
                let mut engine = shared.engine();
                engine.wire.queries += 1;
                // Release first so the advisory sees the freshest
                // watermark-complete history (same discipline as
                // `QueryAlarms`).
                engine.release();
                engine.rejuv_advice(machine_id)
            };
            let known = advice.is_some();
            let (policy, restarts, denied, last_restart_secs) = advice.unwrap_or((0, 0, 0, None));
            let _ = send_frame(
                stream,
                &Frame::RejuvReply {
                    machine_id,
                    known,
                    policy,
                    restarts,
                    denied,
                    last_restart_secs,
                },
            );
            FrameOutcome::Continue
        }
        Frame::QueryAlarms { since } => {
            // `total` and the advertised watermark are read under one
            // engine lock, so together they form a consistent promise:
            // every released event at or below the watermark is within
            // the first `total` events.
            let (total, watermark_secs, events) = {
                let mut engine = shared.engine();
                engine.wire.queries += 1;
                engine.release();
                let (total, events) = engine.alarms_since(since, cfg.alarm_chunk);
                (total, engine.advertised_watermark(), events)
            };
            let _ = send_frame(
                stream,
                &Frame::AlarmsReply {
                    since,
                    total,
                    shard: cfg.shard_id,
                    watermark_secs,
                    events,
                },
            );
            FrameOutcome::Continue
        }
        Frame::Bye => {
            // Finish this session's feeds *before* acking, so `ByeAck`
            // is a barrier: once the client sees it, every event its
            // records produced has been released (or awaits only other
            // sessions' watermarks).
            shared.engine().session_closed(session_id);
            let _ = send_frame(stream, &Frame::ByeAck);
            FrameOutcome::Close
        }
        // Server-to-client frames arriving at the server are protocol
        // violations carried by intact frames: report and continue.
        Frame::HelloAck { .. }
        | Frame::Ack { .. }
        | Frame::Busy { .. }
        | Frame::StatusReply { .. }
        | Frame::MachineReply { .. }
        | Frame::AlarmsReply { .. }
        | Frame::SpectrumReply { .. }
        | Frame::RejuvReply { .. }
        | Frame::ByeAck
        | Frame::Error { .. } => {
            let _ = send_frame(
                stream,
                &Frame::Error {
                    code: ERR_MALFORMED,
                    message: "unexpected server-side frame".into(),
                },
            );
            FrameOutcome::Continue
        }
    }
}

// ---------------------------------------------------------------------------
// Text sessions
// ---------------------------------------------------------------------------

fn render_event_text(event: &ServeEvent) -> String {
    let level = match event.level {
        AlertLevel::Warning => "warning",
        AlertLevel::Alarm => "alarm",
    };
    match event.kind {
        AlarmKind::Detector {
            counter, detector, ..
        } => format!(
            "event {} {:.3} {} detector {} {}",
            event.machine_id, event.time_secs, level, counter, detector
        ),
        AlarmKind::MachineAlarm { votes, members } => format!(
            "event {} {:.3} {} machine-alarm {}/{}",
            event.machine_id, event.time_secs, level, votes, members
        ),
        AlarmKind::Restart {
            reason,
            downtime_secs,
        } => format!(
            "event {} {:.3} {} restart {} {:.0}s",
            event.machine_id,
            event.time_secs,
            level,
            reason.name(),
            downtime_secs
        ),
    }
}

fn run_text_session(
    shared: &Arc<Shared>,
    stream: &TcpStream,
    session_id: u64,
    initial: &[u8],
    buf: &mut [u8],
) -> SessionEnd {
    let cfg = &shared.cfg;
    let stall = Duration::from_millis(cfg.stall_timeout_ms.max(1));
    let mut acc: Vec<u8> = initial.to_vec();
    let mut strikes = 0u32;
    let mut last_activity = Instant::now();

    loop {
        while let Some(nl) = acc.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = acc.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line_bytes[..nl]);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match parse_text_line(line) {
                Err(reason) => {
                    strikes += 1;
                    shared.engine().wire.malformed_frames += 1;
                    let _ = send_line(stream, &format!("err {reason}"));
                    if strikes >= cfg.quarantine_after {
                        let _ = send_line(stream, "err quarantined");
                        return SessionEnd::Quarantined { corrupt: false };
                    }
                }
                Ok(cmd) => {
                    strikes = 0;
                    match handle_text(shared, stream, session_id, cmd) {
                        // Text commands have no version-gated frames.
                        FrameOutcome::Continue | FrameOutcome::Malformed(_) => {}
                        FrameOutcome::Close => return SessionEnd::Clean,
                    }
                }
            }
        }
        // Unbounded-line guard: a peer that never sends a newline would
        // otherwise grow the accumulator forever.
        if acc.len() > cfg.max_frame_bytes as usize {
            let _ = send_line(stream, "err line too long");
            return SessionEnd::Quarantined { corrupt: true };
        }

        match read_some(stream, buf) {
            ReadOutcome::Data(n) => {
                last_activity = Instant::now();
                acc.extend_from_slice(&buf[..n]);
            }
            ReadOutcome::Eof => return SessionEnd::Clean,
            ReadOutcome::Timeout => {
                if shared.shutdown.load(Ordering::SeqCst) || last_activity.elapsed() >= stall {
                    return SessionEnd::Clean;
                }
            }
            ReadOutcome::Err => return SessionEnd::Clean,
        }
    }
}

fn handle_text(
    shared: &Arc<Shared>,
    stream: &TcpStream,
    session_id: u64,
    cmd: TextCommand,
) -> FrameOutcome {
    if shared.aborted.load(Ordering::SeqCst) {
        return FrameOutcome::Close;
    }
    match cmd {
        TextCommand::Hello { .. } => {
            let _ = send_line(stream, &format!("ok aging-serve v{PROTOCOL_VERSION}"));
            FrameOutcome::Continue
        }
        TextCommand::Sample {
            machine_id,
            counter,
            time_secs,
            value,
        } => {
            let rec = Record {
                machine_id,
                counter,
                time_secs,
                value,
            };
            // Same discipline as the binary batch path: apply, journal,
            // then confirm — "ok" implies durable.
            let outcome = {
                let mut engine = shared.engine();
                let ok = engine.apply_batch(session_id, std::slice::from_ref(&rec), false) == 1;
                match engine.persist_records(ENTRY_TEXT, std::slice::from_ref(&rec)) {
                    Ok(()) => {
                        engine.maybe_snapshot();
                        Ok(ok)
                    }
                    Err(e) => Err(e),
                }
            };
            match outcome {
                Ok(ok) => {
                    let _ = send_line(stream, if ok { "ok" } else { "err rejected" });
                    FrameOutcome::Continue
                }
                Err(e) => {
                    let _ = send_line(stream, &format!("err store {e}"));
                    FrameOutcome::Close
                }
            }
        }
        TextCommand::Done { machine_id } => {
            let res = {
                let mut engine = shared.engine();
                let res = engine.machine_done(machine_id);
                if res.is_ok() {
                    engine.maybe_snapshot();
                }
                res
            };
            match res {
                Ok(()) => {
                    let _ = send_line(stream, "ok");
                    FrameOutcome::Continue
                }
                Err(e) => {
                    let _ = send_line(stream, &format!("err store {e}"));
                    FrameOutcome::Close
                }
            }
        }
        TextCommand::Status => {
            let json = {
                let mut engine = shared.engine();
                engine.wire.queries += 1;
                engine.status_json()
            };
            let _ = send_line(stream, &json);
            FrameOutcome::Continue
        }
        TextCommand::Machine { machine_id } => {
            let reply = {
                let mut engine = shared.engine();
                engine.wire.queries += 1;
                engine
                    .machine_snapshot(machine_id)
                    .and_then(|snap| serde_json::to_string(&snap).ok())
            };
            match reply {
                Some(json) => {
                    let _ = send_line(stream, &json);
                }
                None => {
                    let _ = send_line(stream, "err unknown machine");
                }
            }
            FrameOutcome::Continue
        }
        TextCommand::Alarms { since } => {
            let (total, events) = {
                let mut engine = shared.engine();
                engine.wire.queries += 1;
                engine.release();
                engine.alarms_since(since, shared.cfg.alarm_chunk)
            };
            let _ = send_line(stream, &format!("alarms {total}"));
            for event in &events {
                let _ = send_line(stream, &render_event_text(event));
            }
            let _ = send_line(stream, "end");
            FrameOutcome::Continue
        }
        TextCommand::Bye => {
            // Same barrier as the binary `Bye`: finish this session's
            // feeds before the farewell line goes out.
            shared.engine().session_closed(session_id);
            let _ = send_line(stream, "ok bye");
            FrameOutcome::Close
        }
    }
}
