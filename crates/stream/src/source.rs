//! Ingestion sources: where streamed counter samples come from.
//!
//! Every source yields timestamped raw samples through the pull-based
//! [`SampleSource`] trait; defect handling (NaN, gaps, reordering) is the
//! job of the downstream [`crate::gate::SampleGate`], so sources stay
//! faithful to what the underlying feed actually produced.

use aging_memsim::{Counter, Machine, Scenario};
use aging_timeseries::csv::{CsvDefects, CsvTable};
use aging_timeseries::{Error, Result};

/// One timestamped counter reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSample {
    /// Sample time in seconds (source-defined epoch).
    pub time_secs: f64,
    /// Counter value (may be NaN for a recorded gap — gates repair it).
    pub value: f64,
}

/// A pull-based stream of counter samples.
///
/// `next_sample` returns `Ok(None)` when the stream is exhausted (end of
/// file, crashed machine, closed feed). Sources are infallible on defects
/// *within* samples — a recorded NaN is returned as-is for the gate to
/// judge — and error only on structural failures (unreadable file, bad
/// column).
pub trait SampleSource {
    /// Short stable identifier for telemetry and logs.
    fn name(&self) -> &str;

    /// Pulls the next sample.
    ///
    /// # Errors
    ///
    /// Source-specific structural failures (I/O, malformed tables).
    fn next_sample(&mut self) -> Result<Option<StreamSample>>;
}

impl std::fmt::Debug for dyn SampleSource + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SampleSource({})", self.name())
    }
}

/// Rewrites raw samples between a source and the defect gate.
///
/// A perturber sees each sample exactly once, in feed order, and pushes
/// zero or more samples into `out`: zero models a dropout, one a
/// (possibly corrupted) pass-through, several a duplicate or replay
/// burst. The supervisor installs one perturber per counter stream (see
/// [`crate::supervisor::FleetConfig::perturb`]), downstream of the
/// machine clock — so event timestamps keep the *true* machine time and
/// watermark ordering is never at the mercy of an injected clock defect.
///
/// Implementations must be deterministic for a fixed construction seed:
/// the differential chaos harness replays the same plan across thread
/// counts and asserts bit-identical streams.
pub trait SamplePerturber: Send {
    /// Transforms one raw sample into zero or more perturbed samples.
    fn perturb(&mut self, raw: StreamSample, out: &mut Vec<StreamSample>);
}

/// Replays one column of a recorded CSV table against its time column —
/// the offline-trace ingestion path (reuses [`aging_timeseries::csv`]).
#[derive(Debug, Clone)]
pub struct CsvReplaySource {
    name: String,
    times: Vec<f64>,
    values: Vec<f64>,
    cursor: usize,
}

impl CsvReplaySource {
    /// Builds a replay source from a parsed table and two column names.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown columns and
    /// [`Error::LengthMismatch`] if the table is ragged.
    pub fn new(table: &CsvTable, time_column: &str, value_column: &str) -> Result<Self> {
        let ti = table
            .column_index(time_column)
            .ok_or_else(|| Error::invalid("time_column", format!("no column `{time_column}`")))?;
        let vi = table
            .column_index(value_column)
            .ok_or_else(|| Error::invalid("value_column", format!("no column `{value_column}`")))?;
        let times = table.columns[ti].clone();
        let values = table.columns[vi].clone();
        if times.len() != values.len() {
            return Err(Error::LengthMismatch {
                left: times.len(),
                right: values.len(),
            });
        }
        Ok(CsvReplaySource {
            name: format!("csv:{value_column}"),
            times,
            values,
            cursor: 0,
        })
    }

    /// Parses CSV text and builds a replay source in one step.
    ///
    /// # Errors
    ///
    /// Propagates [`aging_timeseries::csv::read_csv`] and
    /// [`CsvReplaySource::new`] failures.
    pub fn from_csv_str(text: &str, time_column: &str, value_column: &str) -> Result<Self> {
        let table = aging_timeseries::csv::read_csv(text.as_bytes())?;
        CsvReplaySource::new(&table, time_column, value_column)
    }

    /// Parses structurally damaged CSV text with the lossy reader and
    /// builds a replay source from the surviving rows, reporting what was
    /// skipped (see [`aging_timeseries::csv::read_csv_lossy`]).
    ///
    /// # Errors
    ///
    /// Propagates [`aging_timeseries::csv::read_csv_lossy`] and
    /// [`CsvReplaySource::new`] failures.
    pub fn from_csv_str_lossy(
        text: &str,
        time_column: &str,
        value_column: &str,
    ) -> Result<(Self, CsvDefects)> {
        let (table, defects) = aging_timeseries::csv::read_csv_lossy(text.as_bytes())?;
        Ok((
            CsvReplaySource::new(&table, time_column, value_column)?,
            defects,
        ))
    }

    /// Samples remaining to replay.
    pub fn remaining(&self) -> usize {
        self.times.len() - self.cursor
    }
}

impl SampleSource for CsvReplaySource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_sample(&mut self) -> Result<Option<StreamSample>> {
        if self.cursor >= self.times.len() {
            return Ok(None);
        }
        let s = StreamSample {
            time_secs: self.times[self.cursor],
            value: self.values[self.cursor],
        };
        self.cursor += 1;
        Ok(Some(s))
    }
}

/// Live feed from a simulated [`Machine`]: steps the simulation until its
/// monitor publishes the next sample of the chosen counter.
///
/// The stream ends (`Ok(None)`) when the machine crashes or the configured
/// horizon is reached — exactly how a real exporter behaves when its host
/// dies.
#[derive(Debug)]
pub struct MachineSource {
    name: String,
    machine: Machine,
    counter: Counter,
    horizon_secs: f64,
    /// Samples already consumed from the machine's log.
    consumed: usize,
    finished: bool,
}

impl MachineSource {
    /// Boots `scenario` and streams `counter` until `horizon_secs` of
    /// simulated time or a crash.
    ///
    /// # Errors
    ///
    /// Propagates [`Machine::boot`] failures and rejects a non-positive
    /// horizon.
    pub fn new(scenario: &Scenario, counter: Counter, horizon_secs: f64) -> Result<Self> {
        if !(horizon_secs > 0.0) {
            return Err(Error::invalid("horizon_secs", "must be positive"));
        }
        Ok(MachineSource {
            name: format!("machine:{}:{counter}", scenario.name),
            machine: Machine::boot(scenario)?,
            counter,
            horizon_secs,
            consumed: 0,
            finished: false,
        })
    }

    /// The machine being stepped (e.g. to inspect crash state afterwards).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

impl SampleSource for MachineSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_sample(&mut self) -> Result<Option<StreamSample>> {
        if self.finished {
            return Ok(None);
        }
        // Step the simulation until the monitor log grows by one sample.
        while self.machine.log().len() == self.consumed {
            if self.machine.now().as_secs() >= self.horizon_secs {
                self.finished = true;
                return Ok(None);
            }
            if self.machine.step().is_some() {
                // Crash: the feed dies with the machine.
                self.finished = true;
                return Ok(None);
            }
        }
        let sample = self
            .machine
            .last_sample()
            .expect("log grew, so a sample exists");
        self.consumed += 1;
        Ok(Some(StreamSample {
            time_secs: sample.time.as_secs(),
            value: sample.value(self.counter),
        }))
    }
}

/// Which live Linux memory statistic a [`ProcSource`] reads.
#[cfg(target_os = "linux")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcCounter {
    /// `MemAvailable` from `/proc/meminfo`, in bytes.
    MemAvailableBytes,
    /// `SwapTotal − SwapFree` from `/proc/meminfo`, in bytes.
    UsedSwapBytes,
    /// `Committed_AS` from `/proc/meminfo`, in bytes.
    CommittedBytes,
    /// Cumulative `pgfault` count from `/proc/vmstat`.
    PageFaults,
}

/// Samples the local kernel's memory counters from `/proc/meminfo` and
/// `/proc/vmstat` — the "this actual machine" ingestion path.
///
/// Each `next_sample` call performs one read; pacing (one sample every
/// N seconds) belongs to the caller's scheduler, keeping the source
/// non-blocking. Timestamps are monotonic seconds since source creation.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct ProcSource {
    name: String,
    counter: ProcCounter,
    started: std::time::Instant,
}

#[cfg(target_os = "linux")]
impl ProcSource {
    /// Creates a sampler for one `/proc` counter.
    pub fn new(counter: ProcCounter) -> Self {
        ProcSource {
            name: format!("proc:{counter:?}"),
            counter,
            started: std::time::Instant::now(),
        }
    }

    /// Parses `key: value [kB]` lines from a `/proc` pseudo-file, in the
    /// requested unit (kB entries are converted to bytes).
    fn read_field(path: &str, key: &str, kb: bool) -> Result<f64> {
        let text =
            std::fs::read_to_string(path).map_err(|e| Error::Io(format!("read {path}: {e}")))?;
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            let Some(name) = parts.next() else { continue };
            if name.trim_end_matches(':') != key {
                continue;
            }
            let Some(value) = parts.next() else { continue };
            let v: f64 = value
                .parse()
                .map_err(|e| Error::Numerical(format!("parse {key} in {path}: {e}")))?;
            return Ok(if kb { v * 1024.0 } else { v });
        }
        Err(Error::Numerical(format!("{key} not found in {path}")))
    }

    fn read_counter(counter: ProcCounter) -> Result<f64> {
        const MEMINFO: &str = "/proc/meminfo";
        const VMSTAT: &str = "/proc/vmstat";
        match counter {
            ProcCounter::MemAvailableBytes => Self::read_field(MEMINFO, "MemAvailable", true),
            ProcCounter::UsedSwapBytes => {
                let total = Self::read_field(MEMINFO, "SwapTotal", true)?;
                let free = Self::read_field(MEMINFO, "SwapFree", true)?;
                Ok(total - free)
            }
            ProcCounter::CommittedBytes => Self::read_field(MEMINFO, "Committed_AS", true),
            ProcCounter::PageFaults => Self::read_field(VMSTAT, "pgfault", false),
        }
    }
}

#[cfg(target_os = "linux")]
impl SampleSource for ProcSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_sample(&mut self) -> Result<Option<StreamSample>> {
        let value = Self::read_counter(self.counter)?;
        Ok(Some(StreamSample {
            time_secs: self.started.elapsed().as_secs_f64(),
            value,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_replay_yields_rows_in_order() {
        let text = "time,free\n0,100\n30,95\n60,not-a-number\n90,85\n";
        let mut src = CsvReplaySource::from_csv_str(text, "time", "free").unwrap();
        assert_eq!(src.name(), "csv:free");
        assert_eq!(src.remaining(), 4);
        let a = src.next_sample().unwrap().unwrap();
        assert_eq!((a.time_secs, a.value), (0.0, 100.0));
        let b = src.next_sample().unwrap().unwrap();
        assert_eq!((b.time_secs, b.value), (30.0, 95.0));
        // Non-numeric cells surface as NaN for the gate to handle.
        assert!(src.next_sample().unwrap().unwrap().value.is_nan());
        assert_eq!(src.next_sample().unwrap().unwrap().value, 85.0);
        assert!(src.next_sample().unwrap().is_none());
        assert!(src.next_sample().unwrap().is_none());
    }

    #[test]
    fn csv_replay_lossy_survives_truncated_rows() {
        // Row `60` was truncated mid-write; the strict path refuses it,
        // the lossy path replays around it and reports the damage.
        let text = "time,free\n0,100\n30,95\n60\n90,85\n";
        assert!(CsvReplaySource::from_csv_str(text, "time", "free").is_err());
        let (mut src, defects) = CsvReplaySource::from_csv_str_lossy(text, "time", "free").unwrap();
        assert_eq!(defects.ragged_rows, 1);
        assert_eq!(src.remaining(), 3);
        let mut times = Vec::new();
        while let Some(s) = src.next_sample().unwrap() {
            times.push(s.time_secs);
        }
        assert_eq!(times, vec![0.0, 30.0, 90.0]);
    }

    #[test]
    fn csv_replay_rejects_unknown_columns() {
        let text = "time,free\n0,1\n";
        assert!(CsvReplaySource::from_csv_str(text, "time", "nope").is_err());
        assert!(CsvReplaySource::from_csv_str(text, "nope", "free").is_err());
    }

    #[test]
    fn machine_source_streams_monitor_samples() {
        let scenario = Scenario::tiny_aging(3, 0.0);
        let mut src = MachineSource::new(&scenario, Counter::AvailableBytes, 600.0).unwrap();
        let mut times = Vec::new();
        while let Some(s) = src.next_sample().unwrap() {
            assert!(s.value > 0.0);
            times.push(s.time_secs);
        }
        assert!(times.len() >= 100, "{} samples", times.len());
        // Strictly increasing sample clock.
        assert!(times.windows(2).all(|w| w[1] > w[0]));
        // Horizon respected.
        assert!(times.last().unwrap() <= &600.0);
        // Exhausted stays exhausted.
        assert!(src.next_sample().unwrap().is_none());
    }

    #[test]
    fn machine_source_ends_at_crash() {
        // An aggressive leak on the tiny machine crashes well inside 6 h.
        let scenario = Scenario::tiny_aging(5, 192.0);
        let mut src = MachineSource::new(&scenario, Counter::AvailableBytes, 6.0 * 3600.0).unwrap();
        let mut n = 0usize;
        while src.next_sample().unwrap().is_some() {
            n += 1;
        }
        assert!(src.machine().is_crashed());
        assert!(n > 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn proc_source_reads_live_kernel_counters() {
        let mut src = ProcSource::new(ProcCounter::MemAvailableBytes);
        let a = src.next_sample().unwrap().unwrap();
        assert!(a.value > 0.0, "MemAvailable {}", a.value);
        let mut faults = ProcSource::new(ProcCounter::PageFaults);
        let f1 = faults.next_sample().unwrap().unwrap();
        assert!(f1.value >= 0.0);
        let f2 = faults.next_sample().unwrap().unwrap();
        assert!(f2.value >= f1.value, "pgfault is cumulative");
        assert!(f2.time_secs >= f1.time_secs);
    }
}
