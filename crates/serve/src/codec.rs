//! Incremental frame decoding and the line-delimited text fallback.
//!
//! [`FrameDecoder`] turns an arbitrary byte stream — fed in whatever
//! chunks the socket produced — into complete, CRC-verified frame
//! payloads. It distinguishes two failure classes with different session
//! consequences (see the [`crate::protocol`] module docs):
//!
//! - [`CorruptStream`]: the *framing* is untrustworthy (zero/oversized
//!   length prefix, CRC mismatch). No later byte boundary can be
//!   recovered; the session must quarantine the connection.
//! - a payload that fails [`crate::protocol::Frame::decode_payload`]:
//!   malformed but *consumable* — the stream stays in sync and the
//!   session counts a strike instead of dropping the client.

use crate::protocol;

/// Framing integrity lost: the byte stream can no longer be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptStream {
    /// What broke (for diagnostics).
    pub reason: String,
}

impl std::fmt::Display for CorruptStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt frame stream: {}", self.reason)
    }
}

impl std::error::Error for CorruptStream {}

/// Whole-frame byte span (`4 + len + 4`) for a payload of `len` bytes,
/// or `None` when the sum overflows the host `usize` — reachable on
/// 32-bit targets when `max_frame` is configured near `u32::MAX`. An
/// unrepresentable span must corrupt the stream, not panic the session.
fn frame_span(len: u32) -> Option<usize> {
    usize::try_from(len).ok().and_then(|n| n.checked_add(8))
}

/// Incremental decoder for the length-prefixed CRC-checked framing.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    max_frame: u32,
    corrupt: bool,
}

impl FrameDecoder {
    /// Creates a decoder enforcing `max_frame` as the payload size limit.
    pub fn new(max_frame: u32) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_frame,
            corrupt: false,
        }
    }

    /// Appends raw bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact the consumed prefix before growing, so the buffer stays
        // bounded by the unconsumed backlog rather than stream length.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete, CRC-verified frame payload as an
    /// owned buffer — an allocating convenience over
    /// [`FrameDecoder::next_payload_ref`].
    ///
    /// # Errors
    ///
    /// Same as [`FrameDecoder::next_payload_ref`].
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, CorruptStream> {
        Ok(self.next_payload_ref()?.map(<[u8]>::to_vec))
    }

    /// Extracts the next complete, CRC-verified frame payload, or `None`
    /// when more bytes are needed. The returned slice borrows the
    /// decoder's internal buffer — no per-frame allocation — and stays
    /// valid until the next `feed`/`next_payload*` call.
    ///
    /// # Errors
    ///
    /// [`CorruptStream`] when framing integrity is lost (zero or
    /// oversized length prefix, CRC mismatch). Once returned, every later
    /// call returns the same error — there is no resynchronisation.
    pub fn next_payload_ref(&mut self) -> Result<Option<&[u8]>, CorruptStream> {
        if self.corrupt {
            return Err(CorruptStream {
                reason: "stream already corrupt".into(),
            });
        }
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let head = &self.buf[self.pos..];
        let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes"));
        if len == 0 || len > self.max_frame {
            self.corrupt = true;
            return Err(CorruptStream {
                reason: format!("length prefix {len} outside 1..={}", self.max_frame),
            });
        }
        let Some(need) = frame_span(len) else {
            self.corrupt = true;
            return Err(CorruptStream {
                reason: format!("length prefix {len} unaddressable on this target"),
            });
        };
        if avail < need {
            return Ok(None);
        }
        let payload_range = self.pos + 4..self.pos + 4 + len as usize;
        let crc = u32::from_le_bytes(head[4 + len as usize..need].try_into().expect("4 bytes"));
        let actual = protocol::crc32(&self.buf[payload_range.clone()]);
        if crc != actual {
            self.corrupt = true;
            return Err(CorruptStream {
                reason: format!("CRC mismatch: frame says {crc:#010x}, payload is {actual:#010x}"),
            });
        }
        self.pos += need;
        Ok(Some(&self.buf[payload_range]))
    }

    /// Number of complete frames currently sitting undecoded in the
    /// buffer — the backlog reported by advisory `Busy` frames.
    pub fn buffered_frames(&self) -> u32 {
        if self.corrupt {
            return 0;
        }
        let mut count = 0u32;
        let mut pos = self.pos;
        loop {
            if self.buf.len() - pos < 4 {
                return count;
            }
            let len = u32::from_le_bytes(self.buf[pos..pos + 4].try_into().expect("4 bytes"));
            if len == 0 || len > self.max_frame {
                return count;
            }
            let Some(need) = frame_span(len) else {
                return count; // corrupt, not buffered
            };
            if self.buf.len() - pos < need {
                return count;
            }
            count += 1;
            pos += need;
        }
    }

    /// Whether a frame has been started but not completed (bytes are
    /// buffered past the last complete frame). At EOF this means the
    /// peer died mid-frame — a truncation.
    pub fn mid_frame(&self) -> bool {
        let mut pos = self.pos;
        loop {
            let avail = self.buf.len() - pos;
            if avail == 0 {
                return false;
            }
            if avail < 4 {
                return true;
            }
            let len = u32::from_le_bytes(self.buf[pos..pos + 4].try_into().expect("4 bytes"));
            if len == 0 || len > self.max_frame {
                // Corrupt, not truncated; next_payload will report it.
                return false;
            }
            let Some(need) = frame_span(len) else {
                return false; // corrupt, not truncated
            };
            if avail < need {
                return true;
            }
            pos += need;
        }
    }

    /// Whether the decoder has entered the unrecoverable corrupt state.
    pub fn is_corrupt(&self) -> bool {
        self.corrupt
    }
}

// ---------------------------------------------------------------------------
// Text fallback
// ---------------------------------------------------------------------------

/// One command of the line-delimited debug protocol.
///
/// A text session opens with the literal line `TEXT`; each subsequent
/// line is one command. Counter names are the [`aging_memsim::Counter`]
/// display names (`available_bytes`, …).
#[derive(Debug, Clone, PartialEq)]
pub enum TextCommand {
    /// `hello <name>` — handshake.
    Hello {
        /// Client display name.
        name: String,
    },
    /// `sample <machine_id> <counter> <t_secs> <value>` — one record.
    Sample {
        /// Machine identity.
        machine_id: u64,
        /// Counter code (already resolved from the name).
        counter: u8,
        /// Sample timestamp, seconds.
        time_secs: f64,
        /// Counter value.
        value: f64,
    },
    /// `done <machine_id>` — end of one machine's feed.
    Done {
        /// Machine whose feed ended.
        machine_id: u64,
    },
    /// `status` — fleet status snapshot as JSON.
    Status,
    /// `machine <machine_id>` — one machine's snapshot as JSON.
    Machine {
        /// Machine to query.
        machine_id: u64,
    },
    /// `alarms <since>` — alarm history from an offset.
    Alarms {
        /// Offset into the released history.
        since: u64,
    },
    /// `bye` — graceful close.
    Bye,
}

/// Parses one line of the text protocol.
///
/// # Errors
///
/// Returns a human-readable reason; the session reports it as an `err`
/// line and counts a strike.
pub fn parse_text_line(line: &str) -> Result<TextCommand, String> {
    let mut parts = line.split_whitespace();
    let cmd = parts.next().ok_or("empty line")?;
    let mut arg = |name: &str| parts.next().ok_or(format!("missing <{name}>"));
    let parsed = match cmd {
        "hello" => TextCommand::Hello {
            name: arg("name")?.to_string(),
        },
        "sample" => {
            let machine_id = arg("machine_id")?
                .parse::<u64>()
                .map_err(|e| format!("bad machine_id: {e}"))?;
            let counter_name = arg("counter")?;
            let counter = aging_memsim::Counter::ALL
                .iter()
                .position(|c| c.to_string() == counter_name)
                .ok_or(format!("unknown counter {counter_name:?}"))?
                as u8;
            let time_secs = arg("t_secs")?
                .parse::<f64>()
                .map_err(|e| format!("bad t_secs: {e}"))?;
            let value = arg("value")?
                .parse::<f64>()
                .map_err(|e| format!("bad value: {e}"))?;
            TextCommand::Sample {
                machine_id,
                counter,
                time_secs,
                value,
            }
        }
        "done" => TextCommand::Done {
            machine_id: arg("machine_id")?
                .parse::<u64>()
                .map_err(|e| format!("bad machine_id: {e}"))?,
        },
        "status" => TextCommand::Status,
        "machine" => TextCommand::Machine {
            machine_id: arg("machine_id")?
                .parse::<u64>()
                .map_err(|e| format!("bad machine_id: {e}"))?,
        },
        "alarms" => TextCommand::Alarms {
            since: arg("since")?
                .parse::<u64>()
                .map_err(|e| format!("bad since: {e}"))?,
        },
        "bye" => TextCommand::Bye,
        other => return Err(format!("unknown command {other:?}")),
    };
    if let Some(extra) = parts.next() {
        return Err(format!("unexpected trailing argument {extra:?}"));
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_frame, Frame, DEFAULT_MAX_FRAME};

    #[test]
    fn decodes_across_arbitrary_chunk_boundaries() {
        let frames = [
            Frame::QueryStatus,
            Frame::MachineDone { machine_id: 42 },
            Frame::Bye,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        // Feed one byte at a time — worst-case fragmentation.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut got = Vec::new();
        for &b in &wire {
            dec.feed(&[b]);
            while let Some(p) = dec.next_payload().unwrap() {
                got.push(Frame::decode_payload(&p).unwrap());
            }
        }
        assert_eq!(got.as_slice(), frames.as_slice());
        assert!(!dec.mid_frame());
    }

    #[test]
    fn zero_and_oversized_lengths_corrupt_the_stream() {
        let mut dec = FrameDecoder::new(16);
        dec.feed(&0u32.to_le_bytes());
        assert!(dec.next_payload().is_err());
        assert!(dec.is_corrupt());

        let mut dec = FrameDecoder::new(16);
        dec.feed(&17u32.to_le_bytes());
        assert!(dec.next_payload().is_err());
        // Corruption is sticky.
        assert!(dec.next_payload().is_err());
    }

    #[test]
    fn crc_mismatch_corrupts_the_stream() {
        let mut wire = encode_frame(&Frame::Bye);
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.feed(&wire);
        assert!(dec.next_payload().is_err());
    }

    #[test]
    fn mid_frame_reports_truncation() {
        let wire = encode_frame(&Frame::MachineDone { machine_id: 7 });
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.feed(&wire[..wire.len() - 3]);
        assert_eq!(dec.next_payload().unwrap(), None);
        assert!(dec.mid_frame());
        dec.feed(&wire[wire.len() - 3..]);
        assert!(dec.next_payload().unwrap().is_some());
        assert!(!dec.mid_frame());
    }

    #[test]
    fn buffered_frames_counts_backlog() {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        assert_eq!(dec.buffered_frames(), 0);
        let one = encode_frame(&Frame::Bye);
        let mut wire = Vec::new();
        for _ in 0..5 {
            wire.extend_from_slice(&one);
        }
        wire.extend_from_slice(&one[..3]); // a partial sixth
        dec.feed(&wire);
        assert_eq!(dec.buffered_frames(), 5);
        assert!(dec.mid_frame());
    }

    #[test]
    fn near_u32_max_length_prefix_never_panics() {
        // With the frame limit raised to the u32 ceiling, a maximal
        // length prefix exercises the `4 + len + 4` span arithmetic that
        // used to overflow on 32-bit targets. The decoder must either
        // wait for more bytes (64-bit: the span is representable) or
        // corrupt the stream (32-bit) — panicking takes the session
        // thread down and counts as a server bug.
        for len in [u32::MAX, u32::MAX - 1, u32::MAX - 8] {
            let mut dec = FrameDecoder::new(u32::MAX);
            dec.feed(&len.to_le_bytes());
            dec.feed(&[0xab; 32]);
            let first = dec.next_payload();
            if cfg!(target_pointer_width = "32") {
                assert!(first.is_err(), "len {len}: span overflow must corrupt");
                assert_eq!(dec.buffered_frames(), 0);
                assert!(!dec.mid_frame());
            } else {
                assert_eq!(first.unwrap(), None, "len {len}: awaiting frame body");
                assert_eq!(dec.buffered_frames(), 0);
                assert!(dec.mid_frame());
            }
        }
    }

    #[test]
    fn max_frame_sized_payload_still_decodes() {
        // The checked arithmetic must not reject legitimate frames at the
        // configured limit itself.
        let payload = vec![0x5au8; 100];
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        wire.extend_from_slice(&crate::protocol::crc32(&payload).to_le_bytes());
        let mut dec = FrameDecoder::new(100);
        dec.feed(&wire);
        assert_eq!(dec.next_payload().unwrap(), Some(payload));
    }

    #[test]
    fn text_lines_parse() {
        assert_eq!(
            parse_text_line("hello probe-1").unwrap(),
            TextCommand::Hello {
                name: "probe-1".into()
            }
        );
        assert_eq!(
            parse_text_line("sample 7 available_bytes 5.0 123456.0").unwrap(),
            TextCommand::Sample {
                machine_id: 7,
                counter: 0,
                time_secs: 5.0,
                value: 123456.0,
            }
        );
        assert_eq!(
            parse_text_line("done 7").unwrap(),
            TextCommand::Done { machine_id: 7 }
        );
        assert_eq!(parse_text_line("status").unwrap(), TextCommand::Status);
        assert_eq!(
            parse_text_line("alarms 3").unwrap(),
            TextCommand::Alarms { since: 3 }
        );
        assert_eq!(parse_text_line("bye").unwrap(), TextCommand::Bye);
        for bad in [
            "",
            "nope",
            "sample 7",
            "sample x available_bytes 1 2",
            "sample 7 no_such_counter 1 2",
            "done 7 extra",
        ] {
            assert!(parse_text_line(bad).is_err(), "{bad:?}");
        }
    }
}
