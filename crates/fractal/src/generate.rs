//! Synthetic signal generators with known fractal / multifractal ground
//! truth.
//!
//! Every estimator in this crate is validated against these generators
//! (experiment E5 in DESIGN.md): fractional Gaussian noise and fractional
//! Brownian motion with prescribed Hurst exponent `H`, Weierstrass series
//! with uniform Hölder exponent `h`, and binomial multiplicative cascades
//! with a closed-form multifractal spectrum.
//!
//! All stochastic generators take an explicit seed and are fully
//! deterministic.

use crate::fft::{fft, Complex};
use aging_timeseries::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest `n` accepted by the exact `O(n²)` Hosking generator.
pub const HOSKING_MAX_N: usize = 16_384;

/// Draws one standard normal variate via the Marsaglia polar method.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Autocovariance of unit-variance fractional Gaussian noise at lag `k`:
/// `γ(k) = ½(|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H})`.
pub fn fgn_autocovariance(hurst: f64, k: usize) -> f64 {
    let h2 = 2.0 * hurst;
    let k = k as f64;
    0.5 * ((k + 1.0).powf(h2) - 2.0 * k.powf(h2) + (k - 1.0).abs().powf(h2))
}

fn check_hurst(hurst: f64) -> Result<()> {
    if !(hurst > 0.0 && hurst < 1.0) {
        return Err(Error::invalid("hurst", "must lie strictly in (0, 1)"));
    }
    Ok(())
}

/// Exact fractional Gaussian noise by Hosking's (Durbin–Levinson) method.
///
/// `O(n²)` — intended for cross-validation of the fast generator; use
/// [`fgn`] for long samples.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `hurst ∉ (0,1)`, `n == 0`, or
/// `n >` [`HOSKING_MAX_N`].
pub fn fgn_hosking(n: usize, hurst: f64, seed: u64) -> Result<Vec<f64>> {
    check_hurst(hurst)?;
    if n == 0 {
        return Err(Error::invalid("n", "must be positive"));
    }
    if n > HOSKING_MAX_N {
        return Err(Error::invalid(
            "n",
            format!("Hosking generator limited to {HOSKING_MAX_N} samples; use fgn()"),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let gamma: Vec<f64> = (0..n).map(|k| fgn_autocovariance(hurst, k)).collect();

    let mut x = Vec::with_capacity(n);
    let mut phi_prev: Vec<f64> = Vec::new();
    let mut v = gamma[0];
    x.push(v.sqrt() * standard_normal(&mut rng));
    for t in 1..n {
        let num = gamma[t]
            - phi_prev
                .iter()
                .enumerate()
                .map(|(j, &p)| p * gamma[t - 1 - j])
                .sum::<f64>();
        let kappa = num / v;
        let mut phi = Vec::with_capacity(t);
        for j in 0..t - 1 {
            phi.push(phi_prev[j] - kappa * phi_prev[t - 2 - j]);
        }
        phi.push(kappa);
        v *= 1.0 - kappa * kappa;
        let mean: f64 = phi.iter().enumerate().map(|(j, &p)| p * x[t - 1 - j]).sum();
        x.push(mean + v.max(0.0).sqrt() * standard_normal(&mut rng));
        phi_prev = phi;
    }
    Ok(x)
}

/// Exact fractional Gaussian noise by the Davies–Harte circulant-embedding
/// method — `O(n log n)`, suitable for long samples. Internally works on
/// the next power of two and truncates (fGn is stationary, so truncation is
/// harmless).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `hurst ∉ (0,1)` or `n == 0`,
/// and [`Error::Numerical`] if the circulant embedding is not non-negative
/// definite (does not occur for fGn with `H ∈ (0,1)`).
pub fn fgn(n: usize, hurst: f64, seed: u64) -> Result<Vec<f64>> {
    check_hurst(hurst)?;
    if n == 0 {
        return Err(Error::invalid("n", "must be positive"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let np = n.next_power_of_two().max(2);
    let m = 2 * np;

    // Circulant first row: γ(0), …, γ(np−1), γ(np), γ(np−1), …, γ(1).
    let mut c = vec![Complex::default(); m];
    for (k, slot) in c.iter_mut().enumerate().take(np + 1) {
        slot.re = fgn_autocovariance(hurst, k);
    }
    for k in 1..np {
        c[m - k].re = fgn_autocovariance(hurst, k);
    }
    fft(&mut c)?;
    let lambda: Vec<f64> = c.iter().map(|v| v.re).collect();
    if lambda.iter().any(|&l| l < -1e-8) {
        return Err(Error::Numerical(
            "circulant embedding not non-negative definite".into(),
        ));
    }

    let mut w = vec![Complex::default(); m];
    let mf = m as f64;
    w[0] = Complex::new(
        (lambda[0].max(0.0) / mf).sqrt() * standard_normal(&mut rng),
        0.0,
    );
    w[np] = Complex::new(
        (lambda[np].max(0.0) / mf).sqrt() * standard_normal(&mut rng),
        0.0,
    );
    for k in 1..np {
        let scale = (lambda[k].max(0.0) / (2.0 * mf)).sqrt();
        let re = scale * standard_normal(&mut rng);
        let im = scale * standard_normal(&mut rng);
        w[k] = Complex::new(re, im);
        w[m - k] = Complex::new(re, -im);
    }
    fft(&mut w)?;
    Ok(w.into_iter().take(n).map(|v| v.re).collect())
}

/// Fractional Brownian motion: the cumulative sum of [`fgn`], starting at 0.
///
/// # Errors
///
/// Same failure modes as [`fgn`].
pub fn fbm(n: usize, hurst: f64, seed: u64) -> Result<Vec<f64>> {
    let noise = fgn(n, hurst, seed)?;
    let mut acc = 0.0;
    Ok(noise
        .into_iter()
        .map(|v| {
            acc += v;
            acc
        })
        .collect())
}

/// Deterministic Weierstrass-type series with uniform Hölder exponent `h`
/// at every point: `x(t) = Σ_k 2^{−kh} sin(2π 2^k t/n + φ_k)` summed over
/// all octaves representable at the grid resolution.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `h ∉ (0,1)` or `n < 4`.
pub fn weierstrass(n: usize, h: f64) -> Result<Vec<f64>> {
    if !(h > 0.0 && h < 1.0) {
        return Err(Error::invalid("h", "must lie strictly in (0, 1)"));
    }
    if n < 4 {
        return Err(Error::invalid("n", "must be at least 4"));
    }
    let octaves = (n as f64).log2().floor() as usize;
    Ok((0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            (1..=octaves)
                .map(|k| {
                    let freq = (1u64 << k) as f64;
                    let phase = 0.7 * k as f64;
                    freq.powf(-h) * (2.0 * std::f64::consts::PI * freq * t + phase).sin()
                })
                .sum()
        })
        .collect())
}

/// A binomial multiplicative cascade measure on `2^levels` cells.
///
/// Mass 1 is split recursively: fraction `m0` to one child, `1 − m0` to the
/// other, for `levels` generations. With `randomize = false` the split is
/// always (left ← m0); with `randomize = true` each node flips the pair
/// with probability ½ (same multifractal spectrum, no spatial order).
///
/// Ground truth: partition exponents `τ(q) = −log2(m0^q + (1−m0)^q)` and a
/// concave spectrum with width `log2((1−m0)/m0)` spanning
/// `α ∈ [−log2(max), −log2(min)]`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `m0 ∉ (0,1)`, `levels == 0`, or
/// `levels > 30`.
pub fn binomial_cascade(levels: usize, m0: f64, randomize: bool, seed: u64) -> Result<Vec<f64>> {
    if !(m0 > 0.0 && m0 < 1.0) {
        return Err(Error::invalid("m0", "must lie strictly in (0, 1)"));
    }
    if levels == 0 || levels > 30 {
        return Err(Error::invalid("levels", "must lie in 1..=30"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mass = vec![1.0f64];
    for _ in 0..levels {
        let mut next = Vec::with_capacity(mass.len() * 2);
        for &m in &mass {
            let (a, b) = if randomize && rng.gen_bool(0.5) {
                (1.0 - m0, m0)
            } else {
                (m0, 1.0 - m0)
            };
            next.push(m * a);
            next.push(m * b);
        }
        mass = next;
    }
    Ok(mass)
}

/// The closed-form partition exponent `τ(q) = −log2(m0^q + (1−m0)^q)` of a
/// binomial cascade — ground truth for spectrum estimators.
pub fn binomial_cascade_tau(m0: f64, q: f64) -> f64 {
    -(m0.powf(q) + (1.0 - m0).powf(q)).log2()
}

/// A log-normal multiplicative cascade on `2^levels` cells: each child's
/// mass fraction is `W = 2^{−V}` with `V ~ N(1 + λ²ln2/2, λ²)`, so
/// `E[W] = ½` (mass conserved in expectation) and the cascade has the
/// parabolic ground-truth exponents
/// `τ(q) = q(1 + λ²ln2/2) − q²λ²ln2/2 − 1` — see
/// [`lognormal_cascade_tau`]. The intermittency parameter `λ` controls the
/// spectrum width (λ = 0 degenerates to uniform mass).
///
/// The returned measure is renormalised to total mass 1.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `levels ∉ 1..=30` or
/// `λ ∉ [0, 1)`.
pub fn lognormal_cascade(levels: usize, lambda: f64, seed: u64) -> Result<Vec<f64>> {
    if levels == 0 || levels > 30 {
        return Err(Error::invalid("levels", "must lie in 1..=30"));
    }
    if !(0.0..1.0).contains(&lambda) {
        return Err(Error::invalid("lambda", "must lie in [0, 1)"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let ln2 = std::f64::consts::LN_2;
    let m = 1.0 + lambda * lambda * ln2 / 2.0;
    let mut mass = vec![1.0f64];
    for _ in 0..levels {
        let mut next = Vec::with_capacity(mass.len() * 2);
        for &parent in &mass {
            for _ in 0..2 {
                let v = m + lambda * standard_normal(&mut rng);
                next.push(parent * 2.0_f64.powf(-v));
            }
        }
        mass = next;
    }
    let total: f64 = mass.iter().sum();
    if total <= 0.0 {
        return Err(Error::Numerical("cascade mass vanished".into()));
    }
    for v in &mut mass {
        *v /= total;
    }
    Ok(mass)
}

/// Closed-form partition exponent of the log-normal cascade:
/// `τ(q) = q(1 + λ²ln2/2) − q²λ²ln2/2 − 1`.
pub fn lognormal_cascade_tau(lambda: f64, q: f64) -> f64 {
    let ln2 = std::f64::consts::LN_2;
    let l2 = lambda * lambda * ln2 / 2.0;
    q * (1.0 + l2) - q * q * l2 - 1.0
}

/// Multifractional Brownian motion with a prescribed time-varying Hurst
/// function `H(t)` — the ground truth for **local** Hölder estimation
/// (the pointwise exponent of mBm at `t` equals `H(t)`).
///
/// Uses the Riemann–Liouville moving-average construction
/// `X(t) = c · Σ_{s<t} (t−s)^{H(t)−½} ε_s`, normalised per sample so the
/// marginal variance stays comparable across `H` levels. `O(n²)` — intended
/// for validation-sized signals.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `n == 0`, `n > 32768`, or
/// `hurst_fn` leaves `(0, 1)` anywhere on the grid.
///
/// # Examples
///
/// ```
/// use aging_fractal::generate::mbm;
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// // Regularity degrades linearly over the run — an "aging" signal.
/// let x = mbm(2048, |u| 0.8 - 0.6 * u, 7)?;
/// assert_eq!(x.len(), 2048);
/// # Ok(())
/// # }
/// ```
pub fn mbm(n: usize, hurst_fn: impl Fn(f64) -> f64, seed: u64) -> Result<Vec<f64>> {
    if n == 0 || n > 32_768 {
        return Err(Error::invalid("n", "must lie in 1..=32768"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let noise: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();

    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        let u = t as f64 / n as f64;
        let h = hurst_fn(u);
        if !(h > 0.0 && h < 1.0) {
            return Err(Error::invalid(
                "hurst_fn",
                format!("H({u:.3}) = {h} outside (0, 1)"),
            ));
        }
        let exponent = h - 0.5;
        let mut acc = 0.0;
        let mut norm = 0.0;
        for s in 0..=t {
            let w = ((t - s) as f64 + 1.0).powf(exponent);
            acc += w * noise[s];
            norm += w * w;
        }
        // Normalise so Var[X(t)] ≈ t-independent scale; keeps the local
        // regularity (which lives in the kernel's singularity at s → t)
        // while removing the global variance growth.
        out.push(acc / norm.sqrt());
    }
    Ok(out)
}

/// White Gaussian noise (unit variance).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `n == 0`.
pub fn white_noise(n: usize, seed: u64) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(Error::invalid("n", "must be positive"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    Ok((0..n).map(|_| standard_normal(&mut rng)).collect())
}

/// First-order autoregressive process `x[t] = φ x[t−1] + ε[t]` with unit
/// innovation variance, started at stationarity.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `n == 0` or `|φ| ≥ 1`.
pub fn ar1(n: usize, phi: f64, seed: u64) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(Error::invalid("n", "must be positive"));
    }
    if phi.abs() >= 1.0 {
        return Err(Error::invalid("phi", "must satisfy |phi| < 1"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let stationary_sd = 1.0 / (1.0 - phi * phi).sqrt();
    let mut x = Vec::with_capacity(n);
    let mut prev = stationary_sd * standard_normal(&mut rng);
    x.push(prev);
    for _ in 1..n {
        prev = phi * prev + standard_normal(&mut rng);
        x.push(prev);
    }
    Ok(x)
}

/// Standard random walk (cumulative sum of white noise; `H = 0.5` fBm up to
/// discretisation).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `n == 0`.
pub fn random_walk(n: usize, seed: u64) -> Result<Vec<f64>> {
    let noise = white_noise(n, seed)?;
    let mut acc = 0.0;
    Ok(noise
        .into_iter()
        .map(|v| {
            acc += v;
            acc
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_timeseries::stats;

    #[test]
    fn autocovariance_white_case() {
        // H = 0.5 → uncorrelated increments.
        assert!((fgn_autocovariance(0.5, 0) - 1.0).abs() < 1e-12);
        for k in 1..10 {
            assert!(fgn_autocovariance(0.5, k).abs() < 1e-12);
        }
    }

    #[test]
    fn autocovariance_signs() {
        // Persistent (H > 0.5): positive lag-1 covariance; anti-persistent:
        // negative.
        assert!(fgn_autocovariance(0.8, 1) > 0.0);
        assert!(fgn_autocovariance(0.3, 1) < 0.0);
        // ρ(1) = 2^{2H−1} − 1.
        let rho = fgn_autocovariance(0.8, 1);
        assert!((rho - (2.0_f64.powf(0.6) - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn fgn_is_deterministic_per_seed() {
        let a = fgn(256, 0.7, 42).unwrap();
        let b = fgn(256, 0.7, 42).unwrap();
        let c = fgn(256, 0.7, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fgn_has_unit_variance() {
        let x = fgn(16_384, 0.7, 1).unwrap();
        let v = stats::variance(&x).unwrap();
        assert!((v - 1.0).abs() < 0.1, "variance {v}");
    }

    #[test]
    fn fgn_mean_near_zero() {
        let x = fgn(16_384, 0.6, 2).unwrap();
        let m = stats::mean(&x).unwrap();
        // fGn with H > 0.5 has long-range dependence: the sample-mean sd is
        // much larger than n^{-1/2}, so keep a loose bound.
        assert!(m.abs() < 0.2, "mean {m}");
    }

    #[test]
    fn fgn_lag1_matches_theory() {
        for &(h, seed) in &[(0.3, 7u64), (0.5, 8), (0.8, 9)] {
            let x = fgn(16_384, h, seed).unwrap();
            let rho = stats::autocorrelation(&x, 1).unwrap();
            let theory = fgn_autocovariance(h, 1);
            assert!(
                (rho - theory).abs() < 0.05,
                "H={h}: lag-1 {rho} vs {theory}"
            );
        }
    }

    #[test]
    fn hosking_matches_davies_harte_statistics() {
        let a = fgn_hosking(4096, 0.75, 11).unwrap();
        let b = fgn(4096, 0.75, 12).unwrap();
        let ra = stats::autocorrelation(&a, 1).unwrap();
        let rb = stats::autocorrelation(&b, 1).unwrap();
        assert!((ra - rb).abs() < 0.08, "{ra} vs {rb}");
        let va = stats::variance(&a).unwrap();
        let vb = stats::variance(&b).unwrap();
        assert!((va - vb).abs() < 0.2, "{va} vs {vb}");
    }

    #[test]
    fn hosking_guards() {
        assert!(fgn_hosking(0, 0.5, 1).is_err());
        assert!(fgn_hosking(10, 1.0, 1).is_err());
        assert!(fgn_hosking(10, 0.0, 1).is_err());
        assert!(fgn_hosking(HOSKING_MAX_N + 1, 0.5, 1).is_err());
    }

    #[test]
    fn fbm_starts_near_first_increment_and_spreads() {
        let x = fbm(8192, 0.5, 3).unwrap();
        // Spread grows: the last quarter has larger deviation from start
        // than the first quarter on average (probabilistic but stable for a
        // fixed seed).
        let early: f64 = x[..2048].iter().map(|v| v.abs()).sum::<f64>() / 2048.0;
        let late: f64 = x[6144..].iter().map(|v| v.abs()).sum::<f64>() / 2048.0;
        assert!(late > early, "early {early} late {late}");
    }

    #[test]
    fn weierstrass_deterministic_and_bounded() {
        let a = weierstrass(1024, 0.5).unwrap();
        let b = weierstrass(1024, 0.5).unwrap();
        assert_eq!(a, b);
        // Σ 2^{-kh} < 1/(2^h - 1) bounds the amplitude.
        let bound = 1.0 / (2.0_f64.powf(0.5) - 1.0) + 1.0;
        assert!(a.iter().all(|v| v.abs() < bound));
        assert!(weierstrass(1024, 0.0).is_err());
        assert!(weierstrass(2, 0.5).is_err());
    }

    #[test]
    fn cascade_conserves_mass() {
        for randomize in [false, true] {
            let m = binomial_cascade(10, 0.3, randomize, 5).unwrap();
            assert_eq!(m.len(), 1024);
            let total: f64 = m.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "total {total}");
            assert!(m.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn cascade_partition_function_matches_tau() {
        // For the deterministic cascade, Σ μ_i^q = (m0^q + m1^q)^levels
        // exactly, i.e. log2 Σ = −levels · τ(q).
        let levels = 12;
        let m0 = 0.25;
        let m = binomial_cascade(levels, m0, false, 0).unwrap();
        for &q in &[-2.0, -1.0, 0.5, 2.0, 4.0] {
            let s: f64 = m.iter().map(|&v| v.powf(q)).sum();
            let expect = -(levels as f64) * binomial_cascade_tau(m0, q);
            assert!(
                (s.log2() - expect).abs() < 1e-6,
                "q={q}: {} vs {expect}",
                s.log2()
            );
        }
    }

    #[test]
    fn cascade_guards() {
        assert!(binomial_cascade(0, 0.3, false, 0).is_err());
        assert!(binomial_cascade(31, 0.3, false, 0).is_err());
        assert!(binomial_cascade(4, 0.0, false, 0).is_err());
        assert!(binomial_cascade(4, 1.0, false, 0).is_err());
    }

    #[test]
    fn lognormal_cascade_mass_and_determinism() {
        let m = lognormal_cascade(10, 0.3, 1).unwrap();
        assert_eq!(m.len(), 1024);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(m.iter().all(|&v| v > 0.0));
        assert_eq!(m, lognormal_cascade(10, 0.3, 1).unwrap());
        assert!(lognormal_cascade(0, 0.3, 1).is_err());
        assert!(lognormal_cascade(10, 1.0, 1).is_err());
    }

    #[test]
    fn lognormal_cascade_tau_matches_theory() {
        // One sample cascade: the measured partition exponents follow the
        // parabola within sampling noise in the central q range.
        let lambda = 0.35;
        let m = lognormal_cascade(14, lambda, 2).unwrap();
        let qs = [-1.0, 0.5, 1.0, 2.0, 3.0];
        let est = crate::spectrum::partition_function(&m, &qs).unwrap();
        for (i, &q) in qs.iter().enumerate() {
            let theory = lognormal_cascade_tau(lambda, q);
            assert!(
                (est.exponents[i] - theory).abs() < 0.25,
                "q={q}: {} vs {theory}",
                est.exponents[i]
            );
        }
        // τ(1) = 0 exactly (normalised measure).
        let i1 = qs.iter().position(|&q| q == 1.0).unwrap();
        assert!(est.exponents[i1].abs() < 0.02);
    }

    #[test]
    fn lognormal_lambda_zero_is_uniform() {
        let m = lognormal_cascade(8, 0.0, 3).unwrap();
        let expect = 1.0 / 256.0;
        assert!(m.iter().all(|&v| (v - expect).abs() < 1e-12));
    }

    #[test]
    fn mbm_guards() {
        assert!(mbm(0, |_| 0.5, 1).is_err());
        assert!(mbm(40_000, |_| 0.5, 1).is_err());
        assert!(mbm(64, |_| 1.0, 1).is_err());
        assert!(mbm(64, |u| if u < 0.5 { 0.5 } else { 0.0 }, 1).is_err());
    }

    #[test]
    fn mbm_is_deterministic() {
        let a = mbm(256, |_| 0.6, 5).unwrap();
        let b = mbm(256, |_| 0.6, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mbm_constant_h_has_matching_regularity() {
        use crate::holder::{holder_trace, HolderEstimator};
        for &(h, seed) in &[(0.35, 1u64), (0.75, 2)] {
            let x = mbm(4096, |_| h, seed).unwrap();
            let trace = holder_trace(&x, &HolderEstimator::default()).unwrap();
            // Skip the warmup where the RL kernel has little history.
            let mean = stats::mean(&trace[512..]).unwrap();
            assert!((mean - h).abs() < 0.15, "H={h}: mean {mean}");
        }
    }

    #[test]
    fn mbm_tracks_time_varying_h() {
        use crate::holder::{holder_trace, HolderEstimator};
        // Aging profile: regularity decays from 0.8 to 0.2.
        let x = mbm(8192, |u| 0.8 - 0.6 * u, 3).unwrap();
        let trace = holder_trace(&x, &HolderEstimator::default()).unwrap();
        let n = trace.len();
        let early = stats::mean(&trace[n / 8..n / 4]).unwrap();
        let late = stats::mean(&trace[7 * n / 8..]).unwrap();
        // The discrete Riemann–Liouville construction compresses the
        // effective exponent range toward the middle, so the check is on
        // ordering and separation, not exact levels.
        assert!(
            early > late + 0.15,
            "early {early} vs late {late} — local estimator must track H(t)"
        );
        assert!((early - 0.69).abs() < 0.25, "early {early}");
        assert!((late - 0.24).abs() < 0.25, "late {late}");
    }

    #[test]
    fn white_noise_statistics() {
        let x = white_noise(8192, 21).unwrap();
        assert!(stats::mean(&x).unwrap().abs() < 0.05);
        assert!((stats::variance(&x).unwrap() - 1.0).abs() < 0.08);
        assert!(stats::autocorrelation(&x, 1).unwrap().abs() < 0.05);
    }

    #[test]
    fn ar1_autocorrelation_matches_phi() {
        let x = ar1(16_384, 0.6, 33).unwrap();
        let rho = stats::autocorrelation(&x, 1).unwrap();
        assert!((rho - 0.6).abs() < 0.05, "rho {rho}");
        assert!(ar1(10, 1.0, 0).is_err());
        assert!(ar1(0, 0.5, 0).is_err());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(99);
        let xs: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(stats::mean(&xs).unwrap().abs() < 0.03);
        assert!((stats::variance(&xs).unwrap() - 1.0).abs() < 0.05);
        assert!(stats::skewness(&xs).unwrap().abs() < 0.08);
    }
}
