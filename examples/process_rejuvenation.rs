//! Micro-rejuvenation: on a machine hosting several processes, attribute
//! the aging to the leaking process (Sen's slope on per-process private
//! bytes), and restart *only that process* when the machine-level aging
//! detector raises its alarm.
//!
//! Run with: `cargo run --release --example process_rejuvenation`

use aging_memsim::{MultiMachine, MultiScenario};
use holder_aging::prelude::*;

fn main() -> Result<()> {
    let scenario = MultiScenario::leaky_app_with_neighbours(17, 28.0);
    println!(
        "machine {} hosting processes: {:?}",
        scenario.machine.name,
        scenario
            .processes
            .iter()
            .map(|p| &p.name)
            .collect::<Vec<_>>()
    );

    // Baseline: what happens with no intervention.
    let mut untreated = MultiMachine::boot(&scenario)?;
    untreated.run_for(96.0 * 3600.0);
    match untreated.log().crashes().first() {
        Some(c) => println!("untreated: crashed at {} ({})", c.time, c.cause),
        None => println!("untreated: survived 96 h"),
    }

    // Treated: stream the detector on machine-level free memory; on alarm,
    // restart the leak suspect only.
    let mut machine = MultiMachine::boot(&scenario)?;
    let mut detector = HolderDimensionDetector::new(DetectorConfig::default())?;
    let mut last_len = 0;
    let horizon_hours = 96.0;
    while machine.now().as_hours() < horizon_hours {
        if machine.step().is_some() {
            println!("[{}] machine crashed despite treatment", machine.now());
            break;
        }
        // Feed newly sampled counters.
        let log_len = machine.log().len();
        if log_len > last_len {
            let value = machine.log().values(Counter::AvailableBytes)[log_len - 1];
            last_len = log_len;
            if let Some(alert) = detector.push(value)? {
                if alert.level == AlertLevel::Alarm {
                    let suspect = machine.leak_suspect()?.to_string();
                    println!(
                        "[{}] aging alarm ({:?}) → restarting `{suspect}` only",
                        machine.now(),
                        alert.trigger,
                    );
                    machine.restart_process(&suspect)?;
                    detector.reset();
                }
            }
        }
    }

    println!(
        "\ntreated: survived {:.1} h with selective restarts:",
        machine.now().as_hours()
    );
    for name in machine.process_names() {
        println!("  {name:<6} restarted {}×", machine.restarts(name));
    }
    println!("crashes under treatment: {}", machine.log().crashes().len());
    Ok(())
}
