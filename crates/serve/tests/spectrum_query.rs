//! `QuerySpectrum` end-to-end suite: a v2 client querying a live server
//! must see exactly the Δα the offline spectrum estimator computes on
//! the same samples — the serve-tier face of the E17 streaming-vs-batch
//! parity contract.
//!
//! 1. an unknown machine id draws `known = false` (client `None`);
//! 2. a known machine whose spectrum window has not filled yet draws an
//!    empty width list — known, but nothing to report;
//! 3. once the window fills, the reported `(counter, Δα)` is bit-equal
//!    to the last window of [`spectrum_trace`] over the fed values, and
//!    non-spectrum detector streams contribute no entry.

use aging_core::baseline::TrendPredictorConfig;
use aging_fractal::spectrum::{spectrum_trace, SpectrumConfig};
use aging_memsim::Counter;
use aging_serve::protocol::{counter_code, Record};
use aging_serve::{ServeClient, ServeConfig, Server};
use aging_stream::detector::{DetectorSpec, SpectrumDetectorConfig};
use aging_stream::supervisor::CounterDetector;
use aging_stream::GateConfig;

const DT: f64 = 5.0;

fn spectrum_config() -> SpectrumConfig {
    SpectrumConfig {
        window: 128,
        stride: 32,
        ..SpectrumConfig::default()
    }
}

/// One spectrum stream (AvailableBytes) plus one trend stream
/// (CommittedBytes): the reply must carry the spectrum entry only.
fn serve_config() -> ServeConfig {
    let detectors = vec![
        CounterDetector {
            counter: Counter::AvailableBytes,
            spec: DetectorSpec::Spectrum(SpectrumDetectorConfig {
                spectrum: spectrum_config(),
                skip_windows: 0,
                baseline_windows: 4,
                width_delta: 0.2,
                mad_multiplier: 4.0,
                confirm_windows: 2,
            }),
        },
        CounterDetector {
            counter: Counter::CommittedBytes,
            spec: DetectorSpec::Trend(TrendPredictorConfig {
                window: 64,
                refit_every: 4,
                alarm_horizon_secs: 1e6,
                ..TrendPredictorConfig::depleting(5.0)
            }),
        },
    ];
    let mut cfg = ServeConfig::new(detectors);
    cfg.gate = GateConfig {
        nominal_period_secs: DT,
        ..GateConfig::default()
    };
    cfg
}

/// Deterministic rough trace — enough texture for the structure
/// functions to be well-conditioned on every window.
fn values(n: usize) -> Vec<f64> {
    let mut state = 0x51ce_b00c_5eed_f00du64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut acc = 1e6;
    (0..n)
        .map(|i| {
            acc += rand() * 8.0 - 0.2;
            acc + (i as f64 * 0.45).sin() * 16.0
        })
        .collect()
}

/// Sends `values` as records whose timestamps continue from sample
/// index `at` — a later call with the next slice keeps the stream's
/// clock monotone, so the defect gate accepts every sample.
fn feed(client: &mut ServeClient, machine_id: u64, counter: Counter, at: usize, values: &[f64]) {
    let records: Vec<Record> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| Record {
            machine_id,
            counter: counter_code(counter),
            time_secs: (at + i) as f64 * DT,
            value: v,
        })
        .collect();
    for chunk in records.chunks(32) {
        client.send_batch(chunk).expect("send batch");
    }
    client.flush().expect("flush");
}

#[test]
fn unknown_machine_draws_known_false() {
    let server = Server::bind("127.0.0.1:0", serve_config()).expect("bind server");
    let mut client = ServeClient::connect(server.local_addr(), "spectrum-prober").expect("connect");
    assert_eq!(
        client.query_spectrum(404).expect("query"),
        None,
        "an unregistered machine must not be invented"
    );
    client.bye().expect("bye");
    let outcome = server.shutdown();
    assert_eq!(outcome.wire.session_panics, 0);
    assert_eq!(outcome.wire.quarantined, 0);
}

#[test]
fn widths_match_the_offline_estimator_bit_for_bit() {
    let server = Server::bind("127.0.0.1:0", serve_config()).expect("bind server");
    let mut client = ServeClient::connect(server.local_addr(), "spectrum-feeder").expect("connect");
    let cfg = spectrum_config();
    let trace = values(cfg.window + 3 * cfg.stride + 7);

    // A machine whose spectrum window has not filled yet: known, but no
    // width to report.
    feed(
        &mut client,
        7,
        Counter::AvailableBytes,
        0,
        &trace[..cfg.window / 2],
    );
    assert_eq!(
        client.query_spectrum(7).expect("query"),
        Some(Vec::new()),
        "a half-filled window must report no width"
    );

    // Fill it. The last completed window of the offline batch estimator
    // over the same values is the one true answer — the streaming kernel
    // behind the server is bit-identical to it by construction.
    feed(
        &mut client,
        7,
        Counter::AvailableBytes,
        cfg.window / 2,
        &trace[cfg.window / 2..],
    );
    // The trend stream sees data too; it must not leak into the reply.
    feed(
        &mut client,
        7,
        Counter::CommittedBytes,
        0,
        &trace[..cfg.window],
    );

    let offline = spectrum_trace(&trace, &cfg).expect("offline trace");
    let expected = offline.last().expect("window filled").delta_alpha;
    let widths = client
        .query_spectrum(7)
        .expect("query")
        .expect("machine is known");
    assert_eq!(
        widths.len(),
        1,
        "only the spectrum stream reports: {widths:?}"
    );
    assert_eq!(widths[0].0, Counter::AvailableBytes);
    assert_eq!(
        widths[0].1.to_bits(),
        expected.to_bits(),
        "served Δα {} != offline Δα {}",
        widths[0].1,
        expected
    );

    client.bye().expect("bye");
    let outcome = server.shutdown();
    assert_eq!(outcome.wire.session_panics, 0);
    assert_eq!(outcome.wire.quarantined, 0);
    assert_eq!(outcome.wire.malformed_frames, 0);
}
